//! Example 1 of the paper: the single-objective principle of optimality
//! breaks for weighted sums over multiple cost metrics — the reason MOQO
//! cannot be reduced to classical query optimization.

use moqo::prelude::*;

/// Cost vectors are (time, energy); a plan executes two sub-plans in
/// parallel: time combines via max, energy via sum.
fn combine(a: &CostVector, b: &CostVector) -> CostVector {
    CostVector::from_pairs(&[
        (
            Objective::TotalTime,
            a.get(Objective::TotalTime).max(b.get(Objective::TotalTime)),
        ),
        (
            Objective::Energy,
            a.get(Objective::Energy) + b.get(Objective::Energy),
        ),
    ])
}

#[test]
fn example_1_weighted_sum_breaks_single_objective_pruning() {
    // Weights: 1 for time, 2 for energy — minimize t + 2e.
    let weights = Weights::from_pairs(&[(Objective::TotalTime, 1.0), (Objective::Energy, 2.0)]);

    let p1 = CostVector::from_pairs(&[(Objective::TotalTime, 7.0), (Objective::Energy, 1.0)]);
    let p2 = CostVector::from_pairs(&[(Objective::TotalTime, 6.0), (Objective::Energy, 2.0)]);
    let p1_alt = CostVector::from_pairs(&[(Objective::TotalTime, 1.0), (Objective::Energy, 3.0)]);

    // Locally, p1_alt looks better than p1 under the weighted metric (7 vs 9):
    assert_eq!(weights.weighted_cost(&p1_alt), 7.0);
    assert_eq!(weights.weighted_cost(&p1), 9.0);

    // ... but replacing p1 by p1_alt inside the parallel plan makes the full
    // plan worse: (7,3) with weighted cost 13 becomes (6,5) with cost 16.
    let plan = combine(&p1, &p2);
    let plan_alt = combine(&p1_alt, &p2);
    assert_eq!(
        (plan.get(Objective::TotalTime), plan.get(Objective::Energy)),
        (7.0, 3.0)
    );
    assert_eq!(
        (
            plan_alt.get(Objective::TotalTime),
            plan_alt.get(Objective::Energy)
        ),
        (6.0, 5.0)
    );
    assert_eq!(weights.weighted_cost(&plan), 13.0);
    assert_eq!(weights.weighted_cost(&plan_alt), 16.0);
    assert!(
        weights.weighted_cost(&plan_alt) > weights.weighted_cost(&plan),
        "pruning on the weighted metric would have discarded the better plan"
    );
}

#[test]
fn multi_objective_principle_of_optimality_saves_the_day() {
    // p1 ⪯ p1_alt does NOT hold and neither does the reverse: the vectors
    // are Pareto-incomparable, so the EXA keeps both and never faces the
    // pathology of Example 1.
    let objs = ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::Energy]);
    let p1 = CostVector::from_pairs(&[(Objective::TotalTime, 7.0), (Objective::Energy, 1.0)]);
    let p1_alt = CostVector::from_pairs(&[(Objective::TotalTime, 1.0), (Objective::Energy, 3.0)]);
    assert!(!moqo::cost::dominates(&p1, &p1_alt, objs));
    assert!(!moqo::cost::dominates(&p1_alt, &p1, objs));
}

#[test]
fn pono_bounds_error_accumulation_in_example_1_setting() {
    // The PONO (Definition 7) in the same setting: degrade both sub-plans by
    // factor α and the combined plan degrades by at most α — for max and sum
    // alike.
    let objs = ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::Energy]);
    for alpha in [1.0, 1.25, 1.5, 2.0] {
        let p1 = CostVector::from_pairs(&[(Objective::TotalTime, 7.0), (Objective::Energy, 1.0)]);
        let p2 = CostVector::from_pairs(&[(Objective::TotalTime, 6.0), (Objective::Energy, 2.0)]);
        let plan = combine(&p1, &p2);
        let degraded = combine(&p1.scale(alpha), &p2.scale(alpha));
        assert!(moqo::cost::approx_dominates(&degraded, &plan, alpha, objs));
    }
}
