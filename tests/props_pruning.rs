//! The soundness regression the props-aware pruning mode exists to fix,
//! pinned end to end:
//!
//! * a **no-pruning reference DP** (`moqo_core::test_support`, shared
//!   with the core crate's property tests) enumerates every plan of a
//!   block and takes the cost-Pareto frontier at the end — the ground
//!   truth no pruning decision can corrupt;
//! * with sampling scans enabled and `TupleLoss` **unselected**, the
//!   cost-only EXA front fails 1-coverage of that reference frontier
//!   (plan cardinality leaks past the cost vector: a cost-dominated plan
//!   with fewer rows is discarded although its descendants are cheaper);
//! * the same enumeration under `PruneMode::PropsAware` covers the
//!   reference frontier at α = 1, and the algorithm entry points
//!   auto-select exactly that mode in the leaking regime.

use moqo::catalog::{ColumnStats, TableStats};
use moqo::core::pareto::PruneMode;
use moqo::core::test_support::reference_frontier;
use moqo::core::{exa, find_pareto_plans, DpConfig};
use moqo::cost::pareto_front;
use moqo::prelude::*;

fn leak_setup() -> (CostModelParams, Catalog, JoinGraph) {
    // Sampling on — the leaking regime. The catalog is shaped so the leak
    // actually fires inside one (table set, order) group:
    //
    // * `a` and `b` are large (10⁶ rows), so the nested-loop join over
    //   1%-sampled scans — the *buffer-minimal* unordered `{a,b}` subplan
    //   (it materializes only the tiny sampled inner) — pays a quadratic
    //   CPU term that exceeds the linear cost of the unsampled
    //   index-nested-loop join;
    // * IdxNL preserves the unsorted outer order, so it lands in the same
    //   order group and cost-dominates the sampled NL on
    //   {TotalTime, BufferFootprint} while producing 10⁴× more rows;
    // * cost-only pruning therefore discards the sampled NL, losing the
    //   buffer-minimal corner of the complete frontier that only its
    //   descendants (tiny build sides above) can reach.
    let params = CostModelParams::default();
    let mut cat = Catalog::new();
    cat.add_table(
        TableStats::new("a", 1_000_000.0, 120.0)
            .with_column(ColumnStats::new("a_id", 1_000_000.0).indexed())
            .with_column(ColumnStats::new("a_b", 1_000_000.0)),
    );
    cat.add_table(
        TableStats::new("b", 1_000_000.0, 100.0)
            .with_column(ColumnStats::new("b_id", 1_000_000.0).indexed())
            .with_column(ColumnStats::new("b_c", 50_000.0)),
    );
    cat.add_table(
        TableStats::new("c", 50_000.0, 100.0)
            .with_column(ColumnStats::new("c_id", 50_000.0).indexed()),
    );
    let graph = JoinGraphBuilder::new(&cat)
        .rel("a", 1.0)
        .rel("b", 1.0)
        .rel("c", 1.0)
        .join(("a", "a_b"), ("b", "b_id"))
        .join(("b", "b_c"), ("c", "c_id"))
        .build();
    (params, cat, graph)
}

fn weighted_objectives() -> ObjectiveSet {
    // TupleLoss deliberately unselected: cardinality is invisible to the
    // cost vector, which is the precondition of the leak.
    ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
}

/// The regression itself: cost-only pruning drops true frontier points in
/// the leaking regime; props-aware pruning does not.
#[test]
fn cost_only_exa_is_unsound_under_sampling_and_props_aware_fixes_it() {
    let (params, cat, graph) = leak_setup();
    let model = CostModel::new(&params, &cat, &graph);
    let objectives = weighted_objectives();
    let weights = Weights::single(Objective::TotalTime);
    let reference = reference_frontier(&model, objectives);
    assert!(!reference.is_empty());

    let run = |mode: PruneMode| {
        let config = DpConfig::exact().with_prune_mode(mode);
        let result = find_pareto_plans(
            &model,
            objectives,
            &config,
            &weights,
            &Deadline::unlimited(),
        );
        let costs: Vec<CostVector> = result.final_plans.iter().map(|e| e.cost).collect();
        costs
    };

    // Cost-only EXA front fails 1-coverage of the reference frontier: at
    // least one true frontier point has no dominator in the front.
    let cost_only = run(PruneMode::CostOnly);
    assert!(
        !pareto_front::is_approx_pareto_set(&cost_only, &reference, 1.0 + 1e-9, objectives),
        "the unsound regime must be reproducible: cost-only pruning with \
         sampling on and TupleLoss unselected drops true frontier points"
    );

    // Props-aware pruning restores 1-coverage (Lemma 2 holds again).
    let props_aware = run(PruneMode::PropsAware);
    assert!(
        pareto_front::is_approx_pareto_set(&props_aware, &reference, 1.0 + 1e-9, objectives),
        "props-aware EXA must 1-cover the no-pruning reference frontier"
    );

    // And `exa` (via PruneMode::auto) picks the sound mode by itself: its
    // front is bit-identical to the explicit props-aware run.
    let pref = Preference::over(objectives).weight(Objective::TotalTime, 1.0);
    let auto = exa(&model, &pref, &Deadline::unlimited());
    let auto_costs: Vec<CostVector> = auto.final_plans.iter().map(|e| e.cost).collect();
    assert_eq!(
        auto_costs, props_aware,
        "auto-selection must pick props-aware"
    );
}

/// Outside the leaking regime the mode is irrelevant: with sampling off,
/// both modes produce bit-identical fronts (rows are constant per table
/// set, and order groups make the interest tag constant per set), and both
/// 1-cover the reference frontier.
#[test]
fn modes_coincide_and_cover_when_sampling_is_off() {
    let (mut params, cat, graph) = leak_setup();
    params.enable_sampling = false;
    let model = CostModel::new(&params, &cat, &graph);
    let objectives = weighted_objectives();
    let weights = Weights::single(Objective::TotalTime);

    let run = |mode: PruneMode| {
        let config = DpConfig::exact().with_prune_mode(mode);
        find_pareto_plans(
            &model,
            objectives,
            &config,
            &weights,
            &Deadline::unlimited(),
        )
    };
    let cost_only = run(PruneMode::CostOnly);
    let props_aware = run(PruneMode::PropsAware);
    assert_eq!(
        cost_only.final_plans, props_aware.final_plans,
        "without sampling the modes are bit-identical"
    );
    assert_eq!(
        cost_only.stats.considered_plans,
        props_aware.stats.considered_plans
    );

    let reference = reference_frontier(&model, objectives);
    let costs: Vec<CostVector> = cost_only.final_plans.iter().map(|e| e.cost).collect();
    assert!(pareto_front::is_approx_pareto_set(
        &costs,
        &reference,
        1.0 + 1e-9,
        objectives
    ));
}

/// With `TupleLoss` selected the auto rule stays cost-only — the paper's
/// original Algorithm 1, preserved as the baseline. Note the residual
/// caveat this test pins honestly: selecting the loss dimension re-exposes
/// the *sampling factor* to the dominance test, but a dominator with lower
/// loss necessarily carries **more** rows, so on adversarial blocks (this
/// one) cost-only pruning can still lose the buffer-minimal corner that
/// only a high-loss/tiny-cardinality subplan reaches. An explicit
/// props-aware run covers the reference frontier even here; the ROADMAP
/// tracks whether auto() should ever widen to that regime.
#[test]
fn tuple_loss_selection_keeps_paper_baseline_and_props_aware_stays_available() {
    let (params, cat, graph) = leak_setup();
    let model = CostModel::new(&params, &cat, &graph);
    let objectives = ObjectiveSet::from_objectives(&[
        Objective::TotalTime,
        Objective::BufferFootprint,
        Objective::TupleLoss,
    ]);
    assert_eq!(
        PruneMode::auto(params.enable_sampling, objectives),
        PruneMode::CostOnly
    );
    let reference = reference_frontier(&model, objectives);

    // The opt-in sound mode covers the reference frontier on the
    // adversarial block even with the loss dimension selected.
    let config = DpConfig::exact().with_prune_mode(PruneMode::PropsAware);
    let weights = Weights::single(Objective::TotalTime);
    let props_aware = find_pareto_plans(
        &model,
        objectives,
        &config,
        &weights,
        &Deadline::unlimited(),
    );
    let costs: Vec<CostVector> = props_aware.final_plans.iter().map(|e| e.cost).collect();
    assert!(pareto_front::is_approx_pareto_set(
        &costs,
        &reference,
        1.0 + 1e-9,
        objectives
    ));

    // The paper baseline on a *tame* block (small tables: the quadratic
    // nested-loop term never crosses the linear index-nested-loop cost, so
    // no fewer-rows plan is ever discarded): cost-only EXA with TupleLoss
    // selected covers its reference frontier, and both modes agree on the
    // achieved cost frontier.
    let mut tame_cat = Catalog::new();
    tame_cat.add_table(
        TableStats::new("s", 4_000.0, 80.0)
            .with_column(ColumnStats::new("s_id", 4_000.0).indexed())
            .with_column(ColumnStats::new("s_t", 1_000.0)),
    );
    tame_cat.add_table(
        TableStats::new("t", 1_000.0, 64.0)
            .with_column(ColumnStats::new("t_id", 1_000.0).indexed())
            .with_column(ColumnStats::new("t_u", 500.0)),
    );
    tame_cat.add_table(
        TableStats::new("u", 500.0, 64.0).with_column(ColumnStats::new("u_id", 500.0).indexed()),
    );
    let tame = JoinGraphBuilder::new(&tame_cat)
        .rel("s", 1.0)
        .rel("t", 0.5)
        .rel("u", 1.0)
        .join(("s", "s_t"), ("t", "t_id"))
        .join(("t", "t_u"), ("u", "u_id"))
        .build();
    let tame_model = CostModel::new(&params, &tame_cat, &tame);
    let tame_reference = reference_frontier(&tame_model, objectives);
    let pref = Preference::over(objectives).weight(Objective::TotalTime, 1.0);
    let baseline = exa(&tame_model, &pref, &Deadline::unlimited());
    let baseline_costs: Vec<CostVector> = baseline.final_plans.iter().map(|e| e.cost).collect();
    assert!(pareto_front::is_approx_pareto_set(
        &baseline_costs,
        &tame_reference,
        1.0 + 1e-9,
        objectives
    ));
}
