//! Workspace smoke test: every `moqo::prelude` export must resolve and be
//! usable. This pins the facade surface so a crate-level rename or a missed
//! re-export fails here instead of in downstream code.

use moqo::prelude::*;

/// Touch every type exported by the prelude, in the way a user would.
#[test]
fn every_prelude_export_resolves() {
    // moqo_cost exports.
    let objectives = ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::Energy]);
    let vector = CostVector::from_pairs(&[(Objective::TotalTime, 2.0), (Objective::Energy, 4.0)]);
    let mut weights = Weights::zero();
    weights.set(Objective::TotalTime, 1.0);
    let bounds = Bounds::unbounded();
    let preference = Preference::over(objectives).weight(Objective::Energy, 0.5);
    assert!(preference.weighted_cost(&vector) > 0.0);
    let _ = bounds;

    // The dominance relations live in `moqo_cost::dominance` and are
    // re-exported here.
    assert!(dominates(&vector, &vector, objectives));
    assert!(!strictly_dominates(&vector, &vector, objectives));
    assert!(approx_dominates(&vector, &vector, 1.0, objectives));

    // moqo_catalog exports.
    let catalog: Catalog = moqo::tpch::catalog(0.01);
    let query: Query = moqo::tpch::query(&catalog, 3);
    let graph: &JoinGraph = &query.blocks[0];
    assert!(graph.n_rels() >= 2);
    let rebuilt: JoinGraph = JoinGraphBuilder::new(&catalog)
        .rel("customer", 1.0)
        .rel("orders", 1.0)
        .join(("customer", "c_custkey"), ("orders", "o_custkey"))
        .build();
    assert_eq!(rebuilt.n_rels(), 2);

    // moqo_costmodel exports.
    let params = CostModelParams::default();
    let model = CostModel::new(&params, &catalog, graph);

    // moqo_core exports: the three algorithms, selection, deadlines, facade.
    let deadline = Deadline::unlimited();
    let pref = Preference::over(ObjectiveSet::from_objectives(&[
        Objective::TotalTime,
        Objective::BufferFootprint,
    ]))
    .weight(Objective::TotalTime, 1.0)
    .weight(Objective::BufferFootprint, 1e-6);
    let exact = exa(&model, &pref, &deadline);
    let approx = rta(&model, &pref, 1.5, &deadline);
    let refined = ira(&model, &pref, 1.5, &deadline);
    assert!(!exact.final_plans.is_empty());
    assert!(!approx.final_plans.is_empty());
    assert!(!refined.result.final_plans.is_empty());
    let best = select_best(&exact.final_plans, &pref).expect("exa finds a plan");

    // moqo_plan exports: arena, operators, rendering.
    let rendered = render_plan(&exact.arena, best.plan, graph, &catalog);
    assert!(rendered.contains("Scan"), "rendered plan: {rendered}");
    let _: &PlanArena = &exact.arena;
    let _: PlanId = best.plan;
    let _ = ScanOp::SeqScan;
    let _ = JoinOp::HashJoin { dop: 1 };
    let _ = SortOrder::None;

    // The optimizer facade with every algorithm variant.
    let optimizer = Optimizer::new(&catalog);
    for algorithm in [
        Algorithm::Exhaustive,
        Algorithm::Rta { alpha: 1.5 },
        Algorithm::Ira { alpha: 1.5 },
    ] {
        let result: OptimizationResult = optimizer.optimize(&query, &pref, algorithm);
        assert!(result.weighted_cost.is_finite());
    }

    // moqo_service exports: submit one request end to end.
    let service = OptimizationService::new(catalog.clone());
    let request = OptimizationRequest::new(query.clone(), pref, 1.5);
    let response: Result<OptimizationResponse, ServiceError> = service.submit_wait(request);
    assert!(response
        .expect("small request succeeds")
        .weighted_cost
        .is_finite());
}
