//! Cross-crate guarantee tests: the formal properties of Theorems 3 and 6
//! and Corollary 1, validated against the exact algorithm on TPC-H queries
//! small enough for exhaustive optimization.

use moqo::prelude::*;
use moqo::tpch;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Queries whose main block the EXA can optimize exhaustively in test time.
const SMALL_QUERIES: [u8; 6] = [1, 12, 14, 3, 11, 10];

fn exa_optimum(catalog: &Catalog, query: &moqo::catalog::Query, pref: &Preference) -> f64 {
    let optimizer = Optimizer::new(catalog);
    optimizer
        .optimize(query, pref, Algorithm::Exhaustive)
        .weighted_cost
}

#[test]
fn rta_is_an_approximation_scheme_on_tpch() {
    // Corollary 1: the RTA returns an α_U-approximate solution for weighted
    // MOQO. Validated over random objective subsets and weights.
    let catalog = tpch::catalog(0.05);
    for &qno in &SMALL_QUERIES {
        let query = tpch::query(&catalog, qno);
        for (seed, n_objs) in [(1u64, 3usize), (2, 4), (3, 6)] {
            let mut rng = StdRng::seed_from_u64(seed * 31 + u64::from(qno));
            let case = tpch::weighted_test_case(&mut rng, qno, n_objs);
            let opt = exa_optimum(&catalog, &query, &case.preference);
            for alpha in [1.15, 1.5, 2.0] {
                let optimizer = Optimizer::new(&catalog);
                let got = optimizer
                    .optimize(&query, &case.preference, Algorithm::Rta { alpha })
                    .weighted_cost;
                assert!(
                    got <= alpha * opt + 1e-6,
                    "Q{qno} l={n_objs} α={alpha}: {got} > {alpha}·{opt}"
                );
            }
        }
    }
}

#[test]
fn ira_is_an_approximation_scheme_for_bounded_moqo() {
    // Theorem 6 on bounded instances: the IRA's plan respects feasible
    // bounds and stays within α_U of the exact bounded optimum.
    let catalog = tpch::catalog(0.05);
    let params = CostModelParams::default();
    for &qno in &[12u8, 14, 3] {
        let query = tpch::query(&catalog, qno);
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed * 7 + u64::from(qno));
            let case = tpch::bounded_test_case(&mut rng, &catalog, &params, &query, qno, 6, 3);
            let optimizer = Optimizer::new(&catalog);
            let exact = optimizer.optimize(&query, &case.preference, Algorithm::Exhaustive);
            for alpha in [1.15, 1.5, 2.0] {
                let approx = optimizer.optimize(&query, &case.preference, Algorithm::Ira { alpha });
                if exact.respects_bounds {
                    assert!(
                        approx.respects_bounds,
                        "Q{qno} seed {seed} α={alpha}: feasible instance must stay feasible"
                    );
                    assert!(
                        approx.weighted_cost <= alpha * exact.weighted_cost + 1e-6,
                        "Q{qno} seed {seed} α={alpha}: {} > {alpha}·{}",
                        approx.weighted_cost,
                        exact.weighted_cost
                    );
                } else {
                    // No feasible plan exists: weighted cost is the criterion.
                    assert!(
                        approx.weighted_cost <= alpha * exact.weighted_cost + 1e-6,
                        "Q{qno} seed {seed} α={alpha} (infeasible case)"
                    );
                }
            }
        }
    }
}

#[test]
fn rta_frontier_alpha_covers_exact_frontier() {
    // Theorem 3: the RTA's final plan set is an α_U-approximate Pareto set.
    let catalog = tpch::catalog(0.05);
    let params = CostModelParams::default();
    let objectives = ObjectiveSet::from_objectives(&[
        Objective::TotalTime,
        Objective::BufferFootprint,
        Objective::TupleLoss,
        Objective::Energy,
    ]);
    let pref = Preference::over(objectives).weight(Objective::TotalTime, 1.0);
    for &qno in &[12u8, 3, 10] {
        let query = tpch::query(&catalog, qno);
        let graph = &query.blocks[0];
        let model = CostModel::new(&params, &catalog, graph);
        let exact = moqo::core::exa(&model, &pref, &Deadline::unlimited());
        let exact_vectors: Vec<CostVector> = exact.final_plans.iter().map(|e| e.cost).collect();
        for alpha in [1.25, 1.5, 2.0] {
            let approx = moqo::core::rta(&model, &pref, alpha, &Deadline::unlimited());
            let approx_vectors: Vec<CostVector> =
                approx.final_plans.iter().map(|e| e.cost).collect();
            assert!(
                moqo::cost::pareto_front::is_approx_pareto_set(
                    &approx_vectors,
                    &exact_vectors,
                    alpha + 1e-9,
                    objectives
                ),
                "Q{qno} α={alpha}: frontier not covered"
            );
            let factor = moqo::cost::pareto_front::approximation_factor(
                &approx_vectors,
                &exact_vectors,
                objectives,
            )
            .unwrap();
            assert!(factor <= alpha + 1e-9, "Q{qno} α={alpha}: factor {factor}");
        }
    }
}

#[test]
fn exa_matches_selinger_on_every_single_objective() {
    let catalog = tpch::catalog(0.05);
    let params = CostModelParams::default();
    let query = tpch::query(&catalog, 3);
    let graph = &query.blocks[0];
    let model = CostModel::new(&params, &catalog, graph);
    for objective in Objective::ALL {
        let (best, _) = moqo::core::selinger(&model, objective, &Deadline::unlimited());
        let pref = Preference::minimize(objective);
        let exact = moqo::core::exa(&model, &pref, &Deadline::unlimited());
        let exa_best = moqo::core::select_best(&exact.final_plans, &pref).unwrap();
        assert!(
            (best.cost.get(objective) - exa_best.cost.get(objective)).abs() < 1e-9,
            "{objective}: Selinger {} vs EXA {}",
            best.cost.get(objective),
            exa_best.cost.get(objective)
        );
    }
}

#[test]
fn approximation_gets_cheaper_as_alpha_grows() {
    // The α knob's purpose: coarser precision ⇒ fewer stored plans and
    // fewer considered plans (monotone effort decrease on average).
    // Full-size tables: pruning headroom only exists when Pareto sets are
    // dense, so this effect needs SF 1 (at toy scale the sets are tiny).
    let catalog = tpch::catalog(1.0);
    let params = CostModelParams::default();
    let query = tpch::query(&catalog, 10);
    let graph = &query.blocks[0];
    let model = CostModel::new(&params, &catalog, graph);
    let mut rng = StdRng::seed_from_u64(9);
    let pref = tpch::weighted_test_case(&mut rng, 10, 6).preference;

    let mut considered: Vec<u64> = Vec::new();
    let mut stored: Vec<usize> = Vec::new();
    for alpha in [1.0, 1.15, 1.5, 2.0, 4.0] {
        let result = moqo::core::rta(&model, &pref, alpha, &Deadline::unlimited());
        considered.push(result.stats.considered_plans);
        stored.push(result.stats.peak_stored_plans);
    }
    // Strict per-step monotonicity is NOT guaranteed (coarser pruning keeps
    // different representatives, which can change downstream combination
    // counts); the paper's claim — and ours — is the endpoint tendency.
    assert!(
        considered[4] < considered[0],
        "α = 4 must consider fewer plans than exact: {considered:?}"
    );
    assert!(
        stored[4] < stored[0],
        "α = 4 must store fewer plans than exact: {stored:?}"
    );
    assert!(
        considered[0] as f64 > 1.2 * considered[4] as f64,
        "α = 4 should prune substantially more than exact: {considered:?}"
    );
}
