//! End-to-end tests for the anytime randomized optimizer (RMQ): seed
//! determinism through the `Optimizer` facade, soundness of the sampled
//! front against the exact algorithm on small queries, and the large-query
//! acceptance scenario (20-table chain under a wall-clock budget).

use std::time::Duration;

use moqo::cost::pareto_front;
use moqo::prelude::*;

fn weighted_pref() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

#[test]
fn same_seed_yields_identical_front() {
    let catalog = moqo::tpch::catalog(0.01);
    let query = moqo::tpch::query(&catalog, 3);
    let p = weighted_pref();
    let optimizer = Optimizer::new(&catalog);
    let algo = Algorithm::Rmq {
        samples: 400,
        seed: 99,
        threads: 1,
    };
    let a = optimizer.optimize(&query, &p, algo);
    let b = optimizer.optimize(&query, &p, algo);
    assert_eq!(a.weighted_cost, b.weighted_cost);
    assert_eq!(a.total_cost, b.total_cost);
    assert_eq!(a.block_plans.len(), b.block_plans.len());
    for (ba, bb) in a.block_plans.iter().zip(&b.block_plans) {
        assert_eq!(ba.frontier, bb.frontier, "fronts must be bit-identical");
        assert_eq!(ba.cost, bb.cost);
    }
    // A different seed is a different run (the chosen plan may coincide,
    // but the sampled-candidate count trace must still be reproducible).
    let c = optimizer.optimize(
        &query,
        &p,
        Algorithm::Rmq {
            samples: 400,
            seed: 100,
            threads: 1,
        },
    );
    assert_eq!(c.block_plans.len(), a.block_plans.len());
}

/// On every tested query with ≤ 8 tables per block, the exact Pareto set
/// must cover the RMQ front at α = 1: each sampled front vector is a
/// genuine plan cost, so it is weakly dominated by an exact Pareto vector.
/// The achieved approximation factor of the RMQ front against the exact
/// frontier (the "α derived from the run") must conversely certify the RMQ
/// front as an α-approximate Pareto set.
///
/// Sampling scans stay **enabled**: with `TupleLoss` unselected they used
/// to make this oracle unsound (cost-vector pruning dropped plans whose
/// lower row counts made descendants cheaper, so the test had to disable
/// sampling as a workaround). `PruneMode::auto` now runs both EXA and RMQ
/// props-aware in exactly that regime, which restores Lemma 2 and makes
/// exact coverage a sound oracle over the *full* plan space, sampling
/// included (`tests/props_pruning.rs` pins the regression itself).
#[test]
fn exa_front_covers_rmq_front_on_small_queries() {
    let catalog = moqo::tpch::catalog(0.01);
    let params = CostModelParams::default();
    let p = weighted_pref();
    let deadline = Deadline::unlimited();

    // TPC-H Q3 (3 tables), Q7 (6 tables) and the 8-table chain.
    let mut blocks = Vec::new();
    blocks.extend(moqo::tpch::query(&catalog, 3).blocks);
    blocks.extend(moqo::tpch::query(&catalog, 7).blocks);
    blocks.push(moqo::tpch::large_join_graph(&catalog, 8));

    for (i, graph) in blocks.iter().enumerate() {
        assert!(graph.n_rels() <= 8);
        let model = CostModel::new(&params, &catalog, graph);
        let exact = exa(&model, &p, &deadline);
        let out = rmq(&model, &p, &RmqConfig::new(600, 17 + i as u64), &deadline);

        let exact_vectors: Vec<CostVector> = exact.final_plans.iter().map(|e| e.cost).collect();
        let rmq_vectors: Vec<CostVector> = out.final_plans.iter().map(|e| e.cost).collect();
        assert!(!rmq_vectors.is_empty());

        // Soundness: the exact Pareto set 1-covers every RMQ front vector.
        assert!(
            pareto_front::is_approx_pareto_set(
                &exact_vectors,
                &rmq_vectors,
                1.0 + 1e-9,
                p.objectives
            ),
            "block {i}: an RMQ vector beats the exact frontier — impossible \
             for genuine plan costs"
        );

        // The run-derived α certifies the RMQ front against the exact
        // frontier.
        let alpha = pareto_front::approximation_factor(&rmq_vectors, &exact_vectors, p.objectives)
            .expect("exact frontier is non-empty");
        assert!(alpha >= 1.0, "block {i}: factor {alpha}");
        assert!(
            alpha.is_finite(),
            "block {i}: RMQ front must cover the exact frontier at some finite α"
        );
        assert!(
            pareto_front::is_approx_pareto_set(
                &rmq_vectors,
                &exact_vectors,
                alpha + 1e-9,
                p.objectives
            ),
            "block {i}: RMQ front must be an α-approximate Pareto set for \
             its own achieved α = {alpha}"
        );
    }
}

/// The acceptance scenario: a 20-table TPC-H-style chain, far beyond the
/// dynamic-programming schemes, optimized within a generous wall-clock
/// budget — non-empty, deterministic front.
#[test]
fn rmq_handles_twenty_table_chain_within_budget() {
    let catalog = moqo::tpch::catalog(0.01);
    let query = moqo::tpch::large_query(&catalog, 20);
    let p = weighted_pref();
    let optimizer = Optimizer::new(&catalog).with_timeout(Duration::from_secs(60));
    let algo = Algorithm::Rmq {
        samples: 400,
        seed: 7,
        threads: 2,
    };

    let a = optimizer.optimize(&query, &p, algo);
    assert!(!a.report.timed_out(), "400 samples fit the budget easily");
    assert_eq!(a.block_plans.len(), 1);
    assert!(!a.block_plans[0].frontier.is_empty());
    assert!(a.weighted_cost.is_finite() && a.weighted_cost > 0.0);
    // Every front plan covers all 20 relations.
    let block = &a.block_plans[0];
    assert_eq!(block.arena.leaf_count(block.root), 20);
    assert_eq!(a.report.blocks[0].iterations, 400);

    let b = optimizer.optimize(&query, &p, algo);
    assert_eq!(a.block_plans[0].frontier, b.block_plans[0].frontier);
    assert_eq!(a.weighted_cost, b.weighted_cost);
}

/// RMQ also honours bounds through `SelectBest`: with a tuple-loss bound of
/// zero the chosen plan must not sample.
#[test]
fn rmq_respects_bounds_when_feasible() {
    let catalog = moqo::tpch::catalog(0.01);
    let query = moqo::tpch::query(&catalog, 3);
    let p = weighted_pref().bound(Objective::TupleLoss, 0.0);
    let optimizer = Optimizer::new(&catalog);
    let result = optimizer.optimize(
        &query,
        &p,
        Algorithm::Rmq {
            samples: 800,
            seed: 5,
            threads: 1,
        },
    );
    assert!(
        result.respects_bounds,
        "loss-free plans exist and 800 samples find one"
    );
    let block = &result.block_plans[0];
    assert!(!block.arena.uses_sampling(block.root));
}
