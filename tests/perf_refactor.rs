//! Equivalence guards for the PR-3 hot-path rework.
//!
//! The DP inner loop was restructured (rejection probe before arena
//! allocation, borrow-splitting instead of per-split entry clones, streamed
//! Gosper mask enumeration, precomputed join keys) and RMQ was resharded
//! into independent walkers merged deterministically. Neither change is
//! allowed to alter *results*:
//!
//! * `find_pareto_plans` must produce exactly the seed behaviour — same
//!   final front, same `considered_plans` — which a straightforward
//!   allocate-then-prune reference implementation pins down here;
//! * the RMQ front must be byte-identical for a fixed seed at every thread
//!   count.

use std::collections::BTreeMap;

use moqo::core::pareto::{PlanSet, PruneStrategy};
use moqo::core::{find_pareto_plans, DpConfig, PlanEntry};
use moqo::costmodel::JoinKey;
use moqo::prelude::*;

/// The seed's `FindParetoPlans`, reimplemented naively on the public API:
/// eager mask table, per-split entry clones, arena allocation for *every*
/// considered candidate, `prune_insert` doing the rejection test. Returns
/// the flattened final front and the considered-plans counter.
fn reference_dp(
    model: &CostModel<'_>,
    objectives: ObjectiveSet,
    alpha_internal: f64,
) -> (Vec<CostVector>, u64) {
    let strategy = PruneStrategy {
        alpha_internal,
        approx_deletion: false,
        mode: moqo::core::PruneMode::CostOnly,
    };
    let graph = model.graph;
    let n = graph.n_rels();
    let full_mask = graph.full_mask();
    let mut arena = PlanArena::new();
    let mut considered = 0u64;
    // BTreeMap keyed by output order, matching the optimizer's (now
    // deterministic) group iteration.
    let mut table: Vec<BTreeMap<SortOrder, PlanSet>> = vec![BTreeMap::new(); 1 << n];

    let scan_ops = |rel: usize| {
        let t = model.catalog.table(graph.rels[rel].table);
        let mut ops = vec![ScanOp::SeqScan];
        for (ordinal, col) in t.columns.iter().enumerate() {
            if col.indexed {
                ops.push(ScanOp::IndexScan {
                    column: ordinal as u16,
                });
            }
        }
        if model.params.enable_sampling {
            for rate_pct in moqo::plan::SAMPLING_RATES_PCT {
                ops.push(ScanOp::SamplingScan { rate_pct });
            }
        }
        ops
    };
    let join_key = |m1: u32, m2: u32| -> Option<JoinKey> {
        let edge = graph.edges.iter().find(|e| e.crosses(m1, m2))?;
        let left_in_m1 = m1 & (1u32 << edge.left_rel) != 0;
        let (left_rel, left_col, right_rel, right_col) = if left_in_m1 {
            (edge.left_rel, edge.left_col, edge.right_rel, edge.right_col)
        } else {
            (edge.right_rel, edge.right_col, edge.left_rel, edge.left_col)
        };
        Some(JoinKey {
            left_rel,
            left_col,
            right_rel,
            right_col,
            inner_indexed: model
                .catalog
                .table(graph.rels[right_rel].table)
                .column(right_col)
                .indexed,
        })
    };
    let splits = |mask: u32| {
        let mut connected = Vec::new();
        let mut all = Vec::new();
        let mut m1 = (mask - 1) & mask;
        while m1 != 0 {
            let m2 = mask ^ m1;
            all.push((m1, m2));
            if graph.connects(m1, m2) {
                connected.push((m1, m2));
            }
            m1 = (m1 - 1) & mask;
        }
        if connected.is_empty() {
            all
        } else {
            connected
        }
    };

    // Phase 1: access paths.
    for rel in 0..n {
        let mask = 1usize << rel;
        for op in scan_ops(rel) {
            if let Some((cost, props)) = model.scan_cost(rel, op) {
                considered += 1;
                let plan = arena.scan(rel, op);
                table[mask].entry(props.order).or_default().prune_insert(
                    PlanEntry { cost, props, plan },
                    &strategy,
                    objectives,
                );
            }
        }
    }

    // Phase 2: eager mask table, sorted by cardinality (the seed's order).
    let mut masks: Vec<u32> = (1..(1u32 << n)).filter(|m| m.count_ones() >= 2).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        for (m1, m2) in splits(mask) {
            let key = join_key(m1, m2);
            let left_entries: Vec<PlanEntry> = table[m1 as usize]
                .values()
                .flat_map(|s| s.iter().copied())
                .collect();
            let right_entries: Vec<PlanEntry> = table[m2 as usize]
                .values()
                .flat_map(|s| s.iter().copied())
                .collect();
            for left in &left_entries {
                for right in &right_entries {
                    let right_canonical = key.as_ref().is_some_and(|k| {
                        right.props.rels.count_ones() == 1
                            && matches!(
                                arena.node(right.plan),
                                moqo::plan::PlanNode::Scan {
                                    rel,
                                    op: ScanOp::IndexScan { column },
                                } if rel == k.right_rel && column == k.right_col
                            )
                    });
                    for op in JoinOp::all_configurations() {
                        let Some((cost, props)) = model.join_cost(
                            op,
                            (&left.cost, &left.props),
                            (&right.cost, &right.props),
                            key.as_ref(),
                            right_canonical,
                        ) else {
                            continue;
                        };
                        considered += 1;
                        let plan = arena.join(op, left.plan, right.plan);
                        table[mask as usize]
                            .entry(props.order)
                            .or_default()
                            .prune_insert(PlanEntry { cost, props, plan }, &strategy, objectives);
                    }
                }
            }
        }
    }

    let front: Vec<CostVector> = table[full_mask as usize]
        .values()
        .flat_map(|s| s.iter().map(|e| e.cost))
        .collect();
    (front, considered)
}

/// Total order over cost vectors: compare fronts as multisets, so the test
/// does not also pin down the (deterministic but incidental) group
/// flattening order.
fn sort_vectors(mut v: Vec<CostVector>) -> Vec<CostVector> {
    v.sort_by(|a, b| {
        for o in Objective::ALL {
            match a.get(o).partial_cmp(&b.get(o)) {
                Some(std::cmp::Ordering::Equal) | None => continue,
                Some(ord) => return ord,
            }
        }
        std::cmp::Ordering::Equal
    });
    v
}

fn assert_dp_matches_reference(
    model: &CostModel<'_>,
    objectives: ObjectiveSet,
    alpha_internal: f64,
    label: &str,
) {
    let config = DpConfig::approximate(alpha_internal);
    let result = find_pareto_plans(
        model,
        objectives,
        &config,
        &Weights::single(Objective::TotalTime),
        &Deadline::unlimited(),
    );
    let (ref_front, ref_considered) = reference_dp(model, objectives, alpha_internal);

    assert_eq!(
        result.stats.considered_plans, ref_considered,
        "{label}: the probe-before-alloc loop must consider exactly the \
         seed's candidate stream"
    );
    let got = sort_vectors(result.final_plans.iter().map(|e| e.cost).collect());
    let want = sort_vectors(ref_front);
    assert_eq!(
        got.len(),
        want.len(),
        "{label}: final front sizes must match"
    );
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g, w, "{label}: final fronts must be bit-identical");
    }
}

#[test]
fn dp_rework_is_equivalent_on_three_tables() {
    let catalog = moqo::tpch::catalog(0.01);
    let query = moqo::tpch::query(&catalog, 3);
    let params = CostModelParams::default();
    let objectives =
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint]);
    for graph in &query.blocks {
        let model = CostModel::new(&params, &catalog, graph);
        // Exact pruning and an approximate precision both go through the
        // reworked probe; both must reproduce the seed.
        assert_dp_matches_reference(&model, objectives, 1.0, "q3 exact");
        assert_dp_matches_reference(&model, objectives, 1.25, "q3 alpha=1.25");
    }
}

#[test]
fn dp_rework_is_equivalent_on_eight_table_chain() {
    let catalog = moqo::tpch::catalog(0.01);
    let graph = moqo::tpch::large_join_graph(&catalog, 8);
    // Sampling off keeps the 8-table candidate stream testable in debug
    // builds; the 3-table fixture covers the sampling-scan paths.
    let params = CostModelParams {
        enable_sampling: false,
        ..CostModelParams::default()
    };
    let model = CostModel::new(&params, &catalog, &graph);
    let objectives =
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint]);
    assert_dp_matches_reference(&model, objectives, 1.0, "chain8 exact");
}

/// The allocation-free property itself: arena growth is bounded by accepted
/// plans, not by the candidate stream. The seed allocated one node per
/// considered plan (5.75M on this workload); the probe-before-alloc loop
/// allocates ~62k. Guard with a generous factor so cost-model tweaks don't
/// flake the bound.
#[test]
fn dp_arena_growth_is_bounded_by_accepted_plans() {
    let catalog = moqo::tpch::catalog(0.01);
    let graph = moqo::tpch::large_join_graph(&catalog, 8);
    let params = CostModelParams {
        enable_sampling: false,
        ..CostModelParams::default()
    };
    let model = CostModel::new(&params, &catalog, &graph);
    let objectives =
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint]);
    let result = find_pareto_plans(
        &model,
        objectives,
        &DpConfig::exact(),
        &Weights::single(Objective::TotalTime),
        &Deadline::unlimited(),
    );
    let considered = usize::try_from(result.stats.considered_plans).unwrap();
    assert!(
        result.arena.len() * 10 < considered,
        "arena holds {} nodes for {} considered plans — the rejection probe \
         must keep doomed candidates out of the arena",
        result.arena.len(),
        considered
    );
}

#[test]
fn parallel_rmq_is_thread_count_invariant() {
    let catalog = moqo::tpch::catalog(0.01);
    let query = moqo::tpch::large_query(&catalog, 12);
    let preference = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6);
    let optimizer = Optimizer::new(&catalog);

    let fronts: Vec<Vec<moqo::core::PlanEntry>> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let result = optimizer.optimize(
                &query,
                &preference,
                Algorithm::Rmq {
                    samples: 2000,
                    seed: 77,
                    threads,
                },
            );
            assert_eq!(result.block_plans.len(), 1);
            result.block_plans[0].frontier.clone()
        })
        .collect();

    assert_eq!(
        fronts[0], fronts[1],
        "threads=2 must reproduce the single-threaded front byte for byte"
    );
    assert_eq!(
        fronts[0], fronts[2],
        "threads=4 must reproduce the single-threaded front byte for byte"
    );
    assert!(!fronts[0].is_empty());
}
