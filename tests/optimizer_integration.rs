//! End-to-end integration: all 22 TPC-H queries through the optimizer
//! facade, with timeouts, multi-block handling and report sanity.

use std::time::Duration;

use moqo::prelude::*;
use moqo::tpch;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_22_queries_optimize_with_rta() {
    let catalog = tpch::catalog(0.05);
    let optimizer = Optimizer::new(&catalog).with_timeout(Duration::from_secs(2));
    for qno in 1..=22u8 {
        let query = tpch::query(&catalog, qno);
        let mut rng = StdRng::seed_from_u64(u64::from(qno));
        let case = tpch::weighted_test_case(&mut rng, qno, 9);
        let result = optimizer.optimize(&query, &case.preference, Algorithm::Rta { alpha: 2.0 });
        assert_eq!(result.block_plans.len(), query.blocks.len(), "Q{qno}");
        assert!(result.weighted_cost.is_finite(), "Q{qno}");
        assert!(result.total_cost.get(Objective::TotalTime) > 0.0, "Q{qno}");
        // Every block plan covers exactly its block's relations.
        for (plan, graph) in result.block_plans.iter().zip(&query.blocks) {
            assert_eq!(plan.arena.leaf_count(plan.root), graph.n_rels(), "Q{qno}");
            assert!(!plan.frontier.is_empty(), "Q{qno}");
        }
        assert_eq!(result.report.blocks.len(), query.blocks.len(), "Q{qno}");
    }
}

#[test]
fn results_are_deterministic_given_the_seed() {
    let catalog = tpch::catalog(0.05);
    let optimizer = Optimizer::new(&catalog);
    let query = tpch::query(&catalog, 5);
    let case = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        tpch::weighted_test_case(&mut rng, 5, 6)
    };
    let a = optimizer.optimize(&query, &case(7).preference, Algorithm::Rta { alpha: 1.5 });
    let b = optimizer.optimize(&query, &case(7).preference, Algorithm::Rta { alpha: 1.5 });
    assert_eq!(a.weighted_cost, b.weighted_cost);
    assert_eq!(a.total_cost, b.total_cost);
}

#[test]
fn tuple_loss_zero_bound_eliminates_sampling() {
    let catalog = tpch::catalog(0.05);
    let optimizer = Optimizer::new(&catalog);
    let query = tpch::query(&catalog, 3);
    let pref = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .bound(Objective::TupleLoss, 0.0);
    let result = optimizer.optimize(&query, &pref, Algorithm::Ira { alpha: 1.5 });
    assert!(result.respects_bounds);
    for plan in &result.block_plans {
        assert!(
            !plan.arena.uses_sampling(plan.root),
            "a zero tuple-loss bound forbids sampling scans"
        );
        assert_eq!(plan.cost.get(Objective::TupleLoss), 0.0);
    }
}

#[test]
fn sampling_appears_when_loss_is_cheap() {
    // With overwhelming weight on time and a permissive loss budget, the
    // optimizer exploits sampling scans (the paper's Cloud scenario).
    let catalog = tpch::catalog(1.0);
    let optimizer = Optimizer::new(&catalog);
    let query = tpch::query(&catalog, 6); // single big lineitem scan
    let pref = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::TupleLoss, 1e-9);
    let result = optimizer.optimize(&query, &pref, Algorithm::Exhaustive);
    let plan = &result.block_plans[0];
    assert!(
        plan.arena.uses_sampling(plan.root),
        "cheap loss should buy a sampling scan"
    );
    assert!(result.total_cost.get(Objective::TupleLoss) > 0.0);
}

#[test]
fn timeout_degrades_gracefully_on_the_largest_query() {
    let catalog = tpch::catalog(1.0);
    let optimizer = Optimizer::new(&catalog).with_timeout(Duration::from_millis(50));
    let query = tpch::query(&catalog, 8);
    let mut rng = StdRng::seed_from_u64(8);
    let case = tpch::weighted_test_case(&mut rng, 8, 9);
    let result = optimizer.optimize(&query, &case.preference, Algorithm::Exhaustive);
    assert!(result.report.timed_out());
    assert!(result.weighted_cost.is_finite());
    assert_eq!(
        result.block_plans[0]
            .arena
            .leaf_count(result.block_plans[0].root),
        8,
        "the quick-finish path must still deliver a full 8-way plan"
    );
}

#[test]
fn frontier_is_byproduct_of_optimization() {
    // §4: all MOQO algorithms produce an (approximate) Pareto frontier as a
    // byproduct; its vectors must be mutually non-dominating per objective
    // subset and contain the chosen plan's cost.
    let catalog = tpch::catalog(0.05);
    let optimizer = Optimizer::new(&catalog);
    let query = tpch::query(&catalog, 10);
    let mut rng = StdRng::seed_from_u64(10);
    let case = tpch::weighted_test_case(&mut rng, 10, 3);
    let result = optimizer.optimize(&query, &case.preference, Algorithm::Exhaustive);
    let frontier = &result.block_plans[0].frontier;
    let chosen = result.block_plans[0].cost;
    assert!(frontier.iter().any(|e| e.cost == chosen));
}

#[test]
fn reports_track_paper_metrics() {
    let catalog = tpch::catalog(0.05);
    let optimizer = Optimizer::new(&catalog);
    let query = tpch::query(&catalog, 12);
    let mut rng = StdRng::seed_from_u64(12);
    let case = tpch::weighted_test_case(&mut rng, 12, 6);
    for algo in [
        Algorithm::Exhaustive,
        Algorithm::Rta { alpha: 1.5 },
        Algorithm::Ira { alpha: 1.5 },
    ] {
        let result = optimizer.optimize(&query, &case.preference, algo);
        let report = &result.report;
        assert!(report.total_elapsed() > Duration::ZERO);
        assert!(report.peak_memory_bytes() > 0);
        assert!(report.pareto_last_complete() > 0);
        assert!(report.considered_plans() > 0);
        assert!(report.iterations() >= 1);
        assert!(!report.timed_out());
    }
}
