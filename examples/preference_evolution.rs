//! Preference sweep (the paper's Figure 3 idea, generalized): sweep the
//! weight on one objective and watch the optimal plan morph operator by
//! operator — from memory-hungry parallel hash joins to frugal pipelined
//! index-nested-loop plans.
//!
//! Run with `cargo run --release --example preference_evolution`.

use moqo::prelude::*;

fn main() {
    let catalog = moqo::tpch::catalog(1.0);
    let query = moqo::tpch::query(&catalog, 3);
    let graph = &query.blocks[0];
    let optimizer = Optimizer::new(&catalog);

    println!("Sweeping the buffer-footprint weight on TPC-H Q3\n");
    println!(
        "{:>12}  {:>12}  {:>12}  {:>6}  join operators (bottom-up)",
        "buffer_wt", "time", "buffer_kb", "cores"
    );

    let mut last_signature = String::new();
    for exp in -9..=1 {
        let buffer_weight = 10f64.powi(exp);
        let preference = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, 1.0)
            .weight(Objective::BufferFootprint, buffer_weight)
            .bound(Objective::TupleLoss, 0.0);
        let result = optimizer.optimize(&query, &preference, Algorithm::Rta { alpha: 1.05 });
        let block = &result.block_plans[0];
        let ops: Vec<String> = block
            .arena
            .join_ops(block.root)
            .iter()
            .map(|op| op.to_string())
            .collect();
        let signature = ops.join(" → ");
        let marker = if signature == last_signature {
            ""
        } else {
            "  ◀ plan changed"
        };
        println!(
            "{:>12.0e}  {:>12.0}  {:>12.0}  {:>6.0}  {signature}{marker}",
            buffer_weight,
            result.total_cost.get(Objective::TotalTime),
            result.total_cost.get(Objective::BufferFootprint) / 1024.0,
            result.total_cost.get(Objective::UsedCores),
        );
        last_signature = signature;
    }

    println!();
    println!("every '◀' marks a tradeoff point where the weighted optimum jumps");
    println!("to a different Pareto plan — the tradeoffs the frontier encodes.");
    let _ = graph;
}
