//! Scenario 2 of the paper: a powerful server processes queries of multiple
//! users concurrently. Minimizing the system resources dedicated to one
//! query (buffer space, disk space, IO bandwidth, cores) conflicts with
//! minimizing that query's execution time. An administrator sets weights
//! and bounds; the optimizer finds the best compromise.
//!
//! This example emulates an admission controller that tightens resource
//! bounds as concurrency pressure grows and watches the chosen plan adapt.
//!
//! Run with `cargo run --release --example resource_manager`.

use moqo::prelude::*;

fn main() {
    let catalog = moqo::tpch::catalog(1.0);
    let query = moqo::tpch::query(&catalog, 5); // 6-way join
    let optimizer = Optimizer::new(&catalog);

    println!("Resource-manager scenario: TPC-H Q5 under concurrency pressure\n");

    // (concurrent users, buffer budget bytes, core budget)
    let pressure_levels = [
        ("idle      (1 user)  ", 64.0 * 1024.0 * 1024.0, 4.0),
        ("busy      (16 users)", 8.0 * 1024.0 * 1024.0, 2.0),
        ("saturated (64 users)", 256.0 * 1024.0, 1.0),
    ];

    let mut last_buffer = f64::INFINITY;
    for (label, buffer_budget, core_budget) in pressure_levels {
        let preference = Preference::over(ObjectiveSet::empty())
            .weight(Objective::TotalTime, 1.0)
            .weight(Objective::IoLoad, 0.05)
            .bound(Objective::BufferFootprint, buffer_budget)
            .bound(Objective::UsedCores, core_budget)
            .bound(Objective::TupleLoss, 0.0);

        let result = optimizer.optimize(&query, &preference, Algorithm::Ira { alpha: 1.5 });
        println!(
            "--- {label} | buffer ≤ {:.0} KB, cores ≤ {core_budget} ---",
            buffer_budget / 1024.0
        );
        println!(
            "time {:>10.0} | buffer {:>9.0} KB | cores {:>2.0} | disk {:>9.0} KB | feasible: {}",
            result.total_cost.get(Objective::TotalTime),
            result.total_cost.get(Objective::BufferFootprint) / 1024.0,
            result.total_cost.get(Objective::UsedCores),
            result.total_cost.get(Objective::DiskFootprint) / 1024.0,
            result.respects_bounds
        );
        let block = &result.block_plans[0];
        let joins = block.arena.join_ops(block.root);
        let hash_joins = joins
            .iter()
            .filter(|op| matches!(op, JoinOp::HashJoin { .. }))
            .count();
        println!(
            "operator mix: {hash_joins} hash join(s) of {} joins | optimization {:?} | {} iteration(s)\n",
            joins.len(),
            result.report.total_elapsed(),
            result.report.iterations()
        );
        // Tighter budgets must never increase the buffer footprint.
        let buffer = result.total_cost.get(Objective::BufferFootprint);
        assert!(
            buffer <= last_buffer + 1.0,
            "buffer must shrink under pressure"
        );
        last_buffer = buffer;
    }

    println!("as the buffer/core budget shrinks, memory-hungry parallel hash");
    println!("joins give way to pipelined index-nested-loop plans — the");
    println!("compromise Scenario 2 of the paper asks the optimizer to find.");
}
