//! Quickstart: optimize TPC-H Q3 under a three-objective preference with
//! all three algorithms and compare plans, costs and optimizer effort.
//!
//! Run with `cargo run --release --example quickstart`.

use moqo::prelude::*;

fn main() {
    // TPC-H statistics (scale factor 0.1 keeps the exact algorithm fast
    // enough for a demo) and the shipping-priority query Q3.
    let catalog = moqo::tpch::catalog(0.1);
    let query = moqo::tpch::query(&catalog, 3);

    // Scenario: minimize execution time, weakly prefer small buffers, and
    // require the full result (no sampling ⇒ tuple loss bounded by zero).
    let preference = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-7)
        .bound(Objective::TupleLoss, 0.0);

    let optimizer = Optimizer::new(&catalog);

    for (name, algorithm) in [
        ("EXA  (exact)", Algorithm::Exhaustive),
        ("RTA  (α=1.5)", Algorithm::Rta { alpha: 1.5 }),
        ("IRA  (α=1.5)", Algorithm::Ira { alpha: 1.5 }),
    ] {
        let result = optimizer.optimize(&query, &preference, algorithm);
        println!("=== {name} ===");
        println!(
            "weighted cost {:.2} | time {:.0} | buffer {:.0} B | loss {:.3} | bounds ok: {}",
            result.weighted_cost,
            result.total_cost.get(Objective::TotalTime),
            result.total_cost.get(Objective::BufferFootprint),
            result.total_cost.get(Objective::TupleLoss),
            result.respects_bounds,
        );
        println!(
            "optimized in {:?} | {} plans considered | frontier size {}",
            result.report.total_elapsed(),
            result.report.considered_plans(),
            result.block_plans[0].frontier.len(),
        );
        let block = &result.block_plans[0];
        println!(
            "{}",
            render_plan(&block.arena, block.root, &query.blocks[0], &catalog)
        );
    }
}
