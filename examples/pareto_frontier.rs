//! Pareto-frontier exploration (paper §4, Figure 4): every MOQO algorithm
//! produces an (approximate) Pareto frontier as a byproduct, which lets
//! users inspect the achievable tradeoffs before committing to weights and
//! bounds.
//!
//! This example prints a two-dimensional projection (time × buffer) of the
//! frontier of TPC-H Q3 at three precisions and shows how the frontier
//! coarsens as α grows.
//!
//! Run with `cargo run --release --example pareto_frontier`.

use moqo::prelude::*;

fn main() {
    let catalog = moqo::tpch::catalog(1.0);
    let query = moqo::tpch::query(&catalog, 3);
    let graph = &query.blocks[0];
    let params = CostModelParams::default();
    let model = CostModel::new(&params, &catalog, graph);

    let objectives =
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint]);
    let preference = Preference::over(objectives).weight(Objective::TotalTime, 1.0);

    println!("Approximate Pareto frontiers for TPC-H Q3 (time × buffer)\n");

    for alpha in [1.05, 1.5, 3.0] {
        let result = moqo::core::rta(&model, &preference, alpha, &Deadline::unlimited());
        let mut points: Vec<(f64, f64)> = result
            .final_plans
            .iter()
            .map(|e| {
                (
                    e.cost.get(Objective::TotalTime),
                    e.cost.get(Objective::BufferFootprint),
                )
            })
            .collect();
        points.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "α = {alpha}: {} representative plans ({} considered)",
            points.len(),
            result.stats.considered_plans
        );
        for (time, buffer) in &points {
            let bar = "#".repeat(((buffer / 1024.0).log2().max(0.0) * 2.0) as usize);
            println!(
                "  time {time:>12.0}  buffer {:>10.0} KB  {bar}",
                buffer / 1024.0
            );
        }
        println!();
    }

    println!("a user who sees the frontier can pick informed bounds, e.g. relax");
    println!("a deadline slightly to cut the buffer footprint by orders of");
    println!("magnitude (the paper's §4 motivation for frontier visualization).");
}
