//! Scenario 1 of the paper: a Cloud provider processes SQL queries and
//! bills users for the accumulated processing work. Sampling can cut both
//! execution time and monetary cost at the price of result completeness.
//! Users set weights (relative importance) and optional constraints such as
//! a deadline; the provider must find a plan that meets all constraints
//! while minimizing the weighted cost — bounded-weighted MOQO, solved here
//! with the IRA.
//!
//! Run with `cargo run --release --example cloud_provider`.

use moqo::prelude::*;

/// Monetary cost proxy: the Cloud bills accumulated CPU and IO work.
/// Weights below convert optimizer units into "cents".
const CENTS_PER_CPU_UNIT: f64 = 0.002;
const CENTS_PER_IO_PAGE: f64 = 0.004;

fn main() {
    let catalog = moqo::tpch::catalog(1.0);
    let query = moqo::tpch::query(&catalog, 10); // returned-item report
    let optimizer = Optimizer::new(&catalog);

    println!("Cloud scenario: TPC-H Q10, three user profiles\n");

    // Three user profiles with different tradeoffs.
    let profiles: Vec<(&str, Preference)> = vec![
        (
            "analyst (exact results, generous deadline)",
            Preference::over(ObjectiveSet::empty())
                .weight(Objective::TotalTime, 1.0)
                .weight(Objective::CpuLoad, CENTS_PER_CPU_UNIT)
                .weight(Objective::IoLoad, CENTS_PER_IO_PAGE)
                .bound(Objective::TupleLoss, 0.0),
        ),
        (
            "dashboard (approximate results are fine, cheap)",
            Preference::over(ObjectiveSet::empty())
                .weight(Objective::TotalTime, 0.2)
                .weight(Objective::CpuLoad, 10.0 * CENTS_PER_CPU_UNIT)
                .weight(Objective::IoLoad, 10.0 * CENTS_PER_IO_PAGE)
                .weight(Objective::TupleLoss, 1_000.0)
                .bound(Objective::TupleLoss, 0.99),
        ),
        (
            "executive (hard deadline, quality-weighted)",
            Preference::over(ObjectiveSet::empty())
                .weight(Objective::CpuLoad, CENTS_PER_CPU_UNIT)
                .weight(Objective::IoLoad, CENTS_PER_IO_PAGE)
                .weight(Objective::TupleLoss, 100_000.0)
                .bound(Objective::TotalTime, 150_000.0),
        ),
    ];

    for (name, preference) in profiles {
        let result = optimizer.optimize(&query, &preference, Algorithm::Ira { alpha: 1.25 });
        let cents = result.total_cost.get(Objective::CpuLoad) * CENTS_PER_CPU_UNIT
            + result.total_cost.get(Objective::IoLoad) * CENTS_PER_IO_PAGE;
        println!("--- {name} ---");
        println!(
            "time {:>10.0} units | bill {cents:>7.2} cents | tuple loss {:>5.1}% | bounds ok: {}",
            result.total_cost.get(Objective::TotalTime),
            100.0 * result.total_cost.get(Objective::TupleLoss),
            result.respects_bounds
        );
        println!(
            "optimized in {:?} over {} block(s); {} iterations",
            result.report.total_elapsed(),
            result.block_plans.len(),
            result.report.iterations()
        );
        let block = &result.block_plans[0];
        println!(
            "{}",
            render_plan(&block.arena, block.root, &query.blocks[0], &catalog)
        );
    }

    println!("note: sampling scans appear exactly where the profile tolerates");
    println!("tuple loss — the tradeoff the paper's Cloud scenario motivates.");
}
