//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * order-aware plan grouping (Postgres path keys) versus a single group,
//! * sound pruning (exact deletions) versus the unsound approximate-deletion
//!   variant the paper warns about (§6.2) — faster, but the quality tests in
//!   `moqo-core` show it loses the guarantee.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_core::{find_pareto_plans, Deadline, DpConfig};
use moqo_cost::Weights;
use moqo_costmodel::{CostModel, CostModelParams};
use moqo_tpch::{catalog, query, weighted_test_case};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ablation(c: &mut Criterion) {
    let cat = catalog(1.0);
    let params = CostModelParams::default();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    let qno = 3u8;
    let q = query(&cat, qno);
    let graph = &q.blocks[0];
    let model = CostModel::new(&params, &cat, graph);
    let mut rng = StdRng::seed_from_u64(5);
    let pref = weighted_test_case(&mut rng, qno, 6).preference;
    let alpha_i = 1.5f64.powf(1.0 / graph.n_rels() as f64);

    let configs: [(&str, DpConfig); 4] = [
        ("rta_sound_grouped", DpConfig::approximate(alpha_i)),
        (
            "rta_no_order_groups",
            DpConfig {
                group_by_order: false,
                ..DpConfig::approximate(alpha_i)
            },
        ),
        (
            "rta_approx_deletion_unsound",
            DpConfig {
                approx_deletion: true,
                ..DpConfig::approximate(alpha_i)
            },
        ),
        ("exa_exact", DpConfig::exact()),
    ];

    for (name, config) in configs {
        group.bench_with_input(
            BenchmarkId::new(name, format!("Q{qno}_l6")),
            &config,
            |b, config| {
                b.iter(|| {
                    let result = find_pareto_plans(
                        &model,
                        pref.objectives,
                        config,
                        &Weights::single(moqo_cost::Objective::TotalTime),
                        &Deadline::unlimited(),
                    );
                    result.final_plans.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
