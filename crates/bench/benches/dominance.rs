//! Microbenchmarks for the dominance kernels — the innermost operations of
//! every pruning step.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moqo_cost::{approx_dominates, dominates, strictly_dominates, CostVector, ObjectiveSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vectors(n: usize, seed: u64) -> Vec<CostVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut a = [0.0; moqo_cost::NUM_OBJECTIVES];
            for v in &mut a {
                *v = rng.gen_range(0.0..1000.0);
            }
            CostVector::from_array(a)
        })
        .collect()
}

fn bench_dominance(c: &mut Criterion) {
    let vectors = random_vectors(256, 7);
    let objs = ObjectiveSet::all();
    let mut group = c.benchmark_group("dominance");
    group.sample_size(20);

    group.bench_function("dominates_9obj", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for x in &vectors {
                for y in &vectors {
                    if dominates(black_box(x), black_box(y), objs) {
                        count += 1;
                    }
                }
            }
            count
        })
    });

    group.bench_function("strictly_dominates_9obj", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for x in &vectors {
                for y in &vectors {
                    if strictly_dominates(black_box(x), black_box(y), objs) {
                        count += 1;
                    }
                }
            }
            count
        })
    });

    group.bench_function("approx_dominates_9obj", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for x in &vectors {
                for y in &vectors {
                    if approx_dominates(black_box(x), black_box(y), 1.5, objs) {
                        count += 1;
                    }
                }
            }
            count
        })
    });

    // Fewer selected objectives ⇒ cheaper checks.
    let objs3 = ObjectiveSet::from_objectives(&[
        moqo_cost::Objective::TotalTime,
        moqo_cost::Objective::BufferFootprint,
        moqo_cost::Objective::TupleLoss,
    ]);
    group.bench_function("dominates_3obj", |b| {
        b.iter(|| {
            let mut count = 0u32;
            for x in &vectors {
                for y in &vectors {
                    if dominates(black_box(x), black_box(y), objs3) {
                        count += 1;
                    }
                }
            }
            count
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dominance);
criterion_main!(benches);
