//! Parallel RMQ scaling: the same (samples, seed) run at 1/2/4 threads on
//! 8- and 20-table chain join graphs. Walkers are fully independent, so
//! speedup should track the thread count up to the walker count — and the
//! front must not change at all, which the harness asserts once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_core::{rmq, Deadline, RmqConfig};
use moqo_cost::{CostVector, Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};

fn preference() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

fn bench_rmq_parallel(c: &mut Criterion) {
    let catalog = moqo_tpch::catalog(0.01);
    let params = CostModelParams {
        enable_sampling: false,
        ..CostModelParams::default()
    };
    let preference = preference();

    let mut group = c.benchmark_group("rmq_parallel");
    group.sample_size(10);

    for &n in &[8usize, 20] {
        let graph = moqo_tpch::large_join_graph(&catalog, n);
        let model = CostModel::new(&params, &catalog, &graph);
        let samples = 20_000u64;

        // Determinism check outside the timed region: all thread counts
        // must reproduce the single-threaded front byte for byte.
        let front_of = |threads: usize| -> Vec<CostVector> {
            rmq(
                &model,
                &preference,
                &RmqConfig::new(samples, 42).with_threads(threads),
                &Deadline::unlimited(),
            )
            .final_plans
            .iter()
            .map(|e| e.cost)
            .collect()
        };
        let reference = front_of(1);
        for threads in [2usize, 4] {
            assert_eq!(
                front_of(threads),
                reference,
                "{n} tables: thread count must not change the front"
            );
        }

        for &threads in &[1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("rmq_20k_samples_{n}t"), threads),
                &threads,
                |b, &threads| {
                    let config = RmqConfig::new(samples, 42).with_threads(threads);
                    b.iter(|| {
                        rmq(&model, &preference, &config, &Deadline::unlimited())
                            .final_plans
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rmq_parallel);
criterion_main!(benches);
