//! RMQ versus EXA: optimization-time comparison on chain join graphs, plus
//! a front-quality report (coverage of the exact frontier via approximate
//! dominance) printed once per run.
//!
//! The randomized optimizer's per-sample cost is roughly linear in the
//! number of tables, while the exact algorithm's grows factorially — the
//! crossover is the whole point of the comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_core::{exa, rmq, Deadline, RmqConfig};
use moqo_cost::{pareto_front, CostVector, Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};

fn preference() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

fn params() -> CostModelParams {
    // Sampling off keeps the timing rows comparable with every earlier
    // snapshot (the sampled plan space is ~3× larger). Soundness no longer
    // depends on it: props-aware pruning makes the exact front a valid
    // quality oracle with sampling enabled too.
    CostModelParams {
        enable_sampling: false,
        ..CostModelParams::default()
    }
}

fn bench_rmq_vs_exa(c: &mut Criterion) {
    let catalog = moqo_tpch::catalog(0.01);
    let params = params();
    let preference = preference();

    let mut group = c.benchmark_group("rmq_vs_exa");
    group.sample_size(10);

    for &n in &[8usize, 12, 16, 20] {
        let graph = moqo_tpch::large_join_graph(&catalog, n);
        group.bench_with_input(
            BenchmarkId::new("rmq_1000_samples", n),
            &graph,
            |b, graph| {
                let model = CostModel::new(&params, &catalog, graph);
                b.iter(|| {
                    rmq(
                        &model,
                        &preference,
                        &RmqConfig::new(1000, 42),
                        &Deadline::unlimited(),
                    )
                    .final_plans
                    .len()
                })
            },
        );
    }
    // The exact algorithm only at the sizes it still terminates on.
    for &n in &[6usize, 8] {
        let graph = moqo_tpch::large_join_graph(&catalog, n);
        group.bench_with_input(BenchmarkId::new("exa", n), &graph, |b, graph| {
            let model = CostModel::new(&params, &catalog, graph);
            b.iter(|| {
                exa(&model, &preference, &Deadline::unlimited())
                    .final_plans
                    .len()
            })
        });
    }
    group.finish();

    // Quality report (not timed): how well does the RMQ front cover the
    // exact frontier on the 8-table chain?
    let graph = moqo_tpch::large_join_graph(&catalog, 8);
    let model = CostModel::new(&params, &catalog, &graph);
    let exact = exa(&model, &preference, &Deadline::unlimited());
    let exact_vectors: Vec<CostVector> = exact.final_plans.iter().map(|e| e.cost).collect();
    let frontier = pareto_front::pareto_frontier(&exact_vectors, preference.objectives);
    for samples in [250u64, 1000, 4000] {
        let out = rmq(
            &model,
            &preference,
            &RmqConfig::new(samples, 42),
            &Deadline::unlimited(),
        );
        let rmq_vectors: Vec<CostVector> = out.final_plans.iter().map(|e| e.cost).collect();
        let alpha =
            pareto_front::approximation_factor(&rmq_vectors, &exact_vectors, preference.objectives)
                .unwrap_or(f64::INFINITY);
        let covered = frontier
            .iter()
            .filter(|c_star| {
                rmq_vectors.iter().any(|c| {
                    moqo_cost::dominance::approx_dominates(c, c_star, 1.05, preference.objectives)
                })
            })
            .count();
        println!(
            "quality (8-table chain, {samples} samples): front {} vs exact {} — \
             coverage@1.05 {:.1}%, achieved α {}",
            rmq_vectors.len(),
            frontier.len(),
            100.0 * covered as f64 / frontier.len().max(1) as f64,
            if alpha.is_finite() {
                format!("{alpha:.4}")
            } else {
                "inf".to_owned()
            }
        );
    }
}

criterion_group!(benches, bench_rmq_vs_exa);
criterion_main!(benches);
