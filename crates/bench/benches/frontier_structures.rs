//! Benchmarks for the layered frontier engine: the same 2000-vector
//! insert stream through `PlanSet` with each [`FrontierStructure`] layout,
//! at 2/6/9 objectives and under both prune modes. Every cell asserts the
//! surviving front size matches the plain layout's — the engine contract
//! is bit-identical fronts, so any divergence is a bug, not a trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_core::pareto::{FrontierStructure, PlanEntry, PlanSet, PruneMode, PruneStrategy};
use moqo_cost::{CostVector, Objective, ObjectiveSet};
use moqo_plan::{PlanId, PlanProps, SortOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The `bench_snapshot` dp_insert_stream generator (seed 99), optionally
/// scattering entries across a few sampled-cardinality props classes so
/// props-aware mode exercises the two-level structure.
fn random_entries(n: usize, objectives: usize, seed: u64, props_classes: u64) -> Vec<PlanEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut a = [0.0; moqo_cost::NUM_OBJECTIVES];
            for v in a.iter_mut().take(objectives) {
                *v = rng.gen_range(1.0..1000.0);
            }
            let rows = if props_classes > 1 {
                1.0 + f64::from(u32::try_from(rng.gen_range(0..props_classes)).unwrap())
            } else {
                1.0
            };
            PlanEntry {
                cost: CostVector::from_array(a),
                props: PlanProps {
                    rels: 1,
                    rows,
                    width: 1.0,
                    order: SortOrder::None,
                    sampling_factor: 1.0,
                },
                plan: PlanId(i as u32),
            }
        })
        .collect()
}

fn objective_set(count: usize) -> ObjectiveSet {
    Objective::ALL.into_iter().take(count).collect()
}

fn run_stream(
    entries: &[PlanEntry],
    structure: FrontierStructure,
    strategy: &PruneStrategy,
    objs: ObjectiveSet,
) -> usize {
    let mut set = PlanSet::with_structure(structure);
    for e in entries {
        set.prune_insert(*e, strategy, objs);
    }
    set.len()
}

fn bench_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier_structures");
    group.sample_size(20);

    let layouts = [
        ("plain", FrontierStructure::Plain),
        ("grid", FrontierStructure::Indexed),
    ];

    for &n_objs in &[2usize, 6, 9] {
        let objs = objective_set(n_objs);

        // Cost-only exact: the dp_insert_stream workload.
        let entries = random_entries(2000, n_objs, 99, 1);
        let strategy = PruneStrategy::exact();
        let reference = run_stream(&entries, FrontierStructure::Plain, &strategy, objs);
        for (label, structure) in layouts {
            assert_eq!(
                run_stream(&entries, structure, &strategy, objs),
                reference,
                "layouts must keep identical fronts"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("exact_insert_2000/{label}"), n_objs),
                &entries,
                |b, entries| b.iter(|| run_stream(entries, structure, &strategy, objs)),
            );
        }

        // Props-aware exact over 8 cardinality classes: the two-level path.
        let entries = random_entries(2000, n_objs, 99, 8);
        let strategy = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let reference = run_stream(&entries, FrontierStructure::Plain, &strategy, objs);
        for (label, structure) in layouts {
            assert_eq!(
                run_stream(&entries, structure, &strategy, objs),
                reference,
                "layouts must keep identical props-aware fronts"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("props_insert_2000/{label}"), n_objs),
                &entries,
                |b, entries| b.iter(|| run_stream(entries, structure, &strategy, objs)),
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);
