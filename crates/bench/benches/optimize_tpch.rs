//! End-to-end optimizer benchmarks on TPC-H queries: EXA versus RTA versus
//! IRA at representative precisions — the criterion-level counterpart of
//! Figures 9/10.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_core::{Algorithm, Optimizer};
use moqo_cost::Preference;
use moqo_tpch::{catalog, query, weighted_test_case};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn preference(qno: u8, n_objs: usize) -> Preference {
    let mut rng = StdRng::seed_from_u64(2024);
    weighted_test_case(&mut rng, qno, n_objs).preference
}

fn bench_optimize(c: &mut Criterion) {
    let cat = catalog(1.0);
    let mut group = c.benchmark_group("optimize_tpch");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    // (query, #objectives) cells small enough for repeated measurement.
    for &(qno, n_objs) in &[(12u8, 3usize), (3, 3), (10, 3), (3, 6)] {
        let q = query(&cat, qno);
        let pref = preference(qno, n_objs);
        for (name, algo) in [
            ("EXA", Algorithm::Exhaustive),
            ("RTA(1.15)", Algorithm::Rta { alpha: 1.15 }),
            ("RTA(2)", Algorithm::Rta { alpha: 2.0 }),
            ("IRA(1.5)", Algorithm::Ira { alpha: 1.5 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("Q{qno}_l{n_objs}")),
                &(&q, &pref),
                |b, (q, pref)| {
                    let optimizer = Optimizer::new(&cat);
                    b.iter(|| {
                        let result = optimizer.optimize(q, pref, algo);
                        result.weighted_cost
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
