//! Benchmarks for the `Prune` procedure: exact (EXA) versus approximate
//! (RTA) insertion over streams of random cost vectors — the operation
//! whose per-set cardinality separates the two algorithms (paper §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moqo_core::pareto::{PlanEntry, PlanSet, PruneStrategy};
use moqo_cost::{CostVector, Objective, ObjectiveSet};
use moqo_plan::{PlanId, PlanProps, SortOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_entries(n: usize, objectives: usize, seed: u64) -> Vec<PlanEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut a = [0.0; moqo_cost::NUM_OBJECTIVES];
            for v in a.iter_mut().take(objectives) {
                *v = rng.gen_range(1.0..1000.0);
            }
            PlanEntry {
                cost: CostVector::from_array(a),
                props: PlanProps {
                    rels: 1,
                    rows: 1.0,
                    width: 1.0,
                    order: SortOrder::None,
                    sampling_factor: 1.0,
                },
                plan: PlanId(i as u32),
            }
        })
        .collect()
}

fn objective_set(count: usize) -> ObjectiveSet {
    Objective::ALL.into_iter().take(count).collect()
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_pruning");
    group.sample_size(20);

    for &n_objs in &[2usize, 3, 6, 9] {
        let entries = random_entries(2000, n_objs, 99);
        let objs = objective_set(n_objs);

        group.bench_with_input(
            BenchmarkId::new("exact_insert_2000", n_objs),
            &entries,
            |b, entries| {
                b.iter(|| {
                    let mut set = PlanSet::new();
                    let strategy = PruneStrategy::exact();
                    for e in entries {
                        set.prune_insert(*e, &strategy, objs);
                    }
                    set.len()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("approx_insert_2000_alpha1.5", n_objs),
            &entries,
            |b, entries| {
                b.iter(|| {
                    let mut set = PlanSet::new();
                    let strategy = PruneStrategy::approximate(1.5);
                    for e in entries {
                        set.prune_insert(*e, &strategy, objs);
                    }
                    set.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
