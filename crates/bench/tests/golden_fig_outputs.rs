//! Golden-output smoke tests for the figure-reproduction binaries: each
//! binary runs with a pinned seed and a small, fast configuration, and the
//! key summary lines are asserted, so bench drift (changed headers, broken
//! guarantee audits, lost CSV output) is caught by `cargo test` instead of
//! surfacing the first time someone regenerates a figure.
//!
//! The binaries are located through the `CARGO_BIN_EXE_<name>` variables
//! Cargo sets for integration tests of the package that defines them.

use std::process::{Command, Output};

/// Runs a fig binary with the pinned environment and captures its output.
fn run_pinned(exe: &str, env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(exe);
    cmd.env("MOQO_SEED", "42")
        .env("MOQO_CASES", "1")
        .env("MOQO_TIMEOUT_MS", "2000");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("figure binary must spawn")
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "binary failed with {:?}; stderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn fig3_plan_evolution_golden() {
    // fig3 is fully deterministic (no test-case sampling): EXA on Q3 under
    // three preference variants, with the plan-shape assertions built into
    // the binary itself.
    let out = run_pinned(env!("CARGO_BIN_EXE_fig3_plan_evolution"), &[]);
    let stdout = stdout_of(&out);
    assert!(stdout.contains("Figure 3: optimal TPC-H Q3 plan under changing preferences"));
    assert!(stdout.contains("(a) time-optimal, tuple loss ≤ 0:"));
    assert!(stdout.contains("(b) + weight on buffer footprint:"));
    assert!(stdout.contains("(c) + bound on startup time"));
    assert!(stdout.contains("buffer footprints:"));
    assert!(stdout.contains("startup times:"));
    // The three plans render as operator trees.
    assert!(stdout.contains("HashJ"), "plan (a) uses hash joins");
    assert!(stdout.contains("IdxNL"), "plan (c) is an IdxNL pipeline");
}

#[test]
fn fig7_complexity_golden() {
    let out = run_pinned(env!("CARGO_BIN_EXE_fig7_complexity"), &[]);
    let stdout = stdout_of(&out);
    assert!(stdout.contains("Figure 7: log10 worst-case time (j = 6, l = 3, m = 1e5)"));
    // The formulas are pure math: pin one cell of the CSV exactly.
    let exa10 = moqo_core::complexity::log10_exa_time(6, 10);
    let selinger10 = moqo_core::complexity::log10_selinger_time(6, 10);
    let expected_row_prefix = format!("10,{exa10:.2},");
    assert!(
        stdout.contains(&expected_row_prefix),
        "CSV must contain the n = 10 EXA cell {expected_row_prefix}"
    );
    assert!(stdout.contains(&format!("{selinger10:.2}")));
    assert!(stdout.contains("CSV:"));
}

#[test]
fn fig9_weighted_golden() {
    // Single-table queries keep the pinned run fast; with one block and no
    // timeouts the RTA equals the EXA, so the guarantee audit must be
    // clean and every wcost_pct cell reads 100.00.
    let out = run_pinned(
        env!("CARGO_BIN_EXE_fig9_weighted"),
        &[("MOQO_QUERIES", "1,4,6")],
    );
    let stdout = stdout_of(&out);
    assert!(stdout.contains("Figure 9: weighted MOQO — EXA vs RTA"));
    assert!(stdout.contains(
        "query,objectives,algorithm,timeouts_pct,time_ms,memory_kb,pareto_plans,wcost_pct"
    ));
    assert!(
        stdout.contains("guarantee audit: no α_U violations observed."),
        "single-block single-table queries cannot violate the RTA guarantee"
    );
    for algo in ["EXA", "RTA(1.15)", "RTA(1.5)", "RTA(2)"] {
        assert!(stdout.contains(algo), "{algo} row missing");
    }
    assert!(stdout.contains(",100.00"), "wcost_pct of the best plan");
}

#[test]
fn fig10_bounded_golden() {
    let out = run_pinned(
        env!("CARGO_BIN_EXE_fig10_bounded"),
        &[("MOQO_QUERIES", "1,6")],
    );
    let stdout = stdout_of(&out);
    assert!(stdout.contains("Figure 10: bounded MOQO — EXA vs IRA"));
    assert!(stdout.contains("all nine objectives; bounds vary over {3, 6, 9}"));
    assert!(stdout
        .contains("query,bounds,algorithm,timeouts_pct,time_ms,memory_kb,iterations,wcost_pct"));
    assert!(stdout.contains("paper reference:"));
    for algo in ["EXA", "IRA(1.15)", "IRA(1.5)", "IRA(2)"] {
        assert!(stdout.contains(algo), "{algo} row missing");
    }
}
