//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` reproduces one figure of the paper's
//! evaluation. The harness provides the common machinery: environment-tuned
//! run configuration, per-test-case measurement, aggregation, and aligned
//! table output.
//!
//! ## Scaling knobs (environment variables)
//!
//! The paper ran on a 12-core server with a *two-hour* timeout and 20 test
//! cases per configuration; the defaults here are laptop-scale. The shapes
//! of all figures are timeout-scale invariant (see DESIGN.md):
//!
//! | variable | default | paper | meaning |
//! |----------|---------|-------|---------|
//! | `MOQO_SF` | 1.0 | 1.0 | TPC-H scale factor |
//! | `MOQO_CASES` | 3 | 20 | test cases per configuration |
//! | `MOQO_TIMEOUT_MS` | 2000 | 7 200 000 | per-run optimization timeout |
//! | `MOQO_SEED` | 42 | — | base RNG seed |
//! | `MOQO_QUERIES` | all | all | comma-separated query subset |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

pub mod experiments;
pub mod report;

pub use experiments::{bounded_rank_cost, run_case, CaseResult};
pub use report::{fmt_duration_ms, fmt_memory_kb, Aggregate, Table};

/// Run configuration shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// TPC-H scale factor.
    pub scale_factor: f64,
    /// Test cases per (query, configuration) cell.
    pub cases: usize,
    /// Per-run optimization timeout.
    pub timeout: Duration,
    /// Base RNG seed; case `i` of query `q` uses `seed + 1000·q + i`.
    pub seed: u64,
    /// Queries to run (TPC-H numbers in figure order).
    pub queries: Vec<u8>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale_factor: 1.0,
            cases: 3,
            timeout: Duration::from_millis(2000),
            seed: 42,
            queries: moqo_tpch::FIGURE_ORDER.to_vec(),
        }
    }
}

impl HarnessConfig {
    /// Reads the configuration from the environment (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = HarnessConfig::default();
        if let Some(sf) = env_f64("MOQO_SF") {
            cfg.scale_factor = sf;
        }
        if let Some(cases) = env_f64("MOQO_CASES") {
            cfg.cases = cases as usize;
        }
        if let Some(ms) = env_f64("MOQO_TIMEOUT_MS") {
            cfg.timeout = Duration::from_millis(ms as u64);
        }
        if let Some(seed) = env_f64("MOQO_SEED") {
            cfg.seed = seed as u64;
        }
        if let Ok(qs) = std::env::var("MOQO_QUERIES") {
            let parsed: Vec<u8> = qs
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|q| (1..=22).contains(q))
                .collect();
            if !parsed.is_empty() {
                cfg.queries = parsed;
            }
        }
        cfg
    }

    /// Deterministic per-case seed.
    #[must_use]
    pub fn case_seed(&self, query_no: u8, case: usize, salt: u64) -> u64 {
        self.seed
            .wrapping_add(1000 * u64::from(query_no))
            .wrapping_add(case as u64)
            .wrapping_add(salt.wrapping_mul(1_000_003))
    }

    /// One-line description for figure headers.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "SF={} cases={} timeout={:?} seed={} queries={}",
            self.scale_factor,
            self.cases,
            self.timeout,
            self.seed,
            self.queries.len()
        )
    }
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_queries_in_figure_order() {
        let cfg = HarnessConfig::default();
        assert_eq!(cfg.queries, moqo_tpch::FIGURE_ORDER.to_vec());
        assert_eq!(cfg.cases, 3);
    }

    #[test]
    fn case_seeds_are_distinct() {
        let cfg = HarnessConfig::default();
        let a = cfg.case_seed(3, 0, 0);
        let b = cfg.case_seed(3, 1, 0);
        let c = cfg.case_seed(4, 0, 0);
        let d = cfg.case_seed(3, 0, 1);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn describe_mentions_config() {
        let s = HarnessConfig::default().describe();
        assert!(s.contains("SF=1"));
        assert!(s.contains("cases=3"));
    }
}
