//! Service load replay: hammers the optimization service with a skewed
//! trace of mixed TPC-H and large-join-graph requests at configurable
//! concurrency, then reports throughput, latency percentiles, cache hit
//! ratio and the per-algorithm block mix — and writes the `BENCH_pr7.json`
//! snapshot the perf trajectory tracks.
//!
//! The trace is skewed on purpose: real frontends re-send the same hot
//! queries, which is exactly what the α-aware plan cache exploits. 80% of
//! requests draw from the three hottest pool entries (small TPC-H blocks
//! the DP schemes answer and the cache then serves), the rest spread over
//! the full pool including all four `large_join_graph` topologies driven
//! through hinted RMQ.
//!
//! Environment knobs:
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MOQO_SMOKE` | unset | `1`: 128 requests, RMQ budgets ÷10 (CI smoke) |
//! | `MOQO_BENCH_OUT` | `BENCH_pr7.json` | output path |
//! | `MOQO_SL_REQUESTS` | 512 | trace length |
//! | `MOQO_SL_WORKERS` | 4 | service worker threads |
//! | `MOQO_SL_SEED` | 2024 | trace RNG seed |
//! | `MOQO_SL_REPLAY` | unset | deterministic replay: `1` = one worker, submit-after-wait; `2` = two workers, warmed barrier pairs |
//! | `MOQO_SL_FAULTS` | unset | deterministic fault plan (see [`FaultPlan::parse`] grammar) |
//! | `MOQO_SL_TRACE` | unset | `1`: enable the flight recorder. Under replay 1 the trace checksum cells are emitted for `bench_diff`; under the free-running mode the whole trace is driven twice — untraced then traced — and the binary asserts the traced wall time stays within 5% (+0.5 s slack) of the untraced run |
//!
//! Under concurrency the *completion* results are deterministic but the
//! cache hit/miss counters race (whichever worker reaches a cold key first
//! fills it; the rest hit). The replay modes remove the race, so the
//! hit/miss/warm-start cells become machine-independent integers that
//! `bench_diff`'s checksum gate can diff across snapshots — they are only
//! emitted in these modes:
//!
//! * **Replay 1**: a single worker processes one request at a time in
//!   trace order — the strongest determinism, zero concurrency.
//! * **Replay 2**: two workers, but a solo warm-up pass first touches
//!   every pool entry, driving each cache key to its fixed point
//!   (servable keys hit forever after; RMQ/bounded-approximate keys
//!   deterministically warm-start or recompute and reinsert). The trace
//!   then runs as barrier *pairs* (submit two, wait both): because every
//!   key's servability is stable, the per-request counter increments are
//!   order-independent within a pair and the cumulative counters are
//!   machine-independent even though two workers genuinely race — this is
//!   the cell that pins the *sharded* queue and lock-free metrics under
//!   real concurrency.
//!
//! With `MOQO_SL_FAULTS` set, the replay becomes a deterministic *chaos*
//! run: faults are keyed on submission ordinals, so the same trace plus
//! the same plan produces the same caught panics (`Internal` responses),
//! the same worker deaths (and supervisor respawns) and the same injected
//! queue-full rejections on every machine. The binary computes the
//! expected counts straight from the plan and asserts the service's
//! robustness counters match; in the replay modes those counters are also
//! emitted as checksum cells for `bench_diff`'s gate. Cache counter cells
//! are *not* emitted under faults — a panicked warm-up request leaves its
//! key cold, and two workers racing on a cold key fill it in
//! machine-dependent order.

use std::time::{Duration, Instant};

use moqo_catalog::Catalog;
use moqo_core::Algorithm;
use moqo_cost::{Objective, ObjectiveSet, Preference};
use moqo_service::{
    FaultAction, FaultPlan, OptimizationRequest, OptimizationService, ServiceError, Ticket,
    TraceConfig,
};
use moqo_tpch::{large_query_with, query, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn weighted_pref() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

/// The request pool. The first three entries are the hot set.
fn pool(catalog: &Catalog, rmq_samples: u64) -> Vec<OptimizationRequest> {
    let bounded = weighted_pref().bound(Objective::TupleLoss, 0.0);
    let rmq = Algorithm::Rmq {
        samples: rmq_samples,
        seed: 42,
        threads: 1,
    };
    let mut pool = vec![
        // Hot set: small blocks, served from the cache after first touch.
        OptimizationRequest::new(query(catalog, 3), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 12), weighted_pref(), 1.0),
        OptimizationRequest::new(query(catalog, 6), bounded, 1.0),
        // Cold tail: more TPC-H…
        OptimizationRequest::new(query(catalog, 14), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 10), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 4), bounded, 1.0),
        OptimizationRequest::new(query(catalog, 19), weighted_pref(), 1.5),
        // Bounded + approximate: the IRA path.
        OptimizationRequest::new(query(catalog, 12), bounded, 1.5),
    ];
    // …plus every large-join-graph topology through the anytime search.
    for topology in Topology::ALL {
        for n in [8usize, 12] {
            pool.push(
                OptimizationRequest::new(
                    large_query_with(catalog, n, topology),
                    weighted_pref(),
                    2.0,
                )
                .with_hint(rmq),
            );
        }
    }
    pool
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct Cell {
    name: &'static str,
    params: Vec<(&'static str, String)>,
    median_ms: f64,
    checksum: u64,
}

/// Robustness counters a fault plan predicts for the submitted ordinals.
#[derive(Debug, Default)]
struct FaultExpectations {
    panics: u64,
    kills: u64,
    fulls: u64,
}

/// What the trace actually observed on its tickets.
#[derive(Debug, Default)]
struct Outcomes {
    completed: u64,
    internal: u64,
    injected_full: u64,
}

/// Drives the trace against `service` under the given replay mode (see
/// the module docs) and returns the observed outcomes plus the wall time
/// of the submission loop. `chaos` tolerates the two fault-injected
/// failure shapes (`Internal` responses, injected queue-full bounces).
fn drive(
    service: &OptimizationService,
    pool: &[OptimizationRequest],
    trace: &[usize],
    replay: u32,
    chaos: bool,
) -> (Outcomes, Duration) {
    let mut outcomes = Outcomes::default();
    let settle =
        |outcomes: &mut Outcomes,
         result: Result<moqo_service::OptimizationResponse, ServiceError>| {
            match result {
                Ok(response) => {
                    assert!(response.weighted_cost.is_finite());
                    outcomes.completed += 1;
                }
                Err(ServiceError::Internal { .. }) if chaos => outcomes.internal += 1,
                Err(error) => panic!("unexpected error in the trace: {error}"),
            }
        };
    // Submission wrapper tolerating injected queue-full rejections (the
    // only submit-time fault; the trace carries no deadlines and brownout
    // is off).
    let submit = |outcomes: &mut Outcomes, request: &OptimizationRequest| -> Option<Ticket> {
        match service.submit(request.clone()) {
            Ok(ticket) => Some(ticket),
            Err(ServiceError::QueueFull) if chaos => {
                outcomes.injected_full += 1;
                None
            }
            Err(error) => panic!("unexpected submit failure: {error}"),
        }
    };

    let started = Instant::now();
    if replay == 1 {
        // Submit-after-wait: exactly one request in flight, so every cache
        // probe sees the deterministic state the trace prefix produced.
        for &i in trace {
            if let Some(ticket) = submit(&mut outcomes, &pool[i]) {
                settle(&mut outcomes, ticket.wait());
            }
        }
    } else if replay == 2 {
        // Warm-up: touch every pool entry once, solo, driving each cache
        // key to its fixed point (see module docs).
        for request in pool {
            if let Some(ticket) = submit(&mut outcomes, request) {
                settle(&mut outcomes, ticket.wait());
            }
        }
        // Barrier pairs: two requests genuinely in flight across the two
        // workers, yet the counter deltas stay order-independent because
        // every key's servability is already stable.
        for pair in trace.chunks(2) {
            let tickets: Vec<_> = pair
                .iter()
                .filter_map(|&i| submit(&mut outcomes, &pool[i]))
                .collect();
            for t in tickets {
                settle(&mut outcomes, t.wait());
            }
        }
    } else {
        let tickets: Vec<_> = trace
            .iter()
            .filter_map(|&i| submit(&mut outcomes, &pool[i]))
            .collect();
        for t in tickets {
            settle(&mut outcomes, t.wait());
        }
    }
    (outcomes, started.elapsed())
}

fn main() {
    let smoke = std::env::var("MOQO_SMOKE").is_ok_and(|v| v != "0");
    let env_usize = |key: &str, default: usize| -> usize {
        std::env::var(key)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default)
    };
    let replay: u32 = std::env::var("MOQO_SL_REPLAY")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    assert!(replay <= 2, "MOQO_SL_REPLAY must be 0, 1 or 2");
    let trace_on = std::env::var("MOQO_SL_TRACE").is_ok_and(|v| v != "0");
    let requests = env_usize("MOQO_SL_REQUESTS", if smoke { 128 } else { 512 });
    let workers = match replay {
        1 => 1,
        2 => 2,
        _ => env_usize("MOQO_SL_WORKERS", 4),
    };
    let seed = env_usize("MOQO_SL_SEED", 2024) as u64;
    let rmq_samples: u64 = if smoke { 100 } else { 1000 };
    let out_path = std::env::var("MOQO_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr7.json".to_owned());
    let faults = FaultPlan::from_env();

    let catalog = moqo_tpch::catalog(0.01);
    let mut builder = OptimizationService::builder(catalog.clone())
        .workers(workers)
        .queue_capacity(requests.max(16))
        .cache_capacity(256);
    if let Some(plan) = faults.clone() {
        builder = builder.faults(plan);
    }
    if trace_on {
        // The logical clock makes the replay-mode event stream (and its
        // checksum) byte-deterministic; free-running mode keeps wall-clock
        // timestamps for real latency attribution.
        builder = builder.tracing(TraceConfig {
            logical_clock: replay > 0,
            ..TraceConfig::default()
        });
    }
    let service = builder.build();
    let pool = pool(&catalog, rmq_samples);
    let hot = 3usize.min(pool.len());

    let mut rng = StdRng::seed_from_u64(seed);
    let trace: Vec<usize> = (0..requests)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < 0.8 {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..pool.len())
            }
        })
        .collect();

    // Every submission outcome is a function of its ordinal and the plan,
    // so the expected robustness counters are computable up front. A
    // `KillWorker` fault answers its request normally (then takes the
    // worker down), an injected `QueueFull` bounces at submission, and a
    // `Panic` comes back as `ServiceError::Internal`.
    let total_submissions = (requests + if replay == 2 { pool.len() } else { 0 }) as u64;
    let mut expected = FaultExpectations::default();
    if let Some(plan) = &faults {
        for ordinal in 0..total_submissions {
            match plan.at(ordinal) {
                Some(FaultAction::Panic) => expected.panics += 1,
                Some(FaultAction::KillWorker) => expected.kills += 1,
                Some(FaultAction::QueueFull) => expected.fulls += 1,
                Some(FaultAction::Delay(_)) | None => {}
            }
        }
    }
    // In-binary tracing-overhead gate: the free-running (concurrent) trace
    // is driven twice against two fresh services — untraced first, then
    // traced — and the traced wall time must stay within 5% plus a fixed
    // slack absorbing scheduler noise on short smoke runs. Replay modes
    // skip the double run; their purpose is checksums, not throughput.
    let untraced_wall = if trace_on && replay == 0 && faults.is_none() {
        let untraced = OptimizationService::builder(catalog.clone())
            .workers(workers)
            .queue_capacity(requests.max(16))
            .cache_capacity(256)
            .build();
        let (_, wall) = drive(&untraced, &pool, &trace, replay, false);
        drop(untraced.shutdown());
        Some(wall)
    } else {
        None
    };

    let (outcomes, wall) = drive(&service, &pool, &trace, replay, faults.is_some());
    let completed = outcomes.completed;

    if let Some(baseline) = untraced_wall {
        let limit = baseline.mul_f64(1.05) + Duration::from_millis(500);
        println!(
            "  trace overhead: untraced {:.1} ms vs traced {:.1} ms (limit {:.1} ms)",
            baseline.as_secs_f64() * 1e3,
            wall.as_secs_f64() * 1e3,
            limit.as_secs_f64() * 1e3,
        );
        assert!(
            wall <= limit,
            "tracing overhead exceeded 5% (+0.5 s slack): untraced {baseline:?}, traced {wall:?}"
        );
    }

    // Chaos runs: wait for the supervisor to finish replacing every
    // injected worker death before snapshotting, so the respawn counter is
    // settled (and therefore checksum-stable) when it is recorded.
    if expected.kills > 0 {
        let deadline = Instant::now() + Duration::from_secs(30);
        while (service.metrics().respawns < expected.kills || service.alive_workers() < workers)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Captured before shutdown (which consumes the service); only `Some`
    // when `MOQO_SL_TRACE` enabled the recorder.
    let trace_snapshot = service.trace_snapshot();
    let metrics = service.shutdown();
    let hit_ratio = metrics.cache.hit_ratio();

    println!(
        "service_load: {requests} requests × {workers} workers in {:.1} ms \
         ({:.0} req/s wall)",
        wall.as_secs_f64() * 1e3,
        completed as f64 / wall.as_secs_f64()
    );
    println!(
        "  latency p50 {:.2} ms | p95 {:.2} ms | p99 {:.2} ms",
        metrics.p50.as_secs_f64() * 1e3,
        metrics.p95.as_secs_f64() * 1e3,
        metrics.p99.as_secs_f64() * 1e3,
    );
    println!(
        "  queue wait p95 {:.2} ms | service time p95 {:.2} ms",
        metrics.queue_p95.as_secs_f64() * 1e3,
        metrics.service_p95.as_secs_f64() * 1e3,
    );
    println!(
        "  cache: {:.1}% hit ratio ({} hits / {} misses / {} warm starts, \
         {} entries, {} evictions)",
        hit_ratio * 100.0,
        metrics.cache.hits,
        metrics.cache.misses,
        metrics.cache.warm_starts,
        metrics.cache.entries,
        metrics.cache.evictions,
    );
    println!(
        "  block mix: {} exa | {} rta | {} ira | {} rmq | {} cache-served \
         ({} downgraded)",
        metrics.blocks_exa,
        metrics.blocks_rta,
        metrics.blocks_ira,
        metrics.blocks_rmq,
        metrics.blocks_cached,
        metrics.downgraded_blocks,
    );

    assert_eq!(metrics.completed, completed);
    // The per-variant error counters must partition the error space: what
    // the seed folded into one overloaded "rejected" number is now
    // rejected + timed_out + failed + shed, and nothing can fall between
    // the counters.
    assert_eq!(
        metrics.rejected + metrics.timed_out + metrics.failed + metrics.shed,
        metrics.errors_total(),
        "error taxonomy counters must sum to the error total"
    );
    if faults.is_none() {
        assert!(
            hit_ratio > 0.5,
            "the skewed trace must produce a >50% cache hit ratio, got {:.1}%",
            hit_ratio * 100.0
        );
        // A deadline-free, fault-free trace errors exactly zero times.
        assert_eq!(metrics.errors_total(), 0, "fault-free traces never error");
        assert_eq!(metrics.panics_total, 0);
        assert_eq!(metrics.respawns, 0);
    } else {
        // Chaos runs: the observed outcomes and the service's robustness
        // counters must both match what the plan predicts, exactly.
        println!(
            "  chaos: {} panics caught | {} workers killed+respawned | \
             {} injected queue-full | {} shed",
            metrics.panics_total, metrics.respawns, outcomes.injected_full, metrics.shed,
        );
        assert_eq!(outcomes.internal, expected.panics, "caught-panic responses");
        assert_eq!(
            outcomes.injected_full, expected.fulls,
            "injected rejections"
        );
        assert_eq!(
            metrics.panics_total, expected.panics,
            "panics_total counter"
        );
        assert_eq!(
            metrics.failed, expected.panics,
            "every Internal counts as failed"
        );
        assert_eq!(
            metrics.respawns, expected.kills,
            "supervisor respawn counter"
        );
        assert_eq!(
            completed,
            total_submissions - expected.panics - expected.fulls,
            "every non-faulted submission completes"
        );
        assert_eq!(metrics.shed, 0, "brownout is off in this trace");
    }

    let base_params = vec![
        ("workers", workers.to_string()),
        ("requests", requests.to_string()),
    ];
    let latency_cell = |pct: &'static str, value: std::time::Duration| Cell {
        name: "service_load_latency",
        params: {
            let mut v = base_params.clone();
            v.push(("percentile", pct.to_owned()));
            v
        },
        median_ms: value.as_secs_f64() * 1e3,
        checksum: completed,
    };
    let mut cells = vec![
        latency_cell("50", metrics.p50),
        latency_cell("95", metrics.p95),
        latency_cell("99", metrics.p99),
        Cell {
            name: "service_load_hit_ratio_pct",
            params: base_params.clone(),
            median_ms: hit_ratio * 100.0,
            checksum: completed,
        },
        Cell {
            name: "service_load_throughput_rps",
            params: base_params.clone(),
            median_ms: completed as f64 / wall.as_secs_f64(),
            checksum: completed,
        },
        Cell {
            name: "service_load_rmq_blocks",
            params: base_params.clone(),
            median_ms: metrics.blocks_rmq as f64,
            checksum: completed,
        },
    ];
    if replay > 0 {
        if faults.is_none() {
            // Cache counters are only deterministic in the fault-free
            // replay modes (an injected warm-up panic leaves its key cold
            // and later pair submissions race on it); the value doubles as
            // the checksum so `bench_diff` gates it.
            for (counter, value) in [
                ("hits", metrics.cache.hits),
                ("misses", metrics.cache.misses),
                ("warm_starts", metrics.cache.warm_starts),
                ("insertions", metrics.cache.insertions),
            ] {
                let mut params = base_params.clone();
                params.push(("counter", counter.to_owned()));
                cells.push(Cell {
                    name: "service_load_replay_cache",
                    params,
                    median_ms: value as f64,
                    checksum: value,
                });
            }
        }
        // The per-variant error counters, gated the same way: a replay
        // trace carries no deadlines, so every cell stays pinned at zero
        // in a fault-free run — and at the plan-predicted counts in a
        // chaos run. Any drift means the serving path started misrouting
        // or inventing errors.
        for (variant, value) in [
            ("rejected", metrics.rejected),
            ("timed_out", metrics.timed_out),
            ("failed", metrics.failed),
            ("shed", metrics.shed),
        ] {
            let mut params = base_params.clone();
            params.push(("variant", variant.to_owned()));
            cells.push(Cell {
                name: "service_load_replay_errors",
                params,
                median_ms: value as f64,
                checksum: value,
            });
        }
        // The robustness counters: caught panics, supervisor respawns and
        // injected rejections replay byte-stable because faults are keyed
        // on submission ordinals — this is the chaos gate's payload (and
        // it pins all three at zero for fault-free replays).
        for (counter, value) in [
            ("panics_total", metrics.panics_total),
            ("respawns", metrics.respawns),
            ("injected_queue_full", outcomes.injected_full),
        ] {
            let mut params = base_params.clone();
            params.push(("counter", counter.to_owned()));
            cells.push(Cell {
                name: "service_load_fault_replay",
                params,
                median_ms: value as f64,
                checksum: value,
            });
        }
    }
    if let Some(snapshot) = &trace_snapshot {
        println!(
            "  trace: {} events total ({} overwritten in the ring), {} error exemplars, \
             stream checksum {:#018x}",
            snapshot.events_total,
            snapshot.dropped_events,
            snapshot.error_exemplars.len(),
            snapshot.stream_checksum,
        );
        if replay == 1 {
            // Single-worker replay is the only mode where the *ordered*
            // event stream is interleaving-free, so its checksum (and the
            // event counts) are machine-independent integers bench_diff
            // can gate byte-for-byte.
            for (counter, value) in [
                ("events_total", snapshot.events_total),
                ("dropped_events", snapshot.dropped_events),
                ("error_exemplars", snapshot.error_exemplars.len() as u64),
                ("stream_checksum", snapshot.stream_checksum),
            ] {
                let mut params = base_params.clone();
                params.push(("counter", counter.to_owned()));
                cells.push(Cell {
                    name: "service_trace_replay",
                    params,
                    median_ms: 0.0,
                    checksum: value,
                });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"moqo-bench-snapshot/v1\",\n");
    json.push_str("  \"pr\": 7,\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let params: Vec<String> = c
            .params
            .iter()
            .map(|(k, v)| {
                // Numeric values stay bare; anything else is a JSON string.
                if v.parse::<f64>().is_ok() {
                    format!("\"{}\": {}", json_escape(k), v)
                } else {
                    format!("\"{}\": \"{}\"", json_escape(k), json_escape(v))
                }
            })
            .collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", {}, \"median_ms\": {:.4}, \"checksum\": {}}}{}\n",
            json_escape(c.name),
            params.join(", "),
            c.median_ms,
            c.checksum,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("snapshot file must be writable");
    println!("\nwrote {} cells to {out_path}", cells.len());
}
