//! Service load replay: hammers the optimization service with a skewed
//! trace of mixed TPC-H and large-join-graph requests at configurable
//! concurrency, then reports throughput, latency percentiles, cache hit
//! ratio and the per-algorithm block mix — and writes the `BENCH_pr7.json`
//! snapshot the perf trajectory tracks.
//!
//! The trace is skewed on purpose: real frontends re-send the same hot
//! queries, which is exactly what the α-aware plan cache exploits. 80% of
//! requests draw from the three hottest pool entries (small TPC-H blocks
//! the DP schemes answer and the cache then serves), the rest spread over
//! the full pool including all four `large_join_graph` topologies driven
//! through hinted RMQ.
//!
//! Environment knobs:
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MOQO_SMOKE` | unset | `1`: 128 requests, RMQ budgets ÷10 (CI smoke) |
//! | `MOQO_BENCH_OUT` | `BENCH_pr7.json` | output path |
//! | `MOQO_SL_REQUESTS` | 512 | trace length |
//! | `MOQO_SL_WORKERS` | 4 | service worker threads |
//! | `MOQO_SL_SEED` | 2024 | trace RNG seed |
//! | `MOQO_SL_REPLAY` | unset | deterministic replay: `1` = one worker, submit-after-wait; `2` = two workers, warmed barrier pairs |
//!
//! Under concurrency the *completion* results are deterministic but the
//! cache hit/miss counters race (whichever worker reaches a cold key first
//! fills it; the rest hit). The replay modes remove the race, so the
//! hit/miss/warm-start cells become machine-independent integers that
//! `bench_diff`'s checksum gate can diff across snapshots — they are only
//! emitted in these modes:
//!
//! * **Replay 1**: a single worker processes one request at a time in
//!   trace order — the strongest determinism, zero concurrency.
//! * **Replay 2**: two workers, but a solo warm-up pass first touches
//!   every pool entry, driving each cache key to its fixed point
//!   (servable keys hit forever after; RMQ/bounded-approximate keys
//!   deterministically warm-start or recompute and reinsert). The trace
//!   then runs as barrier *pairs* (submit two, wait both): because every
//!   key's servability is stable, the per-request counter increments are
//!   order-independent within a pair and the cumulative counters are
//!   machine-independent even though two workers genuinely race — this is
//!   the cell that pins the *sharded* queue and lock-free metrics under
//!   real concurrency.

use std::time::Instant;

use moqo_catalog::Catalog;
use moqo_core::Algorithm;
use moqo_cost::{Objective, ObjectiveSet, Preference};
use moqo_service::{OptimizationRequest, OptimizationService};
use moqo_tpch::{large_query_with, query, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn weighted_pref() -> Preference {
    Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
}

/// The request pool. The first three entries are the hot set.
fn pool(catalog: &Catalog, rmq_samples: u64) -> Vec<OptimizationRequest> {
    let bounded = weighted_pref().bound(Objective::TupleLoss, 0.0);
    let rmq = Algorithm::Rmq {
        samples: rmq_samples,
        seed: 42,
        threads: 1,
    };
    let mut pool = vec![
        // Hot set: small blocks, served from the cache after first touch.
        OptimizationRequest::new(query(catalog, 3), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 12), weighted_pref(), 1.0),
        OptimizationRequest::new(query(catalog, 6), bounded, 1.0),
        // Cold tail: more TPC-H…
        OptimizationRequest::new(query(catalog, 14), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 10), weighted_pref(), 2.0),
        OptimizationRequest::new(query(catalog, 4), bounded, 1.0),
        OptimizationRequest::new(query(catalog, 19), weighted_pref(), 1.5),
        // Bounded + approximate: the IRA path.
        OptimizationRequest::new(query(catalog, 12), bounded, 1.5),
    ];
    // …plus every large-join-graph topology through the anytime search.
    for topology in Topology::ALL {
        for n in [8usize, 12] {
            pool.push(
                OptimizationRequest::new(
                    large_query_with(catalog, n, topology),
                    weighted_pref(),
                    2.0,
                )
                .with_hint(rmq),
            );
        }
    }
    pool
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct Cell {
    name: &'static str,
    params: Vec<(&'static str, String)>,
    median_ms: f64,
    checksum: u64,
}

fn main() {
    let smoke = std::env::var("MOQO_SMOKE").is_ok_and(|v| v != "0");
    let env_usize = |key: &str, default: usize| -> usize {
        std::env::var(key)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default)
    };
    let replay: u32 = std::env::var("MOQO_SL_REPLAY")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    assert!(replay <= 2, "MOQO_SL_REPLAY must be 0, 1 or 2");
    let requests = env_usize("MOQO_SL_REQUESTS", if smoke { 128 } else { 512 });
    let workers = match replay {
        1 => 1,
        2 => 2,
        _ => env_usize("MOQO_SL_WORKERS", 4),
    };
    let seed = env_usize("MOQO_SL_SEED", 2024) as u64;
    let rmq_samples: u64 = if smoke { 100 } else { 1000 };
    let out_path = std::env::var("MOQO_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr7.json".to_owned());

    let catalog = moqo_tpch::catalog(0.01);
    let service = OptimizationService::builder(catalog.clone())
        .workers(workers)
        .queue_capacity(requests.max(16))
        .cache_capacity(256)
        .build();
    let pool = pool(&catalog, rmq_samples);
    let hot = 3usize.min(pool.len());

    let mut rng = StdRng::seed_from_u64(seed);
    let trace: Vec<usize> = (0..requests)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < 0.8 {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..pool.len())
            }
        })
        .collect();

    let started = Instant::now();
    let mut completed = 0u64;
    if replay == 1 {
        // Submit-after-wait: exactly one request in flight, so every cache
        // probe sees the deterministic state the trace prefix produced.
        for &i in &trace {
            let response = service
                .submit_wait(pool[i].clone())
                .expect("no deadlines in the trace");
            assert!(response.weighted_cost.is_finite());
            completed += 1;
        }
    } else if replay == 2 {
        // Warm-up: touch every pool entry once, solo, driving each cache
        // key to its fixed point (see module docs).
        for request in &pool {
            service
                .submit_wait(request.clone())
                .expect("no deadlines in the pool");
            completed += 1;
        }
        // Barrier pairs: two requests genuinely in flight across the two
        // workers, yet the counter deltas stay order-independent because
        // every key's servability is already stable.
        for pair in trace.chunks(2) {
            let tickets: Vec<_> = pair
                .iter()
                .map(|&i| {
                    service
                        .submit(pool[i].clone())
                        .expect("queue sized to the trace")
                })
                .collect();
            for t in tickets {
                let response = t.wait().expect("no deadlines in the trace");
                assert!(response.weighted_cost.is_finite());
                completed += 1;
            }
        }
    } else {
        let tickets: Vec<_> = trace
            .iter()
            .map(|&i| {
                service
                    .submit(pool[i].clone())
                    .expect("queue sized to the trace")
            })
            .collect();
        for t in tickets {
            let response = t.wait().expect("no deadlines in the trace");
            assert!(response.weighted_cost.is_finite());
            completed += 1;
        }
    }
    let wall = started.elapsed();
    let metrics = service.shutdown();
    let hit_ratio = metrics.cache.hit_ratio();

    println!(
        "service_load: {requests} requests × {workers} workers in {:.1} ms \
         ({:.0} req/s wall)",
        wall.as_secs_f64() * 1e3,
        completed as f64 / wall.as_secs_f64()
    );
    println!(
        "  latency p50 {:.2} ms | p95 {:.2} ms | p99 {:.2} ms",
        metrics.p50.as_secs_f64() * 1e3,
        metrics.p95.as_secs_f64() * 1e3,
        metrics.p99.as_secs_f64() * 1e3,
    );
    println!(
        "  queue wait p95 {:.2} ms | service time p95 {:.2} ms",
        metrics.queue_p95.as_secs_f64() * 1e3,
        metrics.service_p95.as_secs_f64() * 1e3,
    );
    println!(
        "  cache: {:.1}% hit ratio ({} hits / {} misses / {} warm starts, \
         {} entries, {} evictions)",
        hit_ratio * 100.0,
        metrics.cache.hits,
        metrics.cache.misses,
        metrics.cache.warm_starts,
        metrics.cache.entries,
        metrics.cache.evictions,
    );
    println!(
        "  block mix: {} exa | {} rta | {} ira | {} rmq | {} cache-served \
         ({} downgraded)",
        metrics.blocks_exa,
        metrics.blocks_rta,
        metrics.blocks_ira,
        metrics.blocks_rmq,
        metrics.blocks_cached,
        metrics.downgraded_blocks,
    );

    assert_eq!(metrics.completed, completed);
    assert!(
        hit_ratio > 0.5,
        "the skewed trace must produce a >50% cache hit ratio, got {:.1}%",
        hit_ratio * 100.0
    );
    // The per-variant error counters must partition the error space: what
    // the seed folded into one overloaded "rejected" number is now
    // rejected + timed_out + failed, and nothing can fall between the
    // counters. A deadline-free trace errors exactly zero times.
    assert_eq!(
        metrics.rejected + metrics.timed_out + metrics.failed,
        metrics.errors_total(),
        "error taxonomy counters must sum to the error total"
    );
    assert_eq!(
        metrics.errors_total(),
        0,
        "deadline-free traces never error"
    );

    let base_params = vec![
        ("workers", workers.to_string()),
        ("requests", requests.to_string()),
    ];
    let latency_cell = |pct: &'static str, value: std::time::Duration| Cell {
        name: "service_load_latency",
        params: {
            let mut v = base_params.clone();
            v.push(("percentile", pct.to_owned()));
            v
        },
        median_ms: value.as_secs_f64() * 1e3,
        checksum: completed,
    };
    let mut cells = vec![
        latency_cell("50", metrics.p50),
        latency_cell("95", metrics.p95),
        latency_cell("99", metrics.p99),
        Cell {
            name: "service_load_hit_ratio_pct",
            params: base_params.clone(),
            median_ms: hit_ratio * 100.0,
            checksum: completed,
        },
        Cell {
            name: "service_load_throughput_rps",
            params: base_params.clone(),
            median_ms: completed as f64 / wall.as_secs_f64(),
            checksum: completed,
        },
        Cell {
            name: "service_load_rmq_blocks",
            params: base_params.clone(),
            median_ms: metrics.blocks_rmq as f64,
            checksum: completed,
        },
    ];
    if replay > 0 {
        // Cache counters are only deterministic in the replay modes; the
        // value doubles as the checksum so `bench_diff` gates it.
        for (counter, value) in [
            ("hits", metrics.cache.hits),
            ("misses", metrics.cache.misses),
            ("warm_starts", metrics.cache.warm_starts),
            ("insertions", metrics.cache.insertions),
        ] {
            let mut params = base_params.clone();
            params.push(("counter", counter.to_owned()));
            cells.push(Cell {
                name: "service_load_replay_cache",
                params,
                median_ms: value as f64,
                checksum: value,
            });
        }
        // The per-variant error counters, gated the same way: a replay
        // trace carries no deadlines, so every cell must stay pinned at
        // zero — any drift means the serving path started misrouting or
        // inventing errors.
        for (variant, value) in [
            ("rejected", metrics.rejected),
            ("timed_out", metrics.timed_out),
            ("failed", metrics.failed),
        ] {
            let mut params = base_params.clone();
            params.push(("variant", variant.to_owned()));
            cells.push(Cell {
                name: "service_load_replay_errors",
                params,
                median_ms: value as f64,
                checksum: value,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"moqo-bench-snapshot/v1\",\n");
    json.push_str("  \"pr\": 7,\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let params: Vec<String> = c
            .params
            .iter()
            .map(|(k, v)| {
                // Numeric values stay bare; anything else is a JSON string.
                if v.parse::<f64>().is_ok() {
                    format!("\"{}\": {}", json_escape(k), v)
                } else {
                    format!("\"{}\": \"{}\"", json_escape(k), json_escape(v))
                }
            })
            .collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", {}, \"median_ms\": {:.4}, \"checksum\": {}}}{}\n",
            json_escape(c.name),
            params.join(", "),
            c.median_ms,
            c.checksum,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("snapshot file must be writable");
    println!("\nwrote {} cells to {out_path}", cells.len());
}
