//! Figure 6: dominated versus approximately dominated area (α = 1.5).
//!
//! For each point of a probe grid over the cost space, classifies whether
//! the running example's plan set dominates it exactly or only
//! approximately — the two regions the RTA's pruning distinguishes.

use moqo_cost::running_example as ex;
use moqo_cost::{approx_dominates, dominates};

fn main() {
    let alpha = 1.5;
    let objectives = ex::objectives();
    let plans = ex::plan_cost_vectors();

    println!("Figure 6: dominated vs approximately dominated area (α = {alpha})");
    println!();
    println!("legend: '#' dominated, '+' approximately dominated only, '.' neither");
    println!("        (x: buffer 0..4, y: time 0..4; plan vectors marked 'o')");
    println!();

    // 21×21 grid over [0,4]².
    let steps = 21;
    for row in (0..=steps).rev() {
        let time = 4.0 * f64::from(row) / f64::from(steps);
        let mut line = String::new();
        for col in 0..=steps {
            let buffer = 4.0 * f64::from(col) / f64::from(steps);
            let probe = ex::point(buffer, time);
            let is_plan = ex::PLAN_POINTS
                .iter()
                .any(|&(b, t)| (b - buffer).abs() < 0.11 && (t - time).abs() < 0.11);
            let dominated = plans.iter().any(|p| dominates(p, &probe, objectives));
            let approx = plans
                .iter()
                .any(|p| approx_dominates(p, &probe, alpha, objectives));
            line.push(if is_plan {
                'o'
            } else if dominated {
                '#'
            } else if approx {
                '+'
            } else {
                '.'
            });
        }
        println!("  {line}");
    }
    println!();

    // Quantify the area growth (the reason the RTA stores fewer plans).
    let mut dominated_cells = 0u32;
    let mut approx_cells = 0u32;
    let fine = 200;
    for row in 0..=fine {
        for col in 0..=fine {
            let probe = ex::point(
                4.0 * f64::from(col) / f64::from(fine),
                4.0 * f64::from(row) / f64::from(fine),
            );
            if plans.iter().any(|p| dominates(p, &probe, objectives)) {
                dominated_cells += 1;
            }
            if plans
                .iter()
                .any(|p| approx_dominates(p, &probe, alpha, objectives))
            {
                approx_cells += 1;
            }
        }
    }
    let total = (fine + 1) * (fine + 1);
    println!(
        "dominated area: {:.1}% of the window; approximately dominated: {:.1}%",
        100.0 * f64::from(dominated_cells) / f64::from(total),
        100.0 * f64::from(approx_cells) / f64::from(total)
    );
    assert!(approx_cells > dominated_cells);
}
