//! Figure 4: three-dimensional Pareto-frontier approximations for TPC-H
//! Query 5 over the objectives tuple loss, buffer footprint and total
//! execution time — coarse (α = 2) versus fine (α = 1.25) approximation.
//!
//! Prints both frontiers as (tuple loss, buffer bytes, time) triples; the
//! fine approximation resembles the true frontier with many more points.

use moqo_bench::Table;
use moqo_core::{rta, Deadline};
use moqo_cost::{Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};

fn main() {
    let catalog = moqo_tpch::catalog(1.0);
    let query = moqo_tpch::query(&catalog, 5);
    let graph = &query.blocks[0];
    let params = CostModelParams::default();
    let model = CostModel::new(&params, &catalog, graph);

    let preference = Preference::over(ObjectiveSet::from_objectives(&[
        Objective::TupleLoss,
        Objective::BufferFootprint,
        Objective::TotalTime,
    ]))
    .weight(Objective::TotalTime, 1.0);

    println!("Figure 4: 3-D Pareto frontier approximations, TPC-H Q5");
    println!("objectives: tuple loss × buffer footprint × total time");
    println!();

    let mut sizes = Vec::new();
    for alpha in [2.0, 1.25] {
        let result = rta(&model, &preference, alpha, &Deadline::unlimited());
        let mut rows: Vec<(f64, f64, f64)> = result
            .final_plans
            .iter()
            .map(|e| {
                (
                    e.cost.get(Objective::TupleLoss),
                    e.cost.get(Objective::BufferFootprint),
                    e.cost.get(Objective::TotalTime),
                )
            })
            .collect();
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "--- α = {alpha}: {} frontier points ({} plans considered, {:?}) ---",
            rows.len(),
            result.stats.considered_plans,
            "no timeout"
        );
        let mut table = Table::new(&["tuple_loss", "buffer_bytes", "time_pg_units"]);
        for (loss, buffer, time) in &rows {
            table.row(vec![
                format!("{loss:.4}"),
                format!("{buffer:.0}"),
                format!("{time:.0}"),
            ]);
        }
        println!("{}", table.render_csv());
        sizes.push(rows.len());
    }

    println!(
        "coarse (α=2) kept {} representatives; fine (α=1.25) kept {} —",
        sizes[0], sizes[1]
    );
    println!("the fine approximation resembles the real Pareto surface more closely.");
    assert!(
        sizes[1] > sizes[0],
        "finer precision must retain more tradeoffs"
    );
}
