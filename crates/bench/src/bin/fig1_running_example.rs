//! Figure 1: the two MOQO problem variants on the running example.
//!
//! Prints the plan cost vectors, the weight vector, and the optimum under
//! (a) weights only and (b) weights plus bounds — showing that the bounds
//! move the optimum to a different Pareto plan.

use moqo_cost::running_example as ex;
use moqo_cost::{Objective, Preference};

fn main() {
    let objectives = ex::objectives();
    let weights = ex::weights();
    let bounds = ex::bounds();

    println!("Figure 1: weighted vs bounded-weighted MOQO (running example)");
    println!();
    println!("plan cost vectors (buffer space, time):");
    for &(b, t) in &ex::PLAN_POINTS {
        println!("  ({b:.1}, {t:.1})");
    }
    println!();
    println!(
        "weights: buffer={}, time={}",
        weights.get(Objective::BufferFootprint),
        weights.get(Objective::TotalTime)
    );
    println!(
        "bounds:  buffer≤{}, time≤{}",
        bounds.get(Objective::BufferFootprint),
        bounds.get(Objective::TotalTime)
    );
    println!();

    // (a) weighted MOQO.
    let weighted_pref = Preference {
        objectives,
        weights,
        bounds: moqo_cost::Bounds::unbounded(),
    };
    let best = ex::plan_cost_vectors()
        .into_iter()
        .min_by(|a, b| {
            weighted_pref
                .weighted_cost(a)
                .partial_cmp(&weighted_pref.weighted_cost(b))
                .unwrap()
        })
        .unwrap();
    println!(
        "(a) weighted optimum:         ({:.1}, {:.1})  weighted cost {:.2}",
        best.get(Objective::BufferFootprint),
        best.get(Objective::TotalTime),
        weighted_pref.weighted_cost(&best)
    );
    assert_eq!(
        (
            best.get(Objective::BufferFootprint),
            best.get(Objective::TotalTime)
        ),
        ex::WEIGHTED_OPTIMUM
    );

    // (b) bounded-weighted MOQO.
    let bounded_pref = ex::preference();
    let feasible: Vec<_> = ex::plan_cost_vectors()
        .into_iter()
        .filter(|c| bounded_pref.respects_bounds(c))
        .collect();
    let best_bounded = feasible
        .into_iter()
        .min_by(|a, b| {
            bounded_pref
                .weighted_cost(a)
                .partial_cmp(&bounded_pref.weighted_cost(b))
                .unwrap()
        })
        .unwrap();
    println!(
        "(b) bounded-weighted optimum: ({:.1}, {:.1})  weighted cost {:.2}",
        best_bounded.get(Objective::BufferFootprint),
        best_bounded.get(Objective::TotalTime),
        bounded_pref.weighted_cost(&best_bounded)
    );
    assert_eq!(
        (
            best_bounded.get(Objective::BufferFootprint),
            best_bounded.get(Objective::TotalTime)
        ),
        ex::BOUNDED_OPTIMUM
    );
    println!();
    println!("the bounds exclude the weighted optimum, so a different Pareto");
    println!("plan becomes optimal — the paper's motivation for the IRA.");
}
