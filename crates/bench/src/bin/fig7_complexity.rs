//! Figure 7: time-complexity comparison of the exact MOQO algorithm (EXA),
//! the approximation scheme with α = 1.05 and α = 1.5, and Selinger's SOQO
//! algorithm — the paper's setting j = 6, l = 3, m = 10^5.
//!
//! Prints log10 of the worst-case bounds per number of join tables; the
//! paper's y-axis spans 10^−3 … 10^53.

use moqo_bench::Table;
use moqo_core::complexity::{log10_exa_time, log10_rta_time, log10_selinger_time};

fn main() {
    let (j, l, m) = (6u64, 3u64, 1e5);
    println!("Figure 7: log10 worst-case time (j = {j}, l = {l}, m = {m:e})");
    println!();

    let mut table = Table::new(&["n", "EXA", "RTA(α=1.05)", "RTA(α=1.5)", "Selinger"]);
    for n in 2..=10u64 {
        table.row(vec![
            n.to_string(),
            format!("{:.2}", log10_exa_time(j, n)),
            format!("{:.2}", log10_rta_time(j, n, l, m, 1.05)),
            format!("{:.2}", log10_rta_time(j, n, l, m, 1.5)),
            format!("{:.2}", log10_selinger_time(j, n)),
        ]);
    }
    println!("{}", table.render());
    println!("CSV:");
    println!("{}", table.render_csv());

    // The figure's qualitative content: the EXA curve crosses above both RTA
    // curves and explodes factorially, while the RTA curves stay a
    // polynomial factor above Selinger.
    let exa10 = log10_exa_time(j, 10);
    let rta10 = log10_rta_time(j, 10, l, m, 1.05);
    assert!(exa10 > rta10, "EXA must dominate by n = 10");
    assert!(exa10 > 45.0, "EXA approaches the paper's 10^53 scale");
}
