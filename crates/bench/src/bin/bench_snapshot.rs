//! Perf-trajectory snapshot: runs a fixed workload matrix and writes median
//! wall-times to a JSON file (`BENCH_pr6.json` by default), so successive
//! PRs can track the optimizer hot paths with one committed artifact per
//! snapshot instead of scattered criterion reports.
//!
//! The matrix covers the three hot paths this repository optimizes:
//!
//! * **DP insert stream** — 2000 random cost vectors through
//!   `PlanSet::prune_insert` at 2/6/9 objectives,
//! * **Frontier structures** — the same stream pinned to each frontier
//!   layout (`plain` linear sets vs the `grid` sub-linear engine); the
//!   checksums must agree per objective count, certifying that the indexed
//!   engine produces byte-identical fronts,
//! * **Frontier probe outcomes** — how the sub-linear engine resolved the
//!   EXA chains' dominance probes (grid-cell hits vs cutoff scans), as
//!   zero-time cells whose checksum is the counter value,
//! * **EXA** — the exact DP on 6- and 8-table chain join graphs
//!   (sampling off),
//! * **EXA, props-aware** — the same chains with sampling scans enabled,
//!   where `PruneMode::auto` switches every pruning site to props-aware
//!   dominance; the checksum gates the sound mode's fronts,
//! * **RMQ** — 1k and 10k samples on 8- and 20-table chains at 1, 2 and
//!   4 threads (the fronts are seed-deterministic, so the per-thread rows
//!   also certify the parallel merge: `front` must agree per column).
//!
//! Environment knobs:
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MOQO_SMOKE` | unset | `1`: single rep, budgets ÷10 (CI smoke mode) |
//! | `MOQO_BENCH_OUT` | `BENCH_pr6.json` | output path |
//! | `MOQO_BENCH_REPS` | 5 | repetitions per cell (median is reported) |

use std::time::Instant;

use moqo_core::pareto::{FrontierStructure, PlanEntry, PlanSet, PruneStrategy};
use moqo_core::{exa, rmq, Deadline, RmqConfig};
use moqo_cost::{CostVector, Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};
use moqo_plan::{PlanId, PlanProps, SortOrder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Cell {
    name: String,
    params: Vec<(&'static str, String)>,
    median_ms: f64,
    /// Workload-specific integrity value (front/set size) proving the
    /// measured runs did equivalent work across snapshots.
    checksum: usize,
}

fn median_ms(reps: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut times: Vec<f64> = Vec::with_capacity(reps);
    let mut checksum = 0;
    for _ in 0..reps {
        let started = Instant::now();
        checksum = f();
        times.push(started.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    (times[times.len() / 2], checksum)
}

fn random_entries(n: usize, objectives: usize, seed: u64) -> Vec<PlanEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut a = [0.0; moqo_cost::NUM_OBJECTIVES];
            for v in a.iter_mut().take(objectives) {
                *v = rng.gen_range(1.0..1000.0);
            }
            PlanEntry {
                cost: CostVector::from_array(a),
                props: PlanProps {
                    rels: 1,
                    rows: 1.0,
                    width: 1.0,
                    order: SortOrder::None,
                    sampling_factor: 1.0,
                },
                plan: PlanId(i as u32),
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Emits the frontier engine's probe-outcome counters for one EXA cell as
/// zero-time rows: the checksum IS the counter, so snapshot diffs surface
/// how the structure resolved the run's dominance probes (grid-cell hits
/// vs cutoff scans). The counters are deterministic per workload.
fn push_probe_cells(cells: &mut Vec<Cell>, workload: &str, tables: usize, probes: (u64, u64)) {
    let (grid_hits, scan_probes) = probes;
    for (outcome, value) in [("grid_hit", grid_hits), ("scan", scan_probes)] {
        cells.push(Cell {
            name: format!("{workload}_probes"),
            params: vec![
                ("tables", tables.to_string()),
                ("outcome", format!("\"{outcome}\"")),
            ],
            median_ms: 0.0,
            checksum: usize::try_from(value).expect("probe counters fit usize"),
        });
    }
    println!("{workload}_probes tables={tables}: grid_hit {grid_hits} / scan {scan_probes}");
}

fn main() {
    let smoke = std::env::var("MOQO_SMOKE").is_ok_and(|v| v != "0");
    let reps: usize = std::env::var("MOQO_BENCH_REPS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 });
    let budget_div: u64 = if smoke { 10 } else { 1 };
    let out_path = std::env::var("MOQO_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr6.json".to_owned());

    let preference = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6);
    let params = CostModelParams {
        enable_sampling: false,
        ..CostModelParams::default()
    };
    let catalog = moqo_tpch::catalog(0.01);
    let mut cells: Vec<Cell> = Vec::new();

    // DP insert stream: the Prune hot loop in isolation.
    for &n_objs in &[2usize, 6, 9] {
        let objs: ObjectiveSet = Objective::ALL.into_iter().take(n_objs).collect();
        let entries = random_entries(2000, n_objs, 99);
        let (ms, front) = median_ms(reps, || {
            let mut set = PlanSet::new();
            let strategy = PruneStrategy::exact();
            for e in &entries {
                set.prune_insert(*e, &strategy, objs);
            }
            set.len()
        });
        cells.push(Cell {
            name: "dp_insert_stream".into(),
            params: vec![
                ("objectives", n_objs.to_string()),
                ("vectors", "2000".into()),
            ],
            median_ms: ms,
            checksum: front,
        });
        println!("dp_insert_stream objectives={n_objs}: {ms:.3} ms (set {front})");
    }

    // Frontier structures head-to-head: the same insert stream pinned to
    // each layout. `plain` is the seed's linear scan; `grid` forces the
    // sub-linear engine (two-level props-class fronts + grid-bucket index)
    // from the first insert. Equal checksums per objective count certify
    // that the engine's fronts are byte-identical to the plain sets'.
    for &n_objs in &[2usize, 6, 9] {
        let objs: ObjectiveSet = Objective::ALL.into_iter().take(n_objs).collect();
        let entries = random_entries(2000, n_objs, 99);
        let mut fronts: Vec<usize> = Vec::new();
        for (layout, structure) in [
            ("plain", FrontierStructure::Plain),
            ("grid", FrontierStructure::Indexed),
        ] {
            let (ms, front) = median_ms(reps, || {
                let mut set = PlanSet::with_structure(structure);
                let strategy = PruneStrategy::exact();
                for e in &entries {
                    set.prune_insert(*e, &strategy, objs);
                }
                set.len()
            });
            fronts.push(front);
            cells.push(Cell {
                name: "frontier_insert_stream".into(),
                params: vec![
                    ("objectives", n_objs.to_string()),
                    ("layout", format!("\"{layout}\"")),
                    ("vectors", "2000".into()),
                ],
                median_ms: ms,
                checksum: front,
            });
            println!("frontier_insert_stream objectives={n_objs} layout={layout}: {ms:.3} ms (set {front})");
        }
        assert!(
            fronts.windows(2).all(|w| w[0] == w[1]),
            "frontier layouts disagree at {n_objs} objectives: {fronts:?}"
        );
    }

    // EXA on chain graphs: the full DP inner loop.
    for &n in &[6usize, 8] {
        let graph = moqo_tpch::large_join_graph(&catalog, n);
        let model = CostModel::new(&params, &catalog, &graph);
        let mut probes = (0u64, 0u64);
        let (ms, front) = median_ms(reps, || {
            let result = exa(&model, &preference, &Deadline::unlimited());
            probes = (
                result.stats.frontier_grid_hits,
                result.stats.frontier_scan_probes,
            );
            result.final_plans.len()
        });
        cells.push(Cell {
            name: "exa_chain".into(),
            params: vec![("tables", n.to_string())],
            median_ms: ms,
            checksum: front,
        });
        println!("exa_chain tables={n}: {ms:.3} ms (front {front})");
        push_probe_cells(&mut cells, "exa_chain", n, probes);
    }

    // EXA with sampling scans enabled: the leaking regime, where the
    // entry points auto-select props-aware pruning. The front sizes gate
    // the sound mode's behaviour the same way the cost-only rows gate the
    // paper baseline.
    let sampled_params = CostModelParams::default();
    debug_assert!(sampled_params.enable_sampling);
    for &n in &[6usize, 8] {
        let graph = moqo_tpch::large_join_graph(&catalog, n);
        let model = CostModel::new(&sampled_params, &catalog, &graph);
        let mut probes = (0u64, 0u64);
        let (ms, front) = median_ms(reps, || {
            let result = exa(&model, &preference, &Deadline::unlimited());
            probes = (
                result.stats.frontier_grid_hits,
                result.stats.frontier_scan_probes,
            );
            result.final_plans.len()
        });
        cells.push(Cell {
            name: "exa_chain_props".into(),
            params: vec![("tables", n.to_string())],
            median_ms: ms,
            checksum: front,
        });
        println!("exa_chain_props tables={n}: {ms:.3} ms (front {front})");
        push_probe_cells(&mut cells, "exa_chain_props", n, probes);
    }

    // RMQ: samples × tables × threads. Fronts are deterministic per seed,
    // so equal checksums across the thread column certify the merge.
    for &n in &[8usize, 20] {
        let graph = moqo_tpch::large_join_graph(&catalog, n);
        let model = CostModel::new(&params, &catalog, &graph);
        for &samples in &[1_000u64, 10_000] {
            let samples = (samples / budget_div).max(1);
            for &threads in &[1usize, 2, 4] {
                let config = RmqConfig::new(samples, 42).with_threads(threads);
                let (ms, front) = median_ms(reps, || {
                    rmq(&model, &preference, &config, &Deadline::unlimited())
                        .final_plans
                        .len()
                });
                cells.push(Cell {
                    name: "rmq_chain".into(),
                    params: vec![
                        ("tables", n.to_string()),
                        ("samples", samples.to_string()),
                        ("threads", threads.to_string()),
                    ],
                    median_ms: ms,
                    checksum: front,
                });
                println!(
                    "rmq_chain tables={n} samples={samples} threads={threads}: \
                     {ms:.3} ms (front {front})"
                );
            }
        }
    }

    // Service metrics snapshot cost: the seed cloned and sorted the full
    // latency history under a lock on every snapshot, so cost grew with
    // uptime. The histogram rewrite makes it O(buckets); these cells pin
    // that — the 100× column must not cost 100× (the binary asserts a
    // generous 20× ceiling to stay robust on noisy CI machines).
    {
        use moqo_service::{PlanCache, ServiceMetrics};
        use std::time::Duration;
        let cache = PlanCache::new(8, 1);
        let mut medians: Vec<f64> = Vec::new();
        for &completions in &[10_000u64, 1_000_000] {
            let metrics = ServiceMetrics::default();
            for i in 0..completions {
                metrics.on_submitted();
                metrics.on_completed(
                    Duration::from_micros(i % 3_000),
                    Duration::from_micros(500 + i % 20_000),
                );
            }
            // 64 snapshots per rep so the per-call cost is measurable.
            let (ms, count) = median_ms(reps.max(3), || {
                let mut completed = 0u64;
                for _ in 0..64 {
                    completed = metrics.snapshot(cache.snapshot(), 0).completed;
                }
                usize::try_from(completed).expect("counts fit usize")
            });
            medians.push(ms);
            cells.push(Cell {
                name: "metrics_snapshot_cost".into(),
                params: vec![("completions", completions.to_string())],
                median_ms: ms,
                checksum: count,
            });
            println!("metrics_snapshot_cost completions={completions}: {ms:.3} ms / 64 snapshots");
        }
        assert!(
            medians[1] < medians[0] * 20.0 + 2.0,
            "snapshot cost must be independent of completed-request count: \
             {:.3} ms at 10k vs {:.3} ms at 1M",
            medians[0],
            medians[1]
        );
    }

    // Hand-rolled JSON: the workspace is dependency-free by design.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"moqo-bench-snapshot/v1\",\n");
    json.push_str("  \"pr\": 6,\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let params: Vec<String> = c
            .params
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", json_escape(k), v))
            .collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", {}, \"median_ms\": {:.4}, \"checksum\": {}}}{}\n",
            json_escape(&c.name),
            params.join(", "),
            c.median_ms,
            c.checksum,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("snapshot file must be writable");
    println!("\nwrote {} cells to {out_path}", cells.len());
}
