//! Figure 3: evolution of the optimal plan for TPC-H Query 3 when user
//! preferences change.
//!
//! (a) time-optimal plan under a tuple-loss bound of zero → hash joins;
//! (b) an additional weight on buffer footprint → memory-hungry hash joins
//!     disappear in favour of sort-merge / index-nested-loop joins;
//! (c) an additional bound on startup time → only pipelined
//!     index-nested-loop joins remain (blocking builds/sorts are out).

use moqo_core::{exa, select_best, Deadline};
use moqo_cost::{Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};
use moqo_plan::{render_plan, JoinOp};

fn main() {
    let catalog = moqo_tpch::catalog(1.0);
    let query = moqo_tpch::query(&catalog, 3);
    let graph = &query.blocks[0];
    let params = CostModelParams::default();
    let model = CostModel::new(&params, &catalog, graph);
    let deadline = Deadline::unlimited();

    println!("Figure 3: optimal TPC-H Q3 plan under changing preferences");

    // (a) Minimize execution time, no sampling allowed.
    let pref_a = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .bound(Objective::TupleLoss, 0.0);
    let result_a = exa(&model, &pref_a, &deadline);
    let best_a = select_best(&result_a.final_plans, &pref_a).unwrap();
    println!();
    println!("(a) time-optimal, tuple loss ≤ 0:");
    println!(
        "{}",
        render_plan(&result_a.arena, best_a.plan, graph, &catalog)
    );
    let joins_a = result_a.arena.join_ops(best_a.plan);
    assert!(
        joins_a
            .iter()
            .any(|op| matches!(op, JoinOp::HashJoin { .. })),
        "the time-optimal plan uses hash joins, got {joins_a:?}"
    );

    // (b) Additional weight on buffer footprint.
    let pref_b = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 0.3)
        .bound(Objective::TupleLoss, 0.0);
    let result_b = exa(&model, &pref_b, &deadline);
    let best_b = select_best(&result_b.final_plans, &pref_b).unwrap();
    println!("(b) + weight on buffer footprint:");
    println!(
        "{}",
        render_plan(&result_b.arena, best_b.plan, graph, &catalog)
    );
    let joins_b = result_b.arena.join_ops(best_b.plan);
    assert!(
        !joins_b
            .iter()
            .any(|op| matches!(op, JoinOp::HashJoin { .. })),
        "the buffer-aware plan avoids hash joins, got {joins_b:?}"
    );

    // (c) Additional bound on startup time, placed just above the minimal
    // achievable startup (the pipelined index-nested-loop chain): blocking
    // hash builds and sort-merge inputs cannot meet it.
    let startup_bound =
        2.0 * moqo_core::min_cost_for_objective(&model, Objective::StartupTime, &deadline);
    let pref_c = pref_b.bound(Objective::StartupTime, startup_bound);
    let result_c = exa(&model, &pref_c, &deadline);
    let best_c = select_best(&result_c.final_plans, &pref_c).unwrap();
    println!("(c) + bound on startup time ({startup_bound:.3} units):");
    println!(
        "{}",
        render_plan(&result_c.arena, best_c.plan, graph, &catalog)
    );
    let joins_c = result_c.arena.join_ops(best_c.plan);
    assert!(
        joins_c
            .iter()
            .all(|op| matches!(op, JoinOp::IndexNestedLoop)),
        "under a tight startup bound only IdxNL joins survive, got {joins_c:?}"
    );
    assert!(best_c.cost.get(Objective::StartupTime) <= startup_bound);

    println!(
        "buffer footprints: (a) {:.0} B  (b) {:.0} B  (c) {:.0} B",
        best_a.cost.get(Objective::BufferFootprint),
        best_b.cost.get(Objective::BufferFootprint),
        best_c.cost.get(Objective::BufferFootprint)
    );
    println!(
        "startup times:     (a) {:.1}    (b) {:.1}    (c) {:.1}",
        best_a.cost.get(Objective::StartupTime),
        best_b.cost.get(Objective::StartupTime),
        best_c.cost.get(Objective::StartupTime)
    );
}
