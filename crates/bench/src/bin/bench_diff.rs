//! Compares two `BENCH_*.json` snapshots and exits nonzero on regressions,
//! so the perf trajectory is CI-gated instead of eyeballed.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--max-regression <pct>]
//!            [--timing-cells <name-prefix>]...
//! ```
//!
//! Two gates:
//!
//! * **Checksums** (always on): cells present in both files must report the
//!   same integrity checksum — fronts and set sizes are deterministic per
//!   seed on every platform, so a mismatch means the *work* changed, not
//!   the machine.
//! * **Timings** (only with `--max-regression <pct>`): a cell whose
//!   `median_ms` grew by more than `pct` percent fails. Timing gates only
//!   make sense when both snapshots come from the same machine; CI uses
//!   the checksum gate against the committed baseline and the timing gate
//!   against a same-run snapshot. `--timing-cells` (repeatable) restricts
//!   the timing gate to cells whose name starts with one of the given
//!   prefixes — that is how CI tracks a specific watched workload (the
//!   props-aware EXA chains) against the committed baseline with a
//!   cross-machine-tolerant threshold while leaving the noisier cells to
//!   the checksum gate alone.
//!
//! Cells are matched by `name` plus all parameter fields; baseline cells
//! missing from the candidate fail (a silently dropped benchmark is a
//! regression too), extra candidate cells only warn.
//!
//! Exit codes: `0` clean, `1` regression, `2` usage or parse error.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One benchmark cell: identity (name + params), timing, and checksum.
#[derive(Debug, Clone, PartialEq)]
struct Cell {
    identity: String,
    median_ms: f64,
    checksum: Option<f64>,
}

/// Minimal parser for the snapshot dialect the `bench_snapshot` and
/// `service_load` binaries write: a `"results"` array of flat objects with
/// string or numeric values. Not a general JSON parser on purpose — the
/// workspace is dependency-free and the input is machine-written.
fn parse_cells(text: &str) -> Result<Vec<Cell>, String> {
    let results_at = text
        .find("\"results\"")
        .ok_or_else(|| "no \"results\" array found".to_owned())?;
    let rest = &text[results_at..];
    let open = rest
        .find('[')
        .ok_or_else(|| "\"results\" is not an array".to_owned())?;
    let mut cells = Vec::new();
    let mut chars = rest[open + 1..].char_indices().peekable();
    let body = &rest[open + 1..];
    while let Some((i, c)) = chars.next() {
        match c {
            '{' => {
                let end = body[i..]
                    .find('}')
                    .map(|off| i + off)
                    .ok_or_else(|| "unterminated result object".to_owned())?;
                cells.push(parse_object(&body[i + 1..end])?);
                while let Some(&(j, _)) = chars.peek() {
                    if j <= end {
                        chars.next();
                    } else {
                        break;
                    }
                }
            }
            ']' => return Ok(cells),
            c if c.is_whitespace() || c == ',' => {}
            other => return Err(format!("unexpected character {other:?} in results array")),
        }
    }
    Err("unterminated results array".to_owned())
}

/// Parses the interior of one flat `{...}` object (no nesting).
fn parse_object(body: &str) -> Result<Cell, String> {
    let mut fields: BTreeMap<String, String> = BTreeMap::new();
    for pair in split_top_level(body) {
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed field {pair:?}"))?;
        let key = key.trim().trim_matches('"').to_owned();
        let value = value.trim().trim_matches('"').to_owned();
        fields.insert(key, value);
    }
    let name = fields
        .remove("name")
        .ok_or_else(|| "cell without a name".to_owned())?;
    let median_ms = fields
        .remove("median_ms")
        .ok_or_else(|| format!("cell {name} lacks median_ms"))?
        .parse::<f64>()
        .map_err(|e| format!("cell {name}: bad median_ms: {e}"))?;
    let checksum = fields
        .remove("checksum")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|e| format!("cell {name}: bad checksum: {e}"))
        })
        .transpose()?;
    let params: Vec<String> = fields
        .into_iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    Ok(Cell {
        identity: if params.is_empty() {
            name
        } else {
            format!("{name}[{}]", params.join(", "))
        },
        median_ms,
        checksum,
    })
}

/// Splits `a: 1, b: "x,y"` on commas outside string literals.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                if !current.trim().is_empty() {
                    parts.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn run(args: &[String]) -> Result<Vec<String>, String> {
    let mut paths = Vec::new();
    let mut max_regression: Option<f64> = None;
    let mut timing_cells: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-regression" {
            let pct = it
                .next()
                .ok_or_else(|| "--max-regression needs a percentage".to_owned())?;
            max_regression = Some(
                pct.parse::<f64>()
                    .map_err(|e| format!("bad --max-regression value: {e}"))?,
            );
        } else if arg == "--timing-cells" {
            let prefix = it
                .next()
                .ok_or_else(|| "--timing-cells needs a cell-name prefix".to_owned())?;
            timing_cells.push(prefix.clone());
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err("usage: bench_diff <baseline.json> <candidate.json> \
                    [--max-regression <pct>] [--timing-cells <name-prefix>]..."
            .to_owned());
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let baseline = parse_cells(&read(baseline_path)?)?;
    let candidate = parse_cells(&read(candidate_path)?)?;
    let candidate_map: BTreeMap<&str, &Cell> =
        candidate.iter().map(|c| (c.identity.as_str(), c)).collect();

    let mut failures = Vec::new();
    for base in &baseline {
        let Some(cand) = candidate_map.get(base.identity.as_str()) else {
            failures.push(format!("cell disappeared: {}", base.identity));
            continue;
        };
        if let (Some(b), Some(c)) = (base.checksum, cand.checksum) {
            #[allow(clippy::float_cmp)]
            if b != c {
                failures.push(format!(
                    "checksum mismatch in {}: baseline {b} vs candidate {c}",
                    base.identity
                ));
                continue;
            }
        }
        if let Some(pct) = max_regression {
            let gated = timing_cells.is_empty()
                || timing_cells
                    .iter()
                    .any(|p| base.identity.starts_with(p.as_str()));
            let limit = base.median_ms * (1.0 + pct / 100.0);
            if gated && cand.median_ms > limit && cand.median_ms - base.median_ms > 0.01 {
                failures.push(format!(
                    "timing regression in {}: {:.3} ms → {:.3} ms (> +{pct}%)",
                    base.identity, base.median_ms, cand.median_ms
                ));
            }
        }
    }
    let known: std::collections::BTreeSet<&str> =
        baseline.iter().map(|c| c.identity.as_str()).collect();
    for cand in &candidate {
        if !known.contains(cand.identity.as_str()) {
            eprintln!("note: new cell (not gated): {}", cand.identity);
        }
    }
    println!(
        "bench_diff: {} baseline cells, {} candidate cells, {} failure(s)",
        baseline.len(),
        candidate.len(),
        failures.len()
    );
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(failures) if failures.is_empty() => ExitCode::SUCCESS,
        Ok(failures) => {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "schema": "moqo-bench-snapshot/v1",
  "pr": 4,
  "results": [
    {"name": "exa_chain", "tables": 6, "median_ms": 20.5, "checksum": 11},
    {"name": "rmq_chain", "tables": 8, "threads": 2, "median_ms": 4.0, "checksum": 7}
  ]
}"#;

    #[test]
    fn parses_cells_with_identity() {
        let cells = parse_cells(SNAPSHOT).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].identity, "exa_chain[tables=6]");
        assert_eq!(cells[0].median_ms, 20.5);
        assert_eq!(cells[0].checksum, Some(11.0));
        assert_eq!(cells[1].identity, "rmq_chain[tables=8, threads=2]");
    }

    #[test]
    fn self_diff_is_clean() {
        let dir = std::env::temp_dir().join("moqo_bench_diff_self");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        std::fs::write(&path, SNAPSHOT).unwrap();
        let p = path.to_string_lossy().into_owned();
        let failures = run(&[p.clone(), p, "--max-regression".into(), "0".into()]).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn detects_checksum_mismatch_and_timing_regression() {
        let changed = SNAPSHOT
            .replace(
                "\"median_ms\": 20.5, \"checksum\": 11",
                "\"median_ms\": 20.5, \"checksum\": 12",
            )
            .replace("\"median_ms\": 4.0", "\"median_ms\": 9.0");
        let dir = std::env::temp_dir().join("moqo_bench_diff_regress");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, SNAPSHOT).unwrap();
        std::fs::write(&cand, changed).unwrap();
        // Checksum gate alone: one failure.
        let failures = run(&[
            base.to_string_lossy().into_owned(),
            cand.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("checksum mismatch"));
        // Timing gate adds the rmq regression (4 ms → 9 ms > +30%).
        let failures = run(&[
            base.to_string_lossy().into_owned(),
            cand.to_string_lossy().into_owned(),
            "--max-regression".into(),
            "30".into(),
        ])
        .unwrap();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("timing regression")));
    }

    #[test]
    fn timing_cells_restricts_the_timing_gate() {
        // rmq_chain regresses 4 ms → 9 ms; with the gate scoped to
        // exa_chain the regression is ignored, scoped to rmq_chain it fails.
        let changed = SNAPSHOT.replace("\"median_ms\": 4.0", "\"median_ms\": 9.0");
        let dir = std::env::temp_dir().join("moqo_bench_diff_scoped");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, SNAPSHOT).unwrap();
        std::fs::write(&cand, changed).unwrap();
        let argv = |cells: &[&str]| {
            let mut v = vec![
                base.to_string_lossy().into_owned(),
                cand.to_string_lossy().into_owned(),
                "--max-regression".into(),
                "30".into(),
            ];
            for c in cells {
                v.push("--timing-cells".into());
                v.push((*c).to_owned());
            }
            v
        };
        assert!(run(&argv(&["exa_chain"])).unwrap().is_empty());
        let failures = run(&argv(&["rmq_chain"])).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("timing regression"));
        // No filter: gate applies everywhere (same single failure here).
        assert_eq!(run(&argv(&[])).unwrap().len(), 1);
    }

    #[test]
    fn missing_cells_fail_and_new_cells_pass() {
        let smaller = SNAPSHOT.replace(
            "    {\"name\": \"rmq_chain\", \"tables\": 8, \"threads\": 2, \"median_ms\": 4.0, \"checksum\": 7}\n",
            "",
        );
        let smaller = smaller.replace("\"checksum\": 11},", "\"checksum\": 11}");
        let dir = std::env::temp_dir().join("moqo_bench_diff_missing");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, SNAPSHOT).unwrap();
        std::fs::write(&cand, &smaller).unwrap();
        let failures = run(&[
            base.to_string_lossy().into_owned(),
            cand.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("disappeared"));
        // The reverse direction (baseline smaller) is clean.
        let failures = run(&[
            cand.to_string_lossy().into_owned(),
            base.to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(failures.is_empty());
    }

    #[test]
    fn usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["one".into()]).is_err());
        assert!(run(&["a".into(), "b".into(), "--max-regression".into()]).is_err());
    }
}
