//! Figure 5: performance of the exact algorithm (EXA) on TPC-H —
//! optimization time, allocated memory and number of Pareto plans per query
//! for 1, 3, 6 and 9 objectives, with timeouts.
//!
//! Queries appear in the paper's x-axis order (sorted by maximal
//! from-clause size). Scale via `MOQO_CASES`, `MOQO_TIMEOUT_MS`, `MOQO_SF`,
//! `MOQO_QUERIES` (see the `moqo-bench` crate docs).

use moqo_bench::{fmt_memory_kb, run_case, Aggregate, HarnessConfig, Table};
use moqo_core::Algorithm;
use moqo_costmodel::CostModelParams;
use moqo_tpch::weighted_test_case;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = HarnessConfig::from_env();
    let catalog = moqo_tpch::catalog(cfg.scale_factor);
    let params = CostModelParams::default();

    println!(
        "Figure 5: exact algorithm (EXA) on TPC-H [{}]",
        cfg.describe()
    );
    println!();

    let mut table = Table::new(&[
        "query",
        "max_tables",
        "objectives",
        "timeouts_pct",
        "time_ms",
        "memory_kb",
        "pareto_plans",
    ]);

    for &qno in &cfg.queries {
        let query = moqo_tpch::query(&catalog, qno);
        for n_objs in [1usize, 3, 6, 9] {
            let mut time = Aggregate::new();
            let mut memory = Aggregate::new();
            let mut pareto = Aggregate::new();
            let mut timeouts = 0usize;
            for case_idx in 0..cfg.cases {
                let seed = cfg.case_seed(qno, case_idx, n_objs as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                let case = weighted_test_case(&mut rng, qno, n_objs);
                let out = run_case(
                    &catalog,
                    &params,
                    &query,
                    &case.preference,
                    Algorithm::Exhaustive,
                    cfg.timeout,
                );
                time.push(out.elapsed.as_secs_f64() * 1e3);
                memory.push(out.memory_bytes as f64);
                pareto.push(out.pareto_plans as f64);
                if out.timed_out {
                    timeouts += 1;
                }
            }
            table.row(vec![
                format!("Q{qno}"),
                query.max_block_size().to_string(),
                n_objs.to_string(),
                format!("{:.0}", 100.0 * timeouts as f64 / cfg.cases as f64),
                format!("{:.2}", time.mean()),
                fmt_memory_kb(memory.mean() as usize),
                format!("{:.1}", pareto.mean()),
            ]);
        }
    }

    println!("{}", table.render());
    println!("CSV:");
    println!("{}", table.render_csv());
    println!("paper reference points (server-scale, 2 h timeout): single-objective");
    println!("optimization stays under 100 ms / 1.7 MB; with ≥3 objectives, time,");
    println!("memory and Pareto-plan counts grow quickly with the number of joined");
    println!("tables, far beyond the 2^l Pareto-plan bound assumed by Ganguly et al.");
}
