//! RMQ convergence: anytime behaviour of the randomized optimizer on
//! TPC-H-style chain join graphs of 8–20 tables — the workload class the
//! dynamic-programming schemes cannot reach (Figure 7 puts the EXA beyond
//! 10⁴⁵ operations at n = 10).
//!
//! Per graph size the binary traces the incumbent Pareto front over the
//! iteration budget: front size, best weighted cost, and — for the sizes
//! where the exact algorithm still terminates — coverage of the exact
//! Pareto frontier (fraction of exact-frontier vectors 1.05-dominated by an
//! incumbent) plus the achieved approximation factor α.
//!
//! Environment knobs: the shared harness variables `MOQO_SF` (TPC-H scale
//! factor), `MOQO_SEED` and `MOQO_TIMEOUT_MS` (EXA reference timeout)
//! apply, plus:
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MOQO_RMQ_SAMPLES` | 4000 | RMQ iteration budget per graph |
//! | `MOQO_RMQ_TABLES` | 8,12,16,20 | comma-separated chain sizes |
//! | `MOQO_RMQ_EXA_LIMIT` | 8 | largest size the EXA reference runs at |

use std::time::Instant;

use moqo_bench::{HarnessConfig, Table};
use moqo_core::{exa, rmq, Deadline, RmqConfig};
use moqo_cost::{pareto_front, CostVector, Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn env_sizes() -> Vec<usize> {
    std::env::var("MOQO_RMQ_TABLES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|n| (2..=24).contains(n))
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![8, 12, 16, 20])
}

fn main() {
    let harness = HarnessConfig::from_env();
    let samples = env_u64("MOQO_RMQ_SAMPLES", 4000);
    let seed = harness.seed;
    let exa_limit = env_u64("MOQO_RMQ_EXA_LIMIT", 8) as usize;
    let exa_timeout = harness.timeout;
    let sizes = env_sizes();

    let catalog = moqo_tpch::catalog(harness.scale_factor);
    // Sampling stays enabled: with TupleLoss unselected, `PruneMode::auto`
    // runs both the EXA reference and RMQ props-aware, which keeps the
    // exact front a sound coverage oracle over the full plan space —
    // sampling scans included. (This binary used to disable sampling as a
    // workaround for the cost-only pruning leak the props-aware mode
    // fixed.) Note the sampled plan space is ~3× larger than the old
    // sampling-off workload, so per-budget coverage numbers are NOT
    // comparable with pre-PR-5 runs: at the default 4k samples the walk
    // covers little of the sampled frontier extremes; raise
    // MOQO_RMQ_SAMPLES (~40k reaches >90% on a 4-table chain) to watch
    // coverage converge.
    let params = CostModelParams::default();
    let preference = Preference::over(ObjectiveSet::empty())
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6);

    println!(
        "RMQ convergence on chain join graphs [SF={} samples={samples} seed={seed} \
         sizes={sizes:?} EXA reference ≤ {exa_limit} tables, timeout {:?}]",
        harness.scale_factor, exa_timeout
    );
    println!();

    for &n in &sizes {
        let graph = moqo_tpch::large_join_graph(&catalog, n);
        let model = CostModel::new(&params, &catalog, &graph);

        // Exact reference front, where feasible.
        let exact_front: Option<Vec<CostVector>> = if n <= exa_limit {
            let started = Instant::now();
            let result = exa(&model, &preference, &Deadline::new(Some(exa_timeout)));
            let vectors: Vec<CostVector> = result.final_plans.iter().map(|e| e.cost).collect();
            let frontier = pareto_front::pareto_frontier(&vectors, preference.objectives);
            println!(
                "chain of {n}: EXA reference front has {} vectors \
                 ({} stored plans peak, {:.0} ms{})",
                frontier.len(),
                result.stats.peak_stored_plans,
                started.elapsed().as_secs_f64() * 1e3,
                if result.stats.timed_out {
                    ", TIMED OUT — coverage is vs the partial front"
                } else {
                    ""
                }
            );
            Some(frontier)
        } else {
            println!("chain of {n}: EXA reference skipped (beyond {exa_limit} tables)");
            None
        };

        let config = RmqConfig {
            record_fronts: true,
            convergence_stride: (samples / 16).max(1),
            ..RmqConfig::new(samples, seed)
        };
        let started = Instant::now();
        let out = rmq(&model, &preference, &config, &Deadline::unlimited());
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

        let mut table = Table::new(&[
            "iteration",
            "front_size",
            "best_weighted",
            "coverage_pct",
            "achieved_alpha",
        ]);
        for point in &out.convergence {
            let (coverage, alpha) = match &exact_front {
                Some(frontier) if !frontier.is_empty() => {
                    let covered = frontier
                        .iter()
                        .filter(|c_star| {
                            point.front.iter().any(|c| {
                                moqo_cost::dominance::approx_dominates(
                                    c,
                                    c_star,
                                    1.05,
                                    preference.objectives,
                                )
                            })
                        })
                        .count();
                    let alpha = pareto_front::approximation_factor(
                        &point.front,
                        frontier,
                        preference.objectives,
                    )
                    .unwrap_or(f64::INFINITY);
                    (
                        format!("{:.1}", 100.0 * covered as f64 / frontier.len() as f64),
                        if alpha.is_finite() {
                            format!("{alpha:.4}")
                        } else {
                            "inf".to_owned()
                        },
                    )
                }
                _ => ("-".to_owned(), "-".to_owned()),
            };
            table.row(vec![
                point.iteration.to_string(),
                point.front_size.to_string(),
                format!("{:.3}", point.best_weighted),
                coverage,
                alpha,
            ]);
        }
        println!(
            "chain of {n}: {} candidates sampled in {elapsed_ms:.0} ms, \
             final front {} plans",
            out.stats.considered_plans,
            out.final_plans.len()
        );
        println!("{}", table.render());
        println!("CSV:");
        println!("{}", table.render_csv());

        // Anytime sanity: the best weighted cost never worsens along the
        // trace, and the final point reflects the returned front.
        let mut prev = f64::INFINITY;
        for point in &out.convergence {
            assert!(
                point.best_weighted <= prev + 1e-9,
                "incumbent quality must be monotone, {prev} then {}",
                point.best_weighted
            );
            prev = point.best_weighted;
        }
        assert_eq!(
            out.convergence.last().map(|p| p.front_size),
            Some(out.final_plans.len())
        );
    }
}
