//! Figure 2: Pareto frontier and dominated area of the running example.

use moqo_cost::pareto_front::{pareto_frontier, pareto_indices};
use moqo_cost::running_example as ex;
use moqo_cost::Objective;

fn main() {
    let objectives = ex::objectives();
    let vectors = ex::plan_cost_vectors();
    let frontier = pareto_frontier(&vectors, objectives);
    let frontier_idx = pareto_indices(&vectors, objectives);

    println!("Figure 2: Pareto frontier and dominated area (running example)");
    println!();
    println!("{:<12} {:>8} {:>6}", "status", "buffer", "time");
    println!("{}", "-".repeat(30));
    for (i, v) in vectors.iter().enumerate() {
        let status = if frontier_idx.contains(&i) {
            "PARETO"
        } else {
            "dominated"
        };
        println!(
            "{:<12} {:>8.1} {:>6.1}",
            status,
            v.get(Objective::BufferFootprint),
            v.get(Objective::TotalTime)
        );
    }
    println!();
    println!(
        "frontier: {} of {} plan cost vectors",
        frontier.len(),
        vectors.len()
    );
    assert_eq!(frontier.len(), ex::PARETO_FRONTIER.len());
}
