//! Figure 8: an approximate Pareto set does not necessarily contain a
//! near-optimal plan once bounds are considered.
//!
//! Construction: two plans with almost identical cost vectors sit on either
//! side of a bound. An α-approximate Pareto set may keep only the
//! infeasible representative, so selecting from it yields an arbitrarily
//! worse feasible plan — the motivation for the IRA's iterative refinement.

use moqo_cost::pareto_front::is_approx_pareto_set;
use moqo_cost::running_example as ex;
use moqo_cost::{Objective, Preference};

fn main() {
    let alpha = 1.25f64;
    let objectives = ex::objectives();

    // Plan space: the near-twin pair around the time bound plus a clearly
    // feasible but expensive fallback.
    let just_inside = ex::point(2.0, 0.99); // respects time ≤ 1.0
    let just_outside = ex::point(1.98, 1.01); // violates it, slightly cheaper buffer
    let fallback = ex::point(3.9, 0.5); // feasible, much worse weighted cost
    let all = vec![just_inside, just_outside, fallback];

    let preference = Preference {
        objectives,
        weights: ex::weights(),
        bounds: moqo_cost::Bounds::from_pairs(&[(Objective::TotalTime, 1.0)]),
    };

    // An α-approximate Pareto set that legally dropped `just_inside`:
    // `just_outside` α-dominates it (factor ≤ 1.25 in every objective).
    let approx_set = vec![just_outside, fallback];
    assert!(is_approx_pareto_set(&approx_set, &all, alpha, objectives));

    let weighted = |c: &moqo_cost::CostVector| preference.weighted_cost(c);
    let best_full = all
        .iter()
        .filter(|c| preference.respects_bounds(c))
        .min_by(|a, b| weighted(a).partial_cmp(&weighted(b)).unwrap())
        .copied()
        .unwrap();
    let best_approx = approx_set
        .iter()
        .filter(|c| preference.respects_bounds(c))
        .min_by(|a, b| weighted(a).partial_cmp(&weighted(b)).unwrap())
        .copied()
        .unwrap();

    println!("Figure 8: bounded MOQO pathology (α = {alpha})");
    println!();
    println!("bound: time ≤ 1.0; weights: buffer 1, time 1.5");
    println!(
        "full plan space optimum (feasible):      ({:.2}, {:.2})  weighted {:.3}",
        best_full.get(Objective::BufferFootprint),
        best_full.get(Objective::TotalTime),
        weighted(&best_full)
    );
    println!(
        "best feasible in α-approximate set:      ({:.2}, {:.2})  weighted {:.3}",
        best_approx.get(Objective::BufferFootprint),
        best_approx.get(Objective::TotalTime),
        weighted(&best_approx)
    );
    let rho = weighted(&best_approx) / weighted(&best_full);
    println!();
    println!("relative cost of selecting from the α-approximate set: {rho:.3}");
    println!("…which exceeds α = {alpha}: the set lost the only near-optimal");
    println!("feasible plan. No α ≤ α_U other than α = 1 avoids this a priori —");
    println!("hence the IRA's certificate-driven refinement (paper §7).");
    assert!(rho > alpha, "the pathology must materialize: ρ = {rho}");
}
