//! Internal calibration probe: times each algorithm on representative
//! queries so the harness defaults can be sanity-checked. Not a figure.

use std::time::{Duration, Instant};

use moqo_core::{exa, ira, rta, select_best, Deadline};
use moqo_costmodel::{CostModel, CostModelParams};
use moqo_tpch::{catalog, query, weighted_test_case};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cat = catalog(1.0);
    let params = CostModelParams::default();
    let timeout = Duration::from_millis(3000);

    for qno in [3u8, 10, 2, 5, 8] {
        let q = query(&cat, qno);
        for n_objs in [3usize, 6, 9] {
            let mut rng = StdRng::seed_from_u64(7);
            let case = weighted_test_case(&mut rng, qno, n_objs);
            let graph = &q.blocks[0];
            let model = CostModel::new(&params, &cat, graph);

            let t0 = Instant::now();
            let r_exa = exa(&model, &case.preference, &Deadline::new(Some(timeout)));
            let exa_time = t0.elapsed();
            let exa_best = select_best(&r_exa.final_plans, &case.preference).unwrap();

            let t0 = Instant::now();
            let r_rta = rta(
                &model,
                &case.preference,
                1.15,
                &Deadline::new(Some(timeout)),
            );
            let rta_time = t0.elapsed();
            let rta_best = select_best(&r_rta.final_plans, &case.preference).unwrap();

            let t0 = Instant::now();
            let r_ira = ira(&model, &case.preference, 1.5, &Deadline::new(Some(timeout)));
            let ira_time = t0.elapsed();

            println!(
                "Q{qno} l={n_objs}: EXA {:>9.1?} (pareto {:>5}, t/o {}) | RTA(1.15) {:>9.1?} (pareto {:>4}) ρ={:.4} | IRA {:>9.1?} iters={}",
                exa_time,
                r_exa.stats.pareto_last_complete,
                r_exa.stats.timed_out,
                rta_time,
                r_rta.stats.pareto_last_complete,
                case.preference.weighted_cost(&rta_best.cost)
                    / case.preference.weighted_cost(&exa_best.cost).max(1e-12),
                ira_time,
                r_ira.iterations,
            );
        }
    }
}
