//! Figure 10: optimizer performance comparison for bounded MOQO —
//! EXA versus IRA with α ∈ {1.15, 1.5, 2}.
//!
//! All runs consider all nine objectives while the number of bounds varies
//! over {3, 6, 9} (the paper's setup). Reports timeout percentage, average
//! optimization time, memory (last iteration for the IRA), iteration count
//! and the weighted cost relative to the best plan for the same test case,
//! ranking bound-violating plans after feasible ones (Definition 3).

use moqo_bench::{
    bounded_rank_cost, fmt_memory_kb, run_case, Aggregate, CaseResult, HarnessConfig, Table,
};
use moqo_core::Algorithm;
use moqo_costmodel::CostModelParams;
use moqo_tpch::bounded_test_case;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALGOS: [(&str, Algorithm); 4] = [
    ("EXA", Algorithm::Exhaustive),
    ("IRA(1.15)", Algorithm::Ira { alpha: 1.15 }),
    ("IRA(1.5)", Algorithm::Ira { alpha: 1.5 }),
    ("IRA(2)", Algorithm::Ira { alpha: 2.0 }),
];
const N_OBJECTIVES: usize = 9;

fn main() {
    let cfg = HarnessConfig::from_env();
    let catalog = moqo_tpch::catalog(cfg.scale_factor);
    let params = CostModelParams::default();

    println!("Figure 10: bounded MOQO — EXA vs IRA [{}]", cfg.describe());
    println!("all nine objectives; bounds vary over {{3, 6, 9}}");
    println!();

    let mut table = Table::new(&[
        "query",
        "bounds",
        "algorithm",
        "timeouts_pct",
        "time_ms",
        "memory_kb",
        "iterations",
        "wcost_pct",
    ]);

    for &qno in &cfg.queries {
        let query = moqo_tpch::query(&catalog, qno);
        for n_bounds in [3usize, 6, 9] {
            let mut agg: Vec<(Aggregate, Aggregate, Aggregate, Aggregate, usize)> = (0..ALGOS
                .len())
                .map(|_| {
                    (
                        Aggregate::new(), // time
                        Aggregate::new(), // memory
                        Aggregate::new(), // iterations
                        Aggregate::new(), // wcost pct
                        0usize,           // timeouts
                    )
                })
                .collect();

            for case_idx in 0..cfg.cases {
                let seed = cfg.case_seed(qno, case_idx, 7000 + n_bounds as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                let case = bounded_test_case(
                    &mut rng,
                    &catalog,
                    &params,
                    &query,
                    qno,
                    N_OBJECTIVES,
                    n_bounds,
                );
                let results: Vec<CaseResult> = ALGOS
                    .iter()
                    .map(|(_, algo)| {
                        run_case(
                            &catalog,
                            &params,
                            &query,
                            &case.preference,
                            *algo,
                            cfg.timeout,
                        )
                    })
                    .collect();
                let any_feasible = results.iter().any(|r| r.respects_bounds);
                let best = results
                    .iter()
                    .map(|r| bounded_rank_cost(r, any_feasible))
                    .fold(f64::INFINITY, f64::min)
                    .max(1e-12);
                for (i, r) in results.iter().enumerate() {
                    agg[i].0.push(r.elapsed.as_secs_f64() * 1e3);
                    agg[i].1.push(r.memory_bytes as f64);
                    agg[i].2.push(f64::from(r.iterations));
                    agg[i]
                        .3
                        .push((100.0 * bounded_rank_cost(r, any_feasible) / best).min(1e4));
                    if r.timed_out {
                        agg[i].4 += 1;
                    }
                }
            }

            for (i, (name, _)) in ALGOS.iter().enumerate() {
                let (time, memory, iterations, wcost, timeouts) = &agg[i];
                table.row(vec![
                    format!("Q{qno}"),
                    n_bounds.to_string(),
                    (*name).to_owned(),
                    format!("{:.0}", 100.0 * *timeouts as f64 / cfg.cases as f64),
                    format!("{:.2}", time.mean()),
                    fmt_memory_kb(memory.mean() as usize),
                    format!("{:.1}", iterations.mean()),
                    format!("{:.2}", wcost.mean()),
                ]);
            }
        }
    }

    println!("{}", table.render());
    println!("CSV:");
    println!("{}", table.render_csv());
    println!("paper reference: the EXA's performance is insensitive to the number");
    println!("of bounds; the IRA may need several iterations (up to ≈100) when");
    println!("bounds are tight, yet the performance gap to the EXA stays large");
    println!("(paper totals: >1200 h for the EXA vs <15 h for IRA(1.15)).");
}
