//! Shared experiment runner for the grid-style figures (5, 9, 10).

use std::time::Duration;

use moqo_catalog::{Catalog, Query};
use moqo_core::{Algorithm, Optimizer};
use moqo_cost::Preference;
use moqo_costmodel::CostModelParams;

/// The measurements the paper plots per optimizer run.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Total optimization time over all blocks.
    pub elapsed: Duration,
    /// Whether any block hit the timeout.
    pub timed_out: bool,
    /// Peak deterministic memory in bytes.
    pub memory_bytes: usize,
    /// Pareto plans for the last completely treated table set (max over
    /// blocks).
    pub pareto_plans: usize,
    /// IRA iterations (1 for EXA/RTA).
    pub iterations: u32,
    /// Weighted cost of the returned plan (query level).
    pub weighted_cost: f64,
    /// Whether the returned plan respects the preference's bounds.
    pub respects_bounds: bool,
}

/// Runs one algorithm on one test case and collects the figure metrics.
#[must_use]
pub fn run_case(
    catalog: &Catalog,
    params: &CostModelParams,
    query: &Query,
    preference: &Preference,
    algorithm: Algorithm,
    timeout: Duration,
) -> CaseResult {
    let optimizer = Optimizer::new(catalog)
        .with_params(params.clone())
        .with_timeout(timeout);
    let result = optimizer.optimize(query, preference, algorithm);
    CaseResult {
        elapsed: result.report.total_elapsed(),
        timed_out: result.report.timed_out(),
        memory_bytes: result.report.peak_memory_bytes(),
        pareto_plans: result.report.pareto_last_complete(),
        iterations: result.report.iterations(),
        weighted_cost: result.weighted_cost,
        respects_bounds: result.respects_bounds,
    }
}

/// The effective weighted cost used for the paper's "W-Cost (%)" metric in
/// bounded experiments: plans violating feasible bounds are ranked after all
/// feasible plans (their relative cost is ∞ by Definition 3); we realize the
/// ordering by a large multiplicative penalty so percentages stay printable.
#[must_use]
pub fn bounded_rank_cost(result: &CaseResult, any_feasible: bool) -> f64 {
    if any_feasible && !result.respects_bounds {
        result.weighted_cost * 1e6
    } else {
        result.weighted_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::{Objective, ObjectiveSet};

    #[test]
    fn run_case_collects_metrics() {
        let catalog = moqo_catalog::tpch::catalog(0.01);
        let params = CostModelParams::default();
        let query = moqo_tpch::query(&catalog, 12);
        let pref = Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::TupleLoss,
        ]))
        .weight(Objective::TotalTime, 1.0);
        let out = run_case(
            &catalog,
            &params,
            &query,
            &pref,
            Algorithm::Rta { alpha: 1.5 },
            Duration::from_secs(10),
        );
        assert!(!out.timed_out);
        assert!(out.weighted_cost > 0.0);
        assert!(out.pareto_plans > 0);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn bounded_rank_penalizes_infeasible() {
        let base = CaseResult {
            elapsed: Duration::ZERO,
            timed_out: false,
            memory_bytes: 0,
            pareto_plans: 0,
            iterations: 1,
            weighted_cost: 10.0,
            respects_bounds: false,
        };
        assert!(bounded_rank_cost(&base, true) > 1e6);
        assert_eq!(bounded_rank_cost(&base, false), 10.0);
    }
}
