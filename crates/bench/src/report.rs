//! Aggregation and aligned-table output for the figure binaries.

use std::time::Duration;

/// Running aggregate over one metric (arithmetic mean, as in the paper:
/// "Every marker represents the arithmetic average value over 20 test
/// cases").
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    sum: f64,
    count: usize,
    max: f64,
}

impl Aggregate {
    /// Empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Aggregate::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
        if value > self.max {
            self.max = value;
        }
    }

    /// Arithmetic mean (0 for an empty aggregate).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }
}

/// A simple aligned text table: header row plus data rows.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for EXPERIMENTS.md and plotting).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Milliseconds with sub-millisecond precision, like the paper's log axes.
#[must_use]
pub fn fmt_duration_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Kilobytes from a byte count.
#[must_use]
pub fn fmt_memory_kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_mean_and_max() {
        let mut a = Aggregate::new();
        a.push(1.0);
        a.push(3.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        assert_eq!(Aggregate::new().mean(), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["q", "time"]);
        t.row(vec!["Q1".into(), "0.5".into()]);
        t.row(vec!["Q22".into(), "120.25".into()]);
        let s = t.render();
        assert!(s.contains("Q22"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration_ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(fmt_memory_kb(2048), "2.0");
    }
}
