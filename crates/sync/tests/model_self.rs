//! Self-tests for the `moqo_sync` model checker (run with
//! `RUSTFLAGS="--cfg moqo_model" cargo test -p moqo_sync --test model_self`).
//!
//! These pin the checker's own semantics: classic litmus shapes must produce
//! (or rule out) exactly the behaviors the memory model allows, races and
//! deadlocks must be detected and reported, and failing schedules must
//! replay deterministically. The service-level model suites build on these
//! guarantees.
#![cfg(moqo_model)]

use moqo_sync::atomic::{AtomicU64, Ordering};
use moqo_sync::cell::UnsafeCell;
use moqo_sync::hint::spin_loop;
use moqo_sync::model::{self, Config};
use moqo_sync::thread;
use moqo_sync::{Arc, Condvar, Mutex};

fn failing_config() -> Config {
    Config {
        dfs_budget: 3_000,
        min_executions: 3_000,
        ..Config::default()
    }
}

/// Test-local shared-cell wrapper. Like std's, the facade `UnsafeCell` is
/// `!Sync`; production structures (e.g. the queue's `Ring`) carry their own
/// `Sync` impls with documented invariants, and so do these tests.
struct Shared<T>(UnsafeCell<T>);

// SAFETY: every access goes through `with`/`with_mut`, which the model
// checker serializes and race-checks. The tests that do race are meant to be
// flagged by the checker at runtime, not rejected by rustc.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T: Copy> Shared<T> {
    /// Race-checked read of the cell.
    fn get(&self) -> T {
        // SAFETY: `with` records the read with the checker and hands out a
        // pointer valid for the closure's duration; no reference escapes.
        self.0.with(|p| unsafe { *p })
    }

    /// Race-checked overwrite of the cell.
    fn set(&self, v: T) {
        // SAFETY: as in `get`; `with_mut` records this as a write access.
        self.0.with_mut(|p| unsafe { *p = v });
    }

    /// Race-checked in-place update (a single write access, like `set`).
    fn update(&self, f: impl FnOnce(&mut T)) {
        // SAFETY: as in `set`; the closure gets the only live reference.
        self.0.with_mut(|p| unsafe { f(&mut *p) });
    }
}

/// Correct message passing: release store / acquire load orders the cell
/// write before the cell read in every schedule.
#[test]
fn message_passing_release_acquire_is_clean() {
    let report = model::check("message_passing_release_acquire", &Config::smoke(), || {
        let data = Arc::new(Shared(UnsafeCell::new(0u64)));
        let flag = Arc::new(AtomicU64::new(0));
        let reader = {
            let data = Arc::clone(&data);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                while flag.load(Ordering::Acquire) == 0 {
                    spin_loop();
                }
                let v = data.get();
                assert_eq!(v, 42, "acquire read must see the published write");
            })
        };
        data.set(42);
        flag.store(1, Ordering::Release);
        reader.join().expect("reader");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// The same shape with a relaxed flag is a data race on the cell, and the
/// checker must say so (not merely fail an assertion).
#[test]
fn message_passing_relaxed_flag_is_a_race() {
    let report = model::explore(&failing_config(), || {
        let data = Arc::new(Shared(UnsafeCell::new(0u64)));
        let flag = Arc::new(AtomicU64::new(0));
        let reader = {
            let data = Arc::clone(&data);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                while flag.load(Ordering::Relaxed) == 0 {
                    spin_loop();
                }
                data.get()
            })
        };
        data.set(42);
        flag.store(1, Ordering::Relaxed);
        let _ = reader.join();
    });
    let failure = report.failure.expect("relaxed message passing must race");
    assert!(
        failure.message.contains("data race"),
        "expected a data-race report, got: {}",
        failure.message
    );
}

/// Store-buffering litmus: with relaxed ordering both threads may read the
/// other's flag as 0 — a weak-memory outcome no plain interleaving produces.
/// The checker must find it.
#[test]
fn store_buffer_relaxed_allows_both_zero() {
    let report = model::explore(&failing_config(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let t1 = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            thread::spawn(move || {
                x.store(1, Ordering::Relaxed);
                y.load(Ordering::Relaxed)
            })
        };
        let t2 = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            thread::spawn(move || {
                y.store(1, Ordering::Relaxed);
                x.load(Ordering::Relaxed)
            })
        };
        let r1 = t1.join().expect("t1");
        let r2 = t2.join().expect("t2");
        assert!(!(r1 == 0 && r2 == 0), "store-buffer outcome observed");
    });
    assert!(
        report.failure.is_some(),
        "relaxed store-buffering must reach r1 == r2 == 0"
    );
}

/// With SeqCst the both-zero outcome is forbidden; the checker must never
/// produce it.
#[test]
fn store_buffer_seqcst_never_both_zero() {
    let report = model::check("store_buffer_seqcst", &Config::smoke(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let t1 = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            thread::spawn(move || {
                x.store(1, Ordering::SeqCst);
                y.load(Ordering::SeqCst)
            })
        };
        let t2 = {
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            thread::spawn(move || {
                y.store(1, Ordering::SeqCst);
                x.load(Ordering::SeqCst)
            })
        };
        let r1 = t1.join().expect("t1");
        let r2 = t2.join().expect("t2");
        assert!(
            !(r1 == 0 && r2 == 0),
            "SeqCst forbids the store-buffer outcome"
        );
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// Atomic RMWs never lose updates, under any interleaving.
#[test]
fn fetch_add_is_exact() {
    let report = model::check("fetch_add_exact", &Config::smoke(), || {
        let n = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "both increments must land");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// Mutex-protected cell updates are exact and race-free.
#[test]
fn mutex_guards_cell_updates() {
    let report = model::check("mutex_guards_cell", &Config::smoke(), || {
        let m = Arc::new(Mutex::new(0u64));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    *m.lock().expect("lock") += 1;
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        assert_eq!(*m.lock().expect("lock"), 2, "mutex must serialize updates");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// Unsynchronized concurrent cell writes are reported as a race.
#[test]
fn unsynchronized_cell_writes_race() {
    let report = model::explore(&failing_config(), || {
        let data = Arc::new(Shared(UnsafeCell::new(0u64)));
        let w = {
            let data = Arc::clone(&data);
            thread::spawn(move || {
                data.update(|v| *v += 1);
            })
        };
        data.update(|v| *v += 1);
        let _ = w.join();
    });
    let failure = report.failure.expect("unsynchronized writes must race");
    assert!(
        failure.message.contains("data race"),
        "got: {}",
        failure.message
    );
}

/// Classic AB/BA lock-order inversion: the checker must report deadlock with
/// per-thread status, not hang.
#[test]
fn lock_order_inversion_reports_deadlock() {
    let report = model::explore(&failing_config(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let _ga = a.lock().expect("a");
                let _gb = b.lock().expect("b");
            })
        };
        {
            let _gb = b.lock().expect("b");
            let _ga = a.lock().expect("a");
        }
        let _ = t.join();
    });
    let failure = report
        .failure
        .expect("AB/BA must deadlock in some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "got: {}",
        failure.message
    );
}

/// Correctly-used condvar (predicate checked under the mutex, notify under
/// the mutex) completes in every schedule.
#[test]
fn condvar_notify_wakes_untimed_waiter() {
    let report = model::check("condvar_untimed", &Config::smoke(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                let (m, cv) = &*state;
                let mut guard = m.lock().expect("lock");
                while !*guard {
                    guard = cv.wait(guard).expect("wait");
                }
            })
        };
        {
            let (m, cv) = &*state;
            let mut guard = m.lock().expect("lock");
            *guard = true;
            cv.notify_one();
        }
        waiter.join().expect("waiter");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// A *lost* notification is survivable when the waiter uses a timed wait:
/// the modeled timeout always fires eventually. This is the semantics the
/// queue's 5 ms park backstop relies on.
#[test]
fn timed_wait_survives_lost_notification() {
    let report = model::check("timed_wait_lost_notify", &Config::smoke(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                let (m, cv) = &*state;
                let mut guard = m.lock().expect("lock");
                while !*guard {
                    let (g, _timed_out) = cv
                        .wait_timeout(guard, std::time::Duration::from_millis(5))
                        .expect("wait_timeout");
                    guard = g;
                }
            })
        };
        {
            let (m, _cv) = &*state;
            // Deliberately no notify: the flag flips silently.
            *m.lock().expect("lock") = true;
        }
        waiter.join().expect("waiter must wake via timeout");
    });
    assert!(report.coverage_ok(10_000), "coverage too low: {report:?}");
}

/// A failing schedule replays deterministically: same decisions, same
/// failure class.
#[test]
fn failing_schedule_replays_deterministically() {
    let scenario = || {
        let data = Arc::new(Shared(UnsafeCell::new(0u64)));
        let flag = Arc::new(AtomicU64::new(0));
        let reader = {
            let data = Arc::clone(&data);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                while flag.load(Ordering::Relaxed) == 0 {
                    spin_loop();
                }
                data.get()
            })
        };
        data.set(42);
        flag.store(1, Ordering::Relaxed);
        let _ = reader.join();
    };
    let report = model::explore(&failing_config(), scenario);
    let failure = report.failure.expect("scenario must fail");
    for _ in 0..3 {
        let replayed = model::replay(&failure.schedule, scenario);
        let rf = replayed.failure.expect("replay must reproduce the failure");
        assert!(
            rf.message.contains("data race"),
            "replay diverged from original failure: {}",
            rf.message
        );
    }
}

/// Exploration is deterministic end to end: same config, same closure, same
/// report (modulo the failure's address-bearing message).
#[test]
fn exploration_is_deterministic() {
    let scenario = || {
        let n = Arc::new(AtomicU64::new(0));
        let t = {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                n.fetch_add(1, Ordering::Release);
            })
        };
        n.fetch_add(1, Ordering::Release);
        t.join().expect("t");
        assert_eq!(n.load(Ordering::Acquire), 2);
    };
    let cfg = Config {
        min_executions: 500,
        dfs_budget: 500,
        ..Config::default()
    };
    let a = model::explore(&cfg, scenario);
    let b = model::explore(&cfg, scenario);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.pruned, b.pruned);
    assert_eq!(a.dfs_complete, b.dfs_complete);
    assert_eq!(a.failure.is_some(), b.failure.is_some());
}
