//! Normal-build personality: transparent re-exports of `std`.
//!
//! Everything here must compile to *exactly* what importing `std::sync`
//! directly would: the facade's zero-overhead guarantee (and the committed
//! replay/bench checksums) depend on it.

/// Atomic types and memory orderings (`std::sync::atomic`, verbatim).
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Interior-mutability cell with closure-based access.
pub mod cell {
    /// Drop-in `std::cell::UnsafeCell` with a loom-style closure API.
    ///
    /// In normal builds this is `#[repr(transparent)]` over the std cell and
    /// every method is `#[inline(always)]`: the closure calls compile away
    /// completely. In model builds the same API routes each access through
    /// the race detector, which is why callers use `with`/`with_mut` instead
    /// of touching the raw pointer ad hoc.
    #[derive(Debug)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps `value`.
        #[inline(always)]
        pub const fn new(value: T) -> Self {
            Self(std::cell::UnsafeCell::new(value))
        }

        /// Runs `f` with a shared (read) pointer to the contents.
        ///
        /// The pointer is only valid for the duration of the closure; callers
        /// remain responsible for the aliasing rules when dereferencing it.
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Runs `f` with an exclusive (write) pointer to the contents.
        ///
        /// The pointer is only valid for the duration of the closure; callers
        /// remain responsible for the aliasing rules when dereferencing it.
        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Raw pointer to the contents (untracked even in model builds).
        #[inline(always)]
        pub fn get(&self) -> *mut T {
            self.0.get()
        }
    }
}

/// Spin-loop hint (`std::hint::spin_loop`); a yield point in model builds.
pub mod hint {
    pub use std::hint::spin_loop;
}

/// Thread spawning and handles (`std::thread`, verbatim).
pub mod thread {
    pub use std::thread::*;
}

pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock, WaitTimeoutResult};
