//! Synchronization facade for the moqo workspace.
//!
//! Every concurrent module in the workspace imports its primitives from this
//! crate instead of `std::sync` (the `xtask` lint enforces it). The crate has
//! two personalities selected by `--cfg moqo_model`:
//!
//! * **Normal builds** (`cfg(not(moqo_model))`): pure re-exports of the
//!   `std` types. Zero overhead, zero behavior change — `moqo_sync::atomic::
//!   AtomicU64` *is* `std::sync::atomic::AtomicU64`, and the
//!   [`cell::UnsafeCell`] wrapper is `#[repr(transparent)]` with
//!   `#[inline(always)]` accessors, so release codegen is bit-identical to
//!   using `std` directly.
//! * **Model builds** (`RUSTFLAGS="--cfg moqo_model"`): the same paths
//!   resolve to instrumented shims that route every atomic access, lock,
//!   condvar wait, and thread spawn through a deterministic exploring
//!   scheduler (see [`model`]). The scheduler serializes threads, explores
//!   interleavings (bounded-exhaustive DFS with a preemption budget, then a
//!   seeded random walk), models relaxed-memory stale reads with per-location
//!   store histories, and detects data races with vector clocks. Failures
//!   come with a replayable decision schedule.
//!
//! The shims fall back to real `std` behavior when used outside a model run,
//! so a `moqo_model` binary can still execute ordinary code paths.
//!
//! # Facade contract
//!
//! * Import `atomic::{Atomic*, Ordering}`, `cell::UnsafeCell`,
//!   `hint::spin_loop`, `thread`, `Mutex`, `Condvar`, and `Arc` from this
//!   crate; never from `std::sync::atomic` directly.
//! * Shared mutable non-atomic state goes in [`cell::UnsafeCell`] and is
//!   accessed through `with` / `with_mut` closures so the model checker can
//!   see (and race-check) every access.
//! * [`raw`] re-exports the real `std` atomics in **both** modes. It is the
//!   audited escape hatch for code that must not be instrumented — e.g. the
//!   `cfg(moqo_model)` test knobs that steer the checker itself. Uses of
//!   `raw` are greppable and should be rare.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Audited escape hatch: the real `std` atomics, identical in both modes.
///
/// Use only where instrumentation would be circular or meaningless (model
/// steering knobs, diagnostics inside the checker). Everything else goes
/// through [`atomic`](crate::atomic).
pub mod raw {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(moqo_model))]
mod real;
#[cfg(not(moqo_model))]
pub use real::*;

#[cfg(moqo_model)]
pub mod model;
#[cfg(moqo_model)]
mod shim;
#[cfg(moqo_model)]
pub use shim::*;
