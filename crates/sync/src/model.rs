//! Deterministic concurrency model checker (compiled under `--cfg moqo_model`).
//!
//! [`explore`] runs a closure many times. Inside each run, the `moqo_sync`
//! shims serialize all spawned threads — exactly one thread executes at any
//! moment, and at every synchronization operation the active thread asks the
//! scheduler whether to continue or hand off. Which thread runs, and (under
//! the relaxed-memory model) which prior store a load observes, are
//! *decisions*; an execution is fully described by its decision sequence, so
//! any failure can be replayed exactly.
//!
//! Exploration happens in two phases:
//!
//! 1. **Bounded-exhaustive DFS**: systematic backtracking over every decision
//!    sequence, subject to a preemption budget (switching away from a
//!    runnable thread at a non-blocking operation spends one preemption;
//!    switches at blocking or yield points are free — the CHESS insight that
//!    most concurrency bugs need very few preemptions). For small tests (≤3
//!    threads) this typically enumerates the whole bounded space.
//! 2. **Seeded random walk**: if the DFS budget runs out (or to top up the
//!    execution count), further schedules are drawn from a SplitMix64 stream
//!    so coverage keeps growing while staying reproducible.
//!
//! What the checker models, beyond plain interleavings:
//!
//! * **Happens-before via vector clocks.** Release stores publish the
//!   writer's clock; acquire loads that read them join it. Unlock→lock and
//!   spawn/join edges do the same.
//! * **Stale reads.** Each atomic location keeps a bounded store history.
//!   A non-SeqCst load may observe any sufficiently-recent store not yet
//!   outrun by coherence or happens-before — so classic store-buffering
//!   outcomes that no interleaving-only checker can produce are explored.
//!   RMWs always operate on the newest store, preserving their atomicity.
//! * **Data races.** [`crate::cell::UnsafeCell`] accesses are checked
//!   FastTrack-style: two accesses to the same cell, at least one a write,
//!   with neither ordered before the other, abort the execution with both
//!   call sites named.
//! * **Lost wakeups.** `Condvar::wait_timeout` waiters stay schedulable (the
//!   timeout can always fire), so schedules where a notification is missed
//!   are explored rather than hanging.
//!
//! Deliberate simplifications, chosen to keep the state space tractable:
//! SeqCst loads always observe the newest store (no weaker SC fences are
//! modeled), `compare_exchange_weak` never fails spuriously, and at most
//! [`MAX_THREADS`] threads per execution.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Maximum threads (including the main thread) per modeled execution.
pub const MAX_THREADS: usize = 8;

/// Per-location store history kept for stale-read exploration.
const HISTORY: usize = 16;

/// How many of the newest visible stores a load may choose among. Bounding
/// this keeps the branch factor sane; coherence makes very old stores the
/// least interesting anyway.
const STALE_CHOICES: u64 = 3;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// Fixed-width vector clock, one logical-time component per thread slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VClock([u64; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// True if an event at `(tid, ts)` happens-before a thread whose clock is
    /// `self`.
    fn covers(&self, tid: usize, ts: u64) -> bool {
        self.0[tid] >= ts
    }
}

// ---------------------------------------------------------------------------
// Explorer: the source of scheduling decisions
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One decision: which option was chosen, out of how many.
type Decision = (u32, u32);

enum Explorer {
    /// Systematic DFS: follow `prefix`, then take option 0 at fresh points.
    Dfs {
        prefix: Vec<Decision>,
        cursor: usize,
        recorded: Vec<Decision>,
    },
    /// Seeded random walk.
    Random { state: u64, recorded: Vec<Decision> },
    /// Replay a recorded schedule (out-of-range points default to 0).
    Replay {
        schedule: Vec<u32>,
        cursor: usize,
        recorded: Vec<Decision>,
    },
}

impl Explorer {
    /// Picks one of `n` options. Single-option points are not recorded, so
    /// decision sequences stay short and DFS only branches where it matters.
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n == 1 {
            return 0;
        }
        let n32 = n as u32;
        match self {
            Explorer::Dfs {
                prefix,
                cursor,
                recorded,
            } => {
                let pick = if *cursor < prefix.len() {
                    prefix[*cursor].0.min(n32 - 1)
                } else {
                    0
                };
                *cursor += 1;
                recorded.push((pick, n32));
                pick as usize
            }
            Explorer::Random { state, recorded } => {
                let pick = (splitmix64(state) % n as u64) as u32;
                recorded.push((pick, n32));
                pick as usize
            }
            Explorer::Replay {
                schedule,
                cursor,
                recorded,
            } => {
                let pick = schedule.get(*cursor).copied().unwrap_or(0).min(n32 - 1);
                *cursor += 1;
                recorded.push((pick, n32));
                pick as usize
            }
        }
    }

    fn into_recorded(self) -> Vec<Decision> {
        match self {
            Explorer::Dfs { recorded, .. }
            | Explorer::Random { recorded, .. }
            | Explorer::Replay { recorded, .. } => recorded,
        }
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for a mutex; woken (made runnable) by the unlocker.
    BlockedMutex(usize),
    /// In a condvar wait. `timed` waits stay schedulable: the timeout can
    /// always fire, which is exactly how lost-wakeup bugs become explorable
    /// instead of hangs.
    Waiting {
        timed: bool,
        notified: bool,
    },
    /// Waiting for another thread to finish.
    BlockedJoin(usize),
    Finished,
}

struct ThreadState {
    status: Status,
    clock: VClock,
    /// How many times this thread may still wake from a timed wait *without*
    /// a notification. Bounding futile timeouts keeps DFS from drowning in
    /// park/rescan/park tails; real lost-wakeup schedules need only one.
    timeout_budget: u32,
}

impl ThreadState {
    fn schedulable(&self) -> bool {
        match self.status {
            Status::Runnable | Status::Waiting { notified: true, .. } => true,
            Status::Waiting {
                timed: true,
                notified: false,
            } => self.timeout_budget > 0,
            _ => false,
        }
    }
}

/// Per-execution allowance of spurious (un-notified) timed-wait wakeups.
const TIMEOUT_BUDGET: u32 = 3;

/// One store to an atomic location.
struct Store {
    value: u64,
    /// Writing thread (`usize::MAX` for the initial value) and its logical
    /// timestamp at the store.
    tid: usize,
    ts: u64,
    /// Clock published by a Release-or-stronger store (or carried forward
    /// through a release sequence by RMWs); joined by acquire loads.
    release: Option<VClock>,
}

struct AtomicLoc {
    /// Absolute index of `stores[0]`; old stores are evicted from the front.
    base: u64,
    stores: Vec<Store>,
    /// Per-thread coherence floor: the newest absolute store index each
    /// thread has observed (or written). A thread never reads older.
    seen: [u64; MAX_THREADS],
    /// Consecutive stale reads per thread; after a few, the next read is
    /// forced to the newest store (models eventual visibility and keeps
    /// stale-read loops from recursing to the step bound).
    stale_streak: [u8; MAX_THREADS],
}

/// Consecutive stale reads of one location a thread may make before the
/// model forces it to observe the newest store.
const STALE_STREAK_MAX: u8 = 3;

impl AtomicLoc {
    fn newest_abs(&self) -> u64 {
        self.base + self.stores.len() as u64 - 1
    }
}

#[derive(Clone, Copy)]
struct Access {
    tid: usize,
    ts: u64,
    site: &'static std::panic::Location<'static>,
}

#[derive(Default)]
struct CellLoc {
    last_write: Option<Access>,
    reads: [Option<Access>; MAX_THREADS],
}

#[derive(Default)]
struct MutexLoc {
    held_by: Option<usize>,
    /// Clock released by the last unlock; joined on acquire.
    clock: VClock,
}

#[derive(Default)]
struct CondvarLoc {
    /// FIFO wait queue (tids). `notify_one` wakes the head.
    waiters: Vec<usize>,
}

struct ExecState {
    threads: Vec<ThreadState>,
    active: usize,
    explorer: Explorer,
    steps: u64,
    max_steps: u64,
    preemptions_left: u32,
    weak_memory: bool,
    aborting: bool,
    pruned: bool,
    failure: Option<String>,
    finished: usize,
    atomics: HashMap<usize, AtomicLoc>,
    cells: HashMap<usize, CellLoc>,
    mutexes: HashMap<usize, MutexLoc>,
    condvars: HashMap<usize, CondvarLoc>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared handle for one modeled execution. The real `Mutex`/`Condvar` pair
/// implements the one-thread-at-a-time handoff between the OS threads that
/// carry the modeled threads.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// Panic payload used to tear down an execution (prune or post-failure
/// unwind). Not a test failure by itself.
struct AbortToken;

fn lock(exec: &Execution) -> StdMutexGuard<'_, ExecState> {
    exec.state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Quiet panic reporting: while a model run is active, assertion panics are
/// captured (message + location) instead of spamming stderr — the first one
/// becomes the execution's failure.
fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(Cell::get) {
                LAST_PANIC.with(|c| *c.borrow_mut() = Some(format!("{info}")));
                return;
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Scheduling core
// ---------------------------------------------------------------------------

fn begin_abort(exec: &Execution, st: &mut ExecState) {
    st.aborting = true;
    exec.cv.notify_all();
}

/// Records the first failure and aborts the execution. Panics (AbortToken).
fn fail(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, msg: String) -> ! {
    if st.failure.is_none() {
        st.failure = Some(msg);
    }
    begin_abort(exec, &mut st);
    drop(st);
    panic::panic_any(AbortToken)
}

/// Blocks the calling OS thread until its modeled thread is active again.
fn wait_active<'a>(
    exec: &'a Execution,
    mut st: StdMutexGuard<'a, ExecState>,
    tid: usize,
) -> StdMutexGuard<'a, ExecState> {
    loop {
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
        if st.active == tid {
            return st;
        }
        st = exec
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// Scheduling candidates. The primary tier is every thread schedulable under
/// the futile-timeout budget; when that tier is empty, timed waiters may
/// fire their timeout regardless of budget (a real timeout always fires
/// eventually — the budget is a fairness bound, not a semantics change).
fn candidates(st: &ExecState, exclude: Option<usize>) -> Vec<usize> {
    let pri: Vec<usize> = (0..st.threads.len())
        .filter(|&i| Some(i) != exclude && st.threads[i].schedulable())
        .collect();
    if !pri.is_empty() {
        return pri;
    }
    (0..st.threads.len())
        .filter(|&i| {
            Some(i) != exclude
                && matches!(
                    st.threads[i].status,
                    Status::Waiting {
                        timed: true,
                        notified: false
                    }
                )
        })
        .collect()
}

/// Picks the next thread to run from the schedulable set and hands off to it.
/// `include_self=false` is used when the caller just blocked itself.
/// Returns with the state lock re-held and the caller active again.
fn reschedule<'a>(
    exec: &'a Execution,
    mut st: StdMutexGuard<'a, ExecState>,
    tid: usize,
    include_self: bool,
) -> StdMutexGuard<'a, ExecState> {
    if st.aborting {
        drop(st);
        panic::panic_any(AbortToken);
    }
    // Count handoffs toward the step bound too: a mutex ping-pong or a
    // notify/re-park cycle must eventually hit the livelock cutoff.
    st.steps += 1;
    if st.steps > st.max_steps {
        st.pruned = true;
        begin_abort(exec, &mut st);
        drop(st);
        panic::panic_any(AbortToken);
    }
    let cands = candidates(&st, (!include_self).then_some(tid));
    if cands.is_empty() {
        let detail: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("T{i}:{:?}", t.status))
            .collect();
        fail(
            exec,
            st,
            format!("deadlock: no schedulable thread [{}]", detail.join(" ")),
        );
    }
    let pick = st.explorer.choose(cands.len());
    let next = cands[pick];
    if next == tid {
        return st;
    }
    st.active = next;
    exec.cv.notify_all();
    wait_active(exec, st, tid)
}

/// The schedule point executed at the top of every modeled operation.
///
/// `voluntary` marks yield points (`spin_loop`, `yield_now`, `sleep`): there
/// the scheduler *must* move to another runnable thread if one exists (free
/// of preemption budget), which is what guarantees progress through spin
/// loops. At involuntary points, switching away from the still-runnable
/// current thread costs one preemption from the budget.
fn schedule(exec: &Execution, tid: usize, voluntary: bool) {
    let mut st = lock(exec);
    if st.aborting {
        drop(st);
        panic::panic_any(AbortToken);
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        st.pruned = true;
        begin_abort(exec, &mut st);
        drop(st);
        panic::panic_any(AbortToken);
    }
    let (options, costs_preemption): (Vec<usize>, bool) = if voluntary {
        // Yield points must consider budget-exhausted timed waiters too, so
        // a spin loop waiting on a parked peer keeps making progress.
        let others = candidates(&st, Some(tid));
        if others.is_empty() {
            return;
        }
        (others, false)
    } else {
        let others: Vec<usize> = (0..st.threads.len())
            .filter(|&i| i != tid && st.threads[i].schedulable())
            .collect();
        if others.is_empty() || st.preemptions_left == 0 {
            return;
        }
        let mut v = vec![tid];
        v.extend(others);
        (v, true)
    };
    let pick = st.explorer.choose(options.len());
    let next = options[pick];
    if next == tid {
        return;
    }
    if costs_preemption {
        st.preemptions_left -= 1;
    }
    st.active = next;
    exec.cv.notify_all();
    let st = wait_active(exec, st, tid);
    drop(st);
}

/// Marks `tid` finished, wakes joiners, and hands off. Never panics: it runs
/// during thread teardown, possibly while the execution is aborting.
fn finish_thread(exec: &Execution, tid: usize) {
    let mut st = lock(exec);
    st.threads[tid].status = Status::Finished;
    st.finished += 1;
    for i in 0..st.threads.len() {
        if st.threads[i].status == Status::BlockedJoin(tid) {
            st.threads[i].status = Status::Runnable;
        }
    }
    if st.finished == st.threads.len() || st.aborting {
        exec.cv.notify_all();
        return;
    }
    let cands = candidates(&st, None);
    if cands.is_empty() {
        let detail: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("T{i}:{:?}", t.status))
            .collect();
        if st.failure.is_none() {
            st.failure = Some(format!("deadlock after thread exit [{}]", detail.join(" ")));
        }
        begin_abort(exec, &mut st);
        return;
    }
    let pick = st.explorer.choose(cands.len());
    st.active = cands[pick];
    exec.cv.notify_all();
}

fn bump(st: &mut ExecState, tid: usize) -> u64 {
    let t = &mut st.threads[tid];
    t.clock.0[tid] += 1;
    t.clock.0[tid]
}

// ---------------------------------------------------------------------------
// Atomic operations
// ---------------------------------------------------------------------------

fn has_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn has_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ensure_atomic(st: &mut ExecState, addr: usize, init: u64) {
    st.atomics.entry(addr).or_insert_with(|| AtomicLoc {
        base: 0,
        stores: vec![Store {
            value: init,
            tid: usize::MAX,
            ts: 0,
            release: None,
        }],
        seen: [0; MAX_THREADS],
        stale_streak: [0; MAX_THREADS],
    });
}

fn push_store(st: &mut ExecState, addr: usize, tid: usize, value: u64, release: Option<VClock>) {
    let ts = st.threads[tid].clock.0[tid];
    let loc = st.atomics.get_mut(&addr).expect("location ensured");
    loc.stores.push(Store {
        value,
        tid,
        ts,
        release,
    });
    while loc.stores.len() > HISTORY {
        loc.stores.remove(0);
        loc.base += 1;
    }
    let newest = loc.newest_abs();
    loc.seen[tid] = newest;
}

/// Atomic load. Non-SeqCst loads may observe stale stores (an explorer
/// decision); acquire loads join the release clock of the store they read.
pub(crate) fn op_atomic_load(ctx: &Ctx, addr: usize, init: u64, ord: Ordering) -> u64 {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let mut st = lock(&ctx.exec);
    ensure_atomic(&mut st, addr, init);
    let (newest, floor) = {
        let clock = st.threads[tid].clock;
        let loc = &st.atomics[&addr];
        let newest = loc.newest_abs();
        // Coherence floor: nothing older than what this thread already saw,
        // nothing older than the newest store that happens-before us, and
        // nothing already evicted from the history window.
        let mut floor = loc.seen[tid].max(loc.base);
        for (i, s) in loc.stores.iter().enumerate() {
            let abs = loc.base + i as u64;
            if abs > floor && (s.tid == usize::MAX || clock.covers(s.tid, s.ts)) {
                floor = abs;
            }
        }
        (newest, floor)
    };
    let streak_hit = st.atomics[&addr].stale_streak[tid] >= STALE_STREAK_MAX;
    let span = if st.weak_memory && ord != Ordering::SeqCst && !streak_hit {
        (newest - floor + 1).min(STALE_CHOICES)
    } else {
        1
    };
    let offset = st.explorer.choose(span as usize) as u64;
    let abs = newest - offset;
    let loc = st.atomics.get_mut(&addr).expect("location ensured");
    let idx = (abs - loc.base) as usize;
    let value = loc.stores[idx].value;
    let release = loc.stores[idx].release;
    loc.seen[tid] = loc.seen[tid].max(abs);
    loc.stale_streak[tid] = if offset == 0 {
        0
    } else {
        loc.stale_streak[tid] + 1
    };
    if has_acquire(ord) {
        if let Some(rc) = release {
            st.threads[tid].clock.join(&rc);
        }
    }
    value
}

/// Atomic store. Release-or-stronger stores publish the writer's clock.
pub(crate) fn op_atomic_store(ctx: &Ctx, addr: usize, init: u64, value: u64, ord: Ordering) {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let mut st = lock(&ctx.exec);
    ensure_atomic(&mut st, addr, init);
    bump(&mut st, tid);
    let release = has_release(ord).then(|| st.threads[tid].clock);
    push_store(&mut st, addr, tid, value, release);
}

/// Atomic read-modify-write: always operates on the newest store (RMW
/// atomicity), carries release sequences forward, and returns the old value.
pub(crate) fn op_atomic_rmw(
    ctx: &Ctx,
    addr: usize,
    init: u64,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let mut st = lock(&ctx.exec);
    ensure_atomic(&mut st, addr, init);
    let (old, prev_release) = {
        let loc = &st.atomics[&addr];
        let s = loc.stores.last().expect("history never empty");
        (s.value, s.release)
    };
    if has_acquire(ord) {
        if let Some(rc) = prev_release {
            st.threads[tid].clock.join(&rc);
        }
    }
    bump(&mut st, tid);
    let release = if has_release(ord) {
        let mut c = st.threads[tid].clock;
        if let Some(rc) = prev_release {
            c.join(&rc);
        }
        Some(c)
    } else {
        // A relaxed RMW continues the release sequence headed by the store it
        // replaces: acquire loads of the new value still synchronize with the
        // original release store.
        prev_release
    };
    push_store(&mut st, addr, tid, f(old), release);
    old
}

/// Atomic compare-exchange (weak is modeled as strong — no spurious failure).
pub(crate) fn op_atomic_cas(
    ctx: &Ctx,
    addr: usize,
    init: u64,
    current: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let mut st = lock(&ctx.exec);
    ensure_atomic(&mut st, addr, init);
    let (old, prev_release, newest) = {
        let loc = &st.atomics[&addr];
        let s = loc.stores.last().expect("history never empty");
        (s.value, s.release, loc.newest_abs())
    };
    if old != current {
        if has_acquire(failure) {
            if let Some(rc) = prev_release {
                st.threads[tid].clock.join(&rc);
            }
        }
        let loc = st.atomics.get_mut(&addr).expect("location ensured");
        loc.seen[tid] = loc.seen[tid].max(newest);
        return Err(old);
    }
    if has_acquire(success) {
        if let Some(rc) = prev_release {
            st.threads[tid].clock.join(&rc);
        }
    }
    bump(&mut st, tid);
    let release = if has_release(success) {
        let mut c = st.threads[tid].clock;
        if let Some(rc) = prev_release {
            c.join(&rc);
        }
        Some(c)
    } else {
        prev_release
    };
    push_store(&mut st, addr, tid, new, release);
    Ok(old)
}

/// Forgets per-location model state when an instrumented value is dropped,
/// so a later allocation at the same address starts fresh.
pub(crate) fn forget_location(addr: usize) {
    if let Some(ctx) = current_ctx() {
        let mut st = lock(&ctx.exec);
        st.atomics.remove(&addr);
        st.cells.remove(&addr);
        st.mutexes.remove(&addr);
        st.condvars.remove(&addr);
    }
}

// ---------------------------------------------------------------------------
// UnsafeCell access checking
// ---------------------------------------------------------------------------

/// Race-checks one access to a [`crate::cell::UnsafeCell`].
pub(crate) fn op_cell_access(
    ctx: &Ctx,
    addr: usize,
    is_write: bool,
    site: &'static std::panic::Location<'static>,
) {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let mut st = lock(&ctx.exec);
    let clock = st.threads[tid].clock;
    let cell = st.cells.entry(addr).or_default();
    let conflict = |a: &Access, kind: &str| -> Option<String> {
        if a.tid != tid && !clock.covers(a.tid, a.ts) {
            Some(format!(
                "data race on UnsafeCell {addr:#x}: {} at {} (T{tid}) is unordered with {kind} at {} (T{})",
                if is_write { "write" } else { "read" },
                site,
                a.site,
                a.tid,
            ))
        } else {
            None
        }
    };
    let mut race = None;
    if let Some(w) = &cell.last_write {
        race = race.or_else(|| conflict(w, "write"));
    }
    if is_write {
        for r in cell.reads.iter().flatten() {
            race = race.or_else(|| conflict(r, "read"));
        }
    }
    if let Some(msg) = race {
        fail(&ctx.exec, st, msg);
    }
    let ts = bump(&mut st, tid);
    let access = Access { tid, ts, site };
    let cell = st.cells.entry(addr).or_default();
    if is_write {
        // Earlier reads happen-before this write (just checked), and any
        // access ordered after this write is transitively ordered after them,
        // so the write subsumes the read set.
        cell.last_write = Some(access);
        cell.reads = [None; MAX_THREADS];
    } else {
        cell.reads[tid] = Some(access);
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar operations
// ---------------------------------------------------------------------------

/// Acquires the modeled mutex at `addr` (blocking in the model, not the OS).
pub(crate) fn op_mutex_lock(ctx: &Ctx, addr: usize) {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    loop {
        let mut st = lock(&ctx.exec);
        if st.aborting {
            drop(st);
            panic::panic_any(AbortToken);
        }
        let m = st.mutexes.entry(addr).or_default();
        if m.held_by.is_none() {
            m.held_by = Some(tid);
            let mclock = m.clock;
            st.threads[tid].clock.join(&mclock);
            return;
        }
        st.threads[tid].status = Status::BlockedMutex(addr);
        let st = reschedule(&ctx.exec, st, tid, false);
        drop(st);
    }
}

fn release_mutex(st: &mut ExecState, addr: usize, tid: usize) {
    bump(st, tid);
    let clock = st.threads[tid].clock;
    let m = st.mutexes.entry(addr).or_default();
    debug_assert_eq!(m.held_by, Some(tid), "unlock by non-owner");
    m.held_by = None;
    m.clock.join(&clock);
    for i in 0..st.threads.len() {
        if st.threads[i].status == Status::BlockedMutex(addr) {
            st.threads[i].status = Status::Runnable;
        }
    }
}

/// Releases the modeled mutex (a schedule point in normal flow).
pub(crate) fn op_mutex_unlock(ctx: &Ctx, addr: usize) {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let mut st = lock(&ctx.exec);
    release_mutex(&mut st, addr, tid);
}

/// Unlock during unwinding: releases state and wakes waiters but never
/// panics and never reschedules (panicking inside `Drop` while unwinding
/// would abort the process).
pub(crate) fn op_mutex_unlock_quiet(ctx: &Ctx, addr: usize) {
    let mut st = lock(&ctx.exec);
    if st
        .mutexes
        .get(&addr)
        .is_some_and(|m| m.held_by == Some(ctx.tid))
    {
        release_mutex(&mut st, addr, ctx.tid);
        ctx.exec.cv.notify_all();
    }
}

/// Condvar wait: atomically releases the mutex and joins the wait queue,
/// hands off, and on wake-up reacquires the mutex. Returns `true` if the
/// wake-up came from a notification (vs. the modeled timeout).
pub(crate) fn op_condvar_wait(ctx: &Ctx, cv_addr: usize, mutex_addr: usize, timed: bool) -> bool {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let notified = {
        let mut st = lock(&ctx.exec);
        // Release + enqueue under one state lock: the model must not lose a
        // notification sent between unlocking and waiting, same as std.
        release_mutex(&mut st, mutex_addr, tid);
        st.condvars.entry(cv_addr).or_default().waiters.push(tid);
        st.threads[tid].status = Status::Waiting {
            timed,
            notified: false,
        };
        let mut st = reschedule(&ctx.exec, st, tid, timed);
        let notified = matches!(
            st.threads[tid].status,
            Status::Waiting { notified: true, .. }
        );
        if !notified {
            // Woke via the modeled timeout: spend one unit of the futile-
            // wakeup allowance.
            let t = &mut st.threads[tid];
            t.timeout_budget = t.timeout_budget.saturating_sub(1);
        }
        st.threads[tid].status = Status::Runnable;
        if let Some(cv) = st.condvars.get_mut(&cv_addr) {
            cv.waiters.retain(|&w| w != tid);
        }
        notified
    };
    op_mutex_lock(ctx, mutex_addr);
    notified
}

/// Wakes the head of the wait queue, if any.
pub(crate) fn op_condvar_notify(ctx: &Ctx, cv_addr: usize, all: bool) {
    let tid = ctx.tid;
    schedule(&ctx.exec, tid, false);
    let mut st = lock(&ctx.exec);
    let waiters = match st.condvars.get_mut(&cv_addr) {
        Some(cv) => {
            if all {
                std::mem::take(&mut cv.waiters)
            } else if cv.waiters.is_empty() {
                Vec::new()
            } else {
                vec![cv.waiters.remove(0)]
            }
        }
        None => Vec::new(),
    };
    for w in waiters {
        if let Status::Waiting { timed, .. } = st.threads[w].status {
            st.threads[w].status = Status::Waiting {
                timed,
                notified: true,
            };
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Voluntary yield point (`spin_loop`, `yield_now`, modeled `sleep`).
pub(crate) fn op_yield(ctx: &Ctx) {
    schedule(&ctx.exec, ctx.tid, true);
}

pub(crate) struct ModelJoin<T> {
    exec: Arc<Execution>,
    tid: usize,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
}

impl<T> ModelJoin<T> {
    /// Blocks (in the model) until the thread finishes; merges its clock.
    pub(crate) fn join(self) -> std::thread::Result<T> {
        let ctx = current_ctx().expect("model join outside a model run");
        let tid = ctx.tid;
        schedule(&ctx.exec, tid, false);
        loop {
            let mut st = lock(&ctx.exec);
            if st.aborting {
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.threads[self.tid].status == Status::Finished {
                let target_clock = st.threads[self.tid].clock;
                st.threads[tid].clock.join(&target_clock);
                drop(st);
                break;
            }
            st.threads[tid].status = Status::BlockedJoin(self.tid);
            let st = reschedule(&ctx.exec, st, tid, false);
            drop(st);
        }
        self.result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("finished model thread must have stored its result")
    }

    pub(crate) fn is_finished(&self) -> bool {
        if let Some(ctx) = current_ctx() {
            schedule(&ctx.exec, ctx.tid, false);
        }
        lock(&self.exec).threads[self.tid].status == Status::Finished
    }
}

fn record_failure_from_payload(exec: &Execution, payload: &(dyn std::any::Any + Send)) {
    let msg = LAST_PANIC
        .with(|c| c.borrow_mut().take())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "thread panicked (non-string payload)".to_string());
    let mut st = lock(exec);
    if st.failure.is_none() {
        st.failure = Some(msg);
    }
    begin_abort(exec, &mut st);
}

/// Spawns a modeled thread. Hands the closure back when called outside a
/// model run (the shim then falls back to a real `std::thread::spawn`).
pub(crate) fn spawn_model<F, T>(name: Option<String>, f: F) -> Result<ModelJoin<T>, F>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(ctx) = current_ctx() else {
        return Err(f);
    };
    let parent = ctx.tid;
    let exec = ctx.exec.clone();
    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
    let child = {
        let mut st = lock(&exec);
        if st.threads.len() >= MAX_THREADS {
            fail(
                &exec,
                st,
                format!("model supports at most {MAX_THREADS} threads per execution"),
            );
        }
        bump(&mut st, parent);
        let child = st.threads.len();
        let clock = st.threads[parent].clock;
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
            timeout_budget: TIMEOUT_BUDGET,
        });
        child
    };
    let child_ctx = Ctx {
        exec: exec.clone(),
        tid: child,
    };
    let result2 = result.clone();
    let exec2 = exec.clone();
    let os = std::thread::Builder::new()
        .name(name.unwrap_or_else(|| format!("moqo-model-{child}")))
        .spawn(move || {
            IN_MODEL.with(|c| c.set(true));
            set_ctx(Some(child_ctx));
            let run = panic::catch_unwind(AssertUnwindSafe(|| {
                // Wait for first activation before touching user code.
                let st = lock(&exec2);
                drop(wait_active(&exec2, st, child));
                f()
            }));
            match run {
                Ok(v) => {
                    *result2
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Ok(v));
                }
                Err(payload) => {
                    if !payload.is::<AbortToken>() {
                        record_failure_from_payload(&exec2, payload.as_ref());
                    }
                    *result2
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Err(payload));
                }
            }
            finish_thread(&exec2, child);
            set_ctx(None);
            IN_MODEL.with(|c| c.set(false));
        })
        .expect("failed to spawn OS carrier thread for model");
    {
        let mut st = lock(&exec);
        st.os_handles.push(os);
    }
    // Schedule point: the child is choosable from here on.
    schedule(&exec, parent, false);
    Ok(ModelJoin {
        exec,
        tid: child,
        result,
    })
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Exploration budgets and semantics knobs.
#[derive(Clone, Debug)]
pub struct Config {
    /// Preemption budget per execution for the DFS phase (CHESS-style).
    pub preemptions: u32,
    /// Maximum executions the systematic DFS phase may spend.
    pub dfs_budget: u64,
    /// Total executions to reach (DFS + seeded random top-up). The random
    /// phase is skipped once the DFS completes *and* this count is met.
    pub min_executions: u64,
    /// Per-execution operation bound; schedules exceeding it are pruned
    /// (livelock cutoff for spin/park loops).
    pub max_steps: u64,
    /// Base seed for the random-walk phase.
    pub seed: u64,
    /// Model stale reads (per-location store histories). When false, loads
    /// always observe the newest store — plain interleaving semantics.
    pub weak_memory: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemptions: 2,
            dfs_budget: 6_000,
            min_executions: 10_000,
            max_steps: 40_000,
            seed: 0x6D6F_716F, // "moqo"
            weak_memory: true,
        }
    }
}

impl Config {
    /// The CI-smoke configuration: ≥10k interleavings per invariant.
    pub fn smoke() -> Self {
        Self::default()
    }
}

/// A failing execution: the message plus everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Assertion/panic/race message from the failing execution.
    pub message: String,
    /// Seed of the random-walk execution that failed (`None` for DFS).
    pub seed: Option<u64>,
    /// The decision schedule (choice taken at each multi-option point).
    pub schedule: Vec<u32>,
}

impl Failure {
    /// Token accepted by `MOQO_MODEL_REPLAY` to re-run exactly this schedule.
    pub fn replay_token(&self) -> String {
        self.schedule
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Outcome of [`explore`]: coverage counters and the first failure, if any.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Executions run (DFS + random + replay).
    pub executions: u64,
    /// Executions cut off by `max_steps`.
    pub pruned: u64,
    /// True if the DFS phase exhausted the bounded schedule space.
    pub dfs_complete: bool,
    /// True if this run replayed a single schedule from `MOQO_MODEL_REPLAY`.
    pub replayed: bool,
    /// First failing execution found.
    pub failure: Option<Failure>,
}

impl Report {
    /// Coverage gate used by the test suites: either the bounded space was
    /// exhausted or at least `n` executions ran (replay runs are exempt).
    pub fn coverage_ok(&self, n: u64) -> bool {
        self.replayed || self.dfs_complete || self.executions >= n
    }
}

struct RunOutcome {
    failure: Option<String>,
    pruned: bool,
    decisions: Vec<Decision>,
}

fn run_once(cfg: &Config, f: &(dyn Fn() + Sync), explorer: Explorer) -> RunOutcome {
    install_panic_hook();
    let exec = Arc::new(Execution {
        state: StdMutex::new(ExecState {
            threads: vec![ThreadState {
                status: Status::Runnable,
                clock: VClock::default(),
                timeout_budget: TIMEOUT_BUDGET,
            }],
            active: 0,
            explorer,
            steps: 0,
            max_steps: cfg.max_steps,
            preemptions_left: cfg.preemptions,
            weak_memory: cfg.weak_memory,
            aborting: false,
            pruned: false,
            failure: None,
            finished: 0,
            atomics: HashMap::new(),
            cells: HashMap::new(),
            mutexes: HashMap::new(),
            condvars: HashMap::new(),
            os_handles: Vec::new(),
        }),
        cv: StdCondvar::new(),
    });
    IN_MODEL.with(|c| c.set(true));
    set_ctx(Some(Ctx {
        exec: exec.clone(),
        tid: 0,
    }));
    let run = panic::catch_unwind(AssertUnwindSafe(f));
    if let Err(payload) = run {
        if !payload.is::<AbortToken>() {
            record_failure_from_payload(&exec, payload.as_ref());
        }
    }
    finish_thread(&exec, 0);
    let handles = {
        let mut st = lock(&exec);
        while st.finished < st.threads.len() {
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    set_ctx(None);
    IN_MODEL.with(|c| c.set(false));
    LAST_PANIC.with(|c| *c.borrow_mut() = None);
    let mut st = lock(&exec);
    let failure = st.failure.take();
    let pruned = st.pruned;
    let explorer = std::mem::replace(
        &mut st.explorer,
        Explorer::Replay {
            schedule: Vec::new(),
            cursor: 0,
            recorded: Vec::new(),
        },
    );
    RunOutcome {
        failure,
        pruned,
        decisions: explorer.into_recorded(),
    }
}

/// Advances a DFS prefix to the next unexplored branch. Returns `false` when
/// the bounded space is exhausted.
fn dfs_advance(prefix: &mut Vec<Decision>) -> bool {
    while let Some((chosen, options)) = prefix.pop() {
        if chosen + 1 < options {
            prefix.push((chosen + 1, options));
            return true;
        }
    }
    false
}

/// Explores interleavings of `f` under `cfg`. See the module docs for the
/// exploration strategy. The closure runs once per execution and must be
/// deterministic apart from the modeled concurrency.
pub fn explore(cfg: &Config, f: impl Fn() + Sync) -> Report {
    let mut report = Report::default();
    // Phase 1: bounded-exhaustive DFS.
    let mut prefix: Vec<Decision> = Vec::new();
    loop {
        if report.executions >= cfg.dfs_budget {
            break;
        }
        let outcome = run_once(
            cfg,
            &f,
            Explorer::Dfs {
                prefix: prefix.clone(),
                cursor: 0,
                recorded: Vec::new(),
            },
        );
        report.executions += 1;
        if outcome.pruned {
            report.pruned += 1;
        }
        if let Some(message) = outcome.failure {
            report.failure = Some(Failure {
                message,
                seed: None,
                schedule: outcome.decisions.iter().map(|d| d.0).collect(),
            });
            return report;
        }
        prefix = outcome.decisions;
        if !dfs_advance(&mut prefix) {
            report.dfs_complete = true;
            break;
        }
    }
    // Phase 2: seeded random walk until the coverage target.
    let mut stream = cfg.seed;
    while report.executions < cfg.min_executions {
        let seed = splitmix64(&mut stream);
        let outcome = run_once(
            cfg,
            &f,
            Explorer::Random {
                state: seed,
                recorded: Vec::new(),
            },
        );
        report.executions += 1;
        if outcome.pruned {
            report.pruned += 1;
        }
        if let Some(message) = outcome.failure {
            report.failure = Some(Failure {
                message,
                seed: Some(seed),
                schedule: outcome.decisions.iter().map(|d| d.0).collect(),
            });
            return report;
        }
    }
    report
}

/// Replays a single decision schedule (as printed by a failure) against `f`.
pub fn replay(schedule: &[u32], f: impl Fn() + Sync) -> Report {
    let cfg = Config::default();
    let outcome = run_once(
        &cfg,
        &f,
        Explorer::Replay {
            schedule: schedule.to_vec(),
            cursor: 0,
            recorded: Vec::new(),
        },
    );
    Report {
        executions: 1,
        pruned: u64::from(outcome.pruned),
        dfs_complete: false,
        replayed: true,
        failure: outcome.failure.map(|message| Failure {
            message,
            seed: None,
            schedule: outcome.decisions.iter().map(|d| d.0).collect(),
        }),
    }
}

/// Parses a `MOQO_MODEL_REPLAY` token ("3,0,1,…") into a schedule.
pub fn parse_replay_token(token: &str) -> Result<Vec<u32>, String> {
    token
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map_err(|e| format!("bad replay token component {s:?}: {e}"))
        })
        .collect()
}

/// Checks an invariant under exploration; panics with a replayable schedule
/// on failure. When `MOQO_MODEL_REPLAY` is set, runs exactly that schedule
/// instead (the deterministic re-run path for CI triage).
pub fn check(name: &str, cfg: &Config, f: impl Fn() + Sync) -> Report {
    if let Ok(token) = std::env::var("MOQO_MODEL_REPLAY") {
        if !token.trim().is_empty() {
            let schedule =
                parse_replay_token(&token).unwrap_or_else(|e| panic!("model check '{name}': {e}"));
            let report = replay(&schedule, f);
            if let Some(fail) = &report.failure {
                panic!(
                    "model check '{name}' failed on replayed schedule: {}",
                    fail.message
                );
            }
            return report;
        }
    }
    let report = explore(cfg, f);
    if let Some(fail) = &report.failure {
        panic!(
            "model check '{name}' failed after {} executions ({} pruned)\n  \
             failure: {}\n  seed: {}\n  \
             replay with: MOQO_MODEL_REPLAY=\"{}\"",
            report.executions,
            report.pruned,
            fail.message,
            fail.seed
                .map_or_else(|| "dfs".to_string(), |s| format!("{s:#x}")),
            fail.replay_token(),
        );
    }
    report
}
