//! Model-build personality: instrumented drop-in replacements for the types
//! the normal facade re-exports from `std`.
//!
//! Every type keeps a *real* std counterpart inside it. Inside a model run
//! the shims route through [`crate::model`]; outside one (the same binary
//! running ordinary code) they fall back to the real operation, so a
//! `--cfg moqo_model` build still behaves sensibly end to end. State is keyed
//! by address, so `const fn new` still works and no global registration is
//! needed.

use crate::model;

pub use std::sync::{Arc, Once, OnceLock};

/// Context for a *live* (non-unwinding) model operation.
///
/// Returns `None` while the current thread is panicking, so instrumented
/// operations reached from `Drop` impls during cleanup (e.g. a lock-free
/// ring draining its slots) fall back to the real primitive instead of
/// re-entering the scheduler — a second panic raised inside a destructor
/// during unwinding would abort the whole process instead of being caught
/// by the model harness. [`MutexGuard`]'s own `Drop` is the one exception:
/// it still consults the raw context so it can *quietly* release modeled
/// lock state (see `op_mutex_unlock_quiet`).
fn live_ctx() -> Option<model::Ctx> {
    if std::thread::panicking() {
        None
    } else {
        model::current_ctx()
    }
}

/// Instrumented atomic types; `Ordering` is the real std enum.
pub mod atomic {
    #![allow(clippy::redundant_closure_call)]

    use super::model;
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($(#[$meta:meta])* $name:ident, $prim:ty, $std:ty, to_u64: $to:expr, from_u64: $from:expr) => {
            $(#[$meta])*
            pub struct $name {
                real: $std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                #[allow(clippy::redundant_closure_call)]
                pub const fn new(value: $prim) -> Self {
                    Self { real: <$std>::new(value) }
                }

                fn addr(&self) -> usize {
                    self as *const Self as usize
                }

                fn init(&self) -> u64 {
                    ($to)(self.real.load(Ordering::Relaxed))
                }

                /// Atomic load; may observe stale stores in the model.
                #[allow(clippy::redundant_closure_call)]
                pub fn load(&self, ord: Ordering) -> $prim {
                    match super::live_ctx() {
                        Some(ctx) => {
                            ($from)(model::op_atomic_load(&ctx, self.addr(), self.init(), ord))
                        }
                        None => self.real.load(ord),
                    }
                }

                /// Atomic store.
                #[allow(clippy::redundant_closure_call)]
                pub fn store(&self, value: $prim, ord: Ordering) {
                    match super::live_ctx() {
                        Some(ctx) => {
                            model::op_atomic_store(&ctx, self.addr(), self.init(), ($to)(value), ord);
                            self.real.store(value, Ordering::Relaxed);
                        }
                        None => self.real.store(value, ord),
                    }
                }

                /// Atomic swap; returns the previous value.
                #[allow(clippy::redundant_closure_call)]
                pub fn swap(&self, value: $prim, ord: Ordering) -> $prim {
                    match super::live_ctx() {
                        Some(ctx) => {
                            let old = model::op_atomic_rmw(&ctx, self.addr(), self.init(), ord, |_| {
                                ($to)(value)
                            });
                            self.real.store(value, Ordering::Relaxed);
                            ($from)(old)
                        }
                        None => self.real.swap(value, ord),
                    }
                }

                /// Atomic compare-and-exchange.
                #[allow(clippy::redundant_closure_call)]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match super::live_ctx() {
                        Some(ctx) => {
                            let r = model::op_atomic_cas(
                                &ctx,
                                self.addr(),
                                self.init(),
                                ($to)(current),
                                ($to)(new),
                                success,
                                failure,
                            );
                            match r {
                                Ok(old) => {
                                    self.real.store(new, Ordering::Relaxed);
                                    Ok(($from)(old))
                                }
                                Err(old) => Err(($from)(old)),
                            }
                        }
                        None => self.real.compare_exchange(current, new, success, failure),
                    }
                }

                /// Like [`Self::compare_exchange`]; the model never fails
                /// spuriously (weak is modeled as strong).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consumes the atomic, returning the inner value.
                pub fn into_inner(self) -> $prim {
                    let v = self.real.load(Ordering::Relaxed);
                    // Drop runs and forgets the model location.
                    v
                }
            }

            impl Drop for $name {
                fn drop(&mut self) {
                    model::forget_location(self as *const Self as usize);
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.real.load(Ordering::Relaxed))
                        .finish()
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($(#[$meta:meta])* $name:ident, $prim:ty, $std:ty) => {
            model_atomic!($(#[$meta])* $name, $prim, $std,
                to_u64: |v: $prim| v as u64,
                from_u64: |v: u64| v as $prim);

            impl $name {
                /// Atomic wrapping add; returns the previous value.
                pub fn fetch_add(&self, value: $prim, ord: Ordering) -> $prim {
                    match super::live_ctx() {
                        Some(ctx) => {
                            let old = model::op_atomic_rmw(&ctx, self.addr(), self.init(), ord, |o| {
                                (o as $prim).wrapping_add(value) as u64
                            }) as $prim;
                            self.real.store(old.wrapping_add(value), Ordering::Relaxed);
                            old
                        }
                        None => self.real.fetch_add(value, ord),
                    }
                }

                /// Atomic wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, value: $prim, ord: Ordering) -> $prim {
                    match super::live_ctx() {
                        Some(ctx) => {
                            let old = model::op_atomic_rmw(&ctx, self.addr(), self.init(), ord, |o| {
                                (o as $prim).wrapping_sub(value) as u64
                            }) as $prim;
                            self.real.store(old.wrapping_sub(value), Ordering::Relaxed);
                            old
                        }
                        None => self.real.fetch_sub(value, ord),
                    }
                }

                /// Atomic maximum; returns the previous value.
                pub fn fetch_max(&self, value: $prim, ord: Ordering) -> $prim {
                    match super::live_ctx() {
                        Some(ctx) => {
                            let old = model::op_atomic_rmw(&ctx, self.addr(), self.init(), ord, |o| {
                                (o as $prim).max(value) as u64
                            }) as $prim;
                            self.real.store(old.max(value), Ordering::Relaxed);
                            old
                        }
                        None => self.real.fetch_max(value, ord),
                    }
                }

                /// Atomic minimum; returns the previous value.
                pub fn fetch_min(&self, value: $prim, ord: Ordering) -> $prim {
                    match super::live_ctx() {
                        Some(ctx) => {
                            let old = model::op_atomic_rmw(&ctx, self.addr(), self.init(), ord, |o| {
                                (o as $prim).min(value) as u64
                            }) as $prim;
                            self.real.store(old.min(value), Ordering::Relaxed);
                            old
                        }
                        None => self.real.fetch_min(value, ord),
                    }
                }
            }
        };
    }

    model_atomic_int!(
        /// Instrumented `AtomicU64`.
        AtomicU64, u64, std::sync::atomic::AtomicU64
    );
    model_atomic_int!(
        /// Instrumented `AtomicUsize`.
        AtomicUsize, usize, std::sync::atomic::AtomicUsize
    );
    model_atomic_int!(
        /// Instrumented `AtomicU32`.
        AtomicU32, u32, std::sync::atomic::AtomicU32
    );
    model_atomic!(
        /// Instrumented `AtomicBool`.
        AtomicBool, bool, std::sync::atomic::AtomicBool,
        to_u64: |v: bool| v as u64,
        from_u64: |v: u64| v != 0
    );

    impl AtomicBool {
        /// Atomic logical OR; returns the previous value.
        pub fn fetch_or(&self, value: bool, ord: Ordering) -> bool {
            match super::live_ctx() {
                Some(ctx) => {
                    let old = model::op_atomic_rmw(&ctx, self.addr(), self.init(), ord, |o| {
                        u64::from(o != 0 || value)
                    }) != 0;
                    self.real.store(old || value, Ordering::Relaxed);
                    old
                }
                None => self.real.fetch_or(value, ord),
            }
        }

        /// Atomic logical AND; returns the previous value.
        pub fn fetch_and(&self, value: bool, ord: Ordering) -> bool {
            match super::live_ctx() {
                Some(ctx) => {
                    let old = model::op_atomic_rmw(&ctx, self.addr(), self.init(), ord, |o| {
                        u64::from(o != 0 && value)
                    }) != 0;
                    self.real.store(old && value, Ordering::Relaxed);
                    old
                }
                None => self.real.fetch_and(value, ord),
            }
        }
    }
}

/// Race-checked interior-mutability cell.
pub mod cell {
    use super::model;

    /// Instrumented [`crate::cell::UnsafeCell`]: every `with`/`with_mut`
    /// access is race-checked against concurrent accesses with vector
    /// clocks. `get` is the untracked escape hatch and sees no checking.
    #[derive(Debug)]
    pub struct UnsafeCell<T> {
        inner: std::cell::UnsafeCell<T>,
    }

    impl<T> UnsafeCell<T> {
        /// Wraps `value`.
        pub const fn new(value: T) -> Self {
            Self {
                inner: std::cell::UnsafeCell::new(value),
            }
        }

        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        /// Runs `f` with a shared (read) pointer; records a read access.
        #[track_caller]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            if let Some(ctx) = super::live_ctx() {
                model::op_cell_access(&ctx, self.addr(), false, std::panic::Location::caller());
            }
            f(self.inner.get())
        }

        /// Runs `f` with an exclusive (write) pointer; records a write
        /// access.
        #[track_caller]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            if let Some(ctx) = super::live_ctx() {
                model::op_cell_access(&ctx, self.addr(), true, std::panic::Location::caller());
            }
            f(self.inner.get())
        }

        /// Raw pointer to the contents (untracked even in model builds).
        pub fn get(&self) -> *mut T {
            self.inner.get()
        }
    }

    impl<T> Drop for UnsafeCell<T> {
        fn drop(&mut self) {
            model::forget_location(self as *const Self as usize);
        }
    }
}

/// Spin-loop hint: a voluntary yield point in the model.
pub mod hint {
    use super::model;

    /// In a model run, forces consideration of other runnable threads (this
    /// is what guarantees progress through spin loops); otherwise the real
    /// CPU hint.
    pub fn spin_loop() {
        match super::live_ctx() {
            Some(ctx) => model::op_yield(&ctx),
            None => std::hint::spin_loop(),
        }
    }
}

/// `lock()`/`into_inner` error: the model never poisons, so this is a plain
/// marker compatible with the `.expect(…)` call sites written against std.
#[derive(Debug)]
pub struct Poisoned;

impl std::fmt::Display for Poisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("poisoned lock")
    }
}

/// Instrumented mutex: logical ownership is arbitrated by the model
/// scheduler; the inner std mutex only carries the data.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquires the mutex (model-arbitrated inside a run).
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, Poisoned> {
        let model_addr = match live_ctx() {
            Some(ctx) => {
                model::op_mutex_lock(&ctx, self.addr());
                Some(self.addr())
            }
            None => None,
        };
        // Inside a run the inner lock is always free here: logical ownership
        // is exclusive and guards release the inner lock before the logical
        // one.
        let inner = self.inner.lock().map_err(|_| Poisoned)?;
        Ok(MutexGuard {
            lock: self,
            inner: Some(inner),
            model_addr,
        })
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> Result<T, Poisoned> {
        model::forget_location(self.addr());
        self.inner.into_inner().map_err(|_| Poisoned)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> Result<&mut T, Poisoned> {
        self.inner.get_mut().map_err(|_| Poisoned)
    }
}

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model_addr: Option<usize>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Releases the inner (data) lock but *not* the logical one, returning
    /// the mutex. Used by `Condvar` waits, where the logical release is part
    /// of the atomic release-and-wait in the model.
    fn defuse(mut self) -> &'a Mutex<T> {
        drop(self.inner.take());
        self.model_addr = None;
        let lock = self.lock;
        drop(self);
        lock
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the inner (data) lock before the logical one so the next
        // logical owner finds it free.
        drop(self.inner.take());
        if let Some(addr) = self.model_addr {
            if let Some(ctx) = model::current_ctx() {
                if std::thread::panicking() {
                    // Never reschedule (or panic) inside a Drop that runs
                    // during unwinding; just release state and wake waiters.
                    model::op_mutex_unlock_quiet(&ctx, addr);
                } else {
                    model::op_mutex_unlock(&ctx, addr);
                }
            }
        }
    }
}

/// Result of a [`Condvar::wait_timeout`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Instrumented condition variable.
///
/// In the model, `wait_timeout` waiters remain schedulable — the timeout can
/// always fire — which turns lost-wakeup bugs into explorable schedules
/// instead of hangs. Durations are ignored inside a run.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Blocks until notified (untimed: a lost notification deadlocks the
    /// model, which is reported with full thread status).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> Result<MutexGuard<'a, T>, Poisoned> {
        match (live_ctx(), guard.model_addr) {
            (Some(ctx), Some(mutex_addr)) => {
                let mutex = guard.defuse();
                model::op_condvar_wait(&ctx, self.addr(), mutex_addr, false);
                let inner = mutex.inner.lock().map_err(|_| Poisoned)?;
                Ok(MutexGuard {
                    lock: mutex,
                    inner: Some(inner),
                    model_addr: Some(mutex_addr),
                })
            }
            _ => {
                let mut g = guard;
                let inner = g.inner.take().expect("guard live until drop");
                let inner = self.inner.wait(inner).map_err(|_| Poisoned)?;
                g.inner = Some(inner);
                Ok(g)
            }
        }
    }

    /// Blocks until notified or (in real builds) the timeout elapses. In the
    /// model the timeout is a schedulable event that can fire at any moment.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> Result<(MutexGuard<'a, T>, WaitTimeoutResult), Poisoned> {
        match (live_ctx(), guard.model_addr) {
            (Some(ctx), Some(mutex_addr)) => {
                let mutex = guard.defuse();
                let notified = model::op_condvar_wait(&ctx, self.addr(), mutex_addr, true);
                let inner = mutex.inner.lock().map_err(|_| Poisoned)?;
                Ok((
                    MutexGuard {
                        lock: mutex,
                        inner: Some(inner),
                        model_addr: Some(mutex_addr),
                    },
                    WaitTimeoutResult {
                        timed_out: !notified,
                    },
                ))
            }
            _ => {
                let mut g = guard;
                let inner = g.inner.take().expect("guard live until drop");
                let (inner, r) = self.inner.wait_timeout(inner, dur).map_err(|_| Poisoned)?;
                g.inner = Some(inner);
                Ok((
                    g,
                    WaitTimeoutResult {
                        timed_out: r.timed_out(),
                    },
                ))
            }
        }
    }

    /// Wakes one waiter (FIFO in the model).
    pub fn notify_one(&self) {
        if let Some(ctx) = live_ctx() {
            model::op_condvar_notify(&ctx, self.addr(), false);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if let Some(ctx) = live_ctx() {
            model::op_condvar_notify(&ctx, self.addr(), true);
        } else {
            self.inner.notify_all();
        }
    }
}

/// Thread spawning with model-arbitrated scheduling.
pub mod thread {
    use super::model;

    /// Result of joining a thread (same shape as `std::thread::Result`).
    pub type Result<T> = std::thread::Result<T>;

    /// Thread factory mirroring `std::thread::Builder`.
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder.
        pub fn new() -> Self {
            Self::default()
        }

        /// Names the thread.
        #[must_use]
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawns the thread: model-scheduled inside a run, real otherwise.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match model::spawn_model(self.name.clone(), f) {
                Ok(h) => Ok(JoinHandle(Inner::Model(h))),
                Err(f) => {
                    let mut b = std::thread::Builder::new();
                    if let Some(n) = self.name {
                        b = b.name(n);
                    }
                    b.spawn(f).map(|h| JoinHandle(Inner::Real(h)))
                }
            }
        }
    }

    /// Spawns an unnamed thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// Yield point: voluntary in the model, `std::thread::yield_now`
    /// otherwise.
    pub fn yield_now() {
        match super::live_ctx() {
            Some(ctx) => model::op_yield(&ctx),
            None => std::thread::yield_now(),
        }
    }

    /// Sleep: modeled as a voluntary yield inside a run (durations carry no
    /// meaning under a logical scheduler).
    pub fn sleep(dur: std::time::Duration) {
        match super::live_ctx() {
            Some(ctx) => model::op_yield(&ctx),
            None => std::thread::sleep(dur),
        }
    }

    enum Inner<T> {
        Real(std::thread::JoinHandle<T>),
        Model(model::ModelJoin<T>),
    }

    /// Handle to a spawned thread.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> Result<T> {
            match self.0 {
                Inner::Real(h) => h.join(),
                Inner::Model(h) => h.join(),
            }
        }

        /// True once the thread has finished.
        pub fn is_finished(&self) -> bool {
            match &self.0 {
                Inner::Real(h) => h.is_finished(),
                Inner::Model(h) => h.is_finished(),
            }
        }
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("JoinHandle(..)")
        }
    }
}
