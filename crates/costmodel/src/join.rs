//! Join-operator cost formulas for the nine objectives.
//!
//! Every formula combines the children's cost components with {sum, max,
//! min, ×constant} only (plus the tuple-loss composition), so the principle
//! of near-optimality holds per operator (paper §6.1). The degree of
//! parallelism and all cardinality-derived quantities are constants of the
//! operator configuration, not functions of child costs.

use moqo_cost::{CostVector, Objective};
use moqo_plan::{JoinOp, PlanProps, SortOrder};

use crate::model::{combine_tuple_loss, CostModel};

/// The equi-join predicate used by a join, normalized so that `left_*`
/// refers to the outer input and `right_*` to the inner input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinKey {
    /// Relation index of the outer-side join column.
    pub left_rel: usize,
    /// Column ordinal of the outer-side join column.
    pub left_col: u16,
    /// Relation index of the inner-side join column.
    pub right_rel: usize,
    /// Column ordinal of the inner-side join column.
    pub right_col: u16,
    /// Whether the inner-side column has an index on its base table
    /// (precondition for index-nested-loop joins).
    pub inner_indexed: bool,
}

impl JoinKey {
    /// The sort order an input must have for merge joins to skip sorting it:
    /// outer side.
    #[must_use]
    pub fn outer_order(&self) -> SortOrder {
        SortOrder::on(self.left_rel, self.left_col)
    }

    /// Inner-side merge order.
    #[must_use]
    pub fn inner_order(&self) -> SortOrder {
        SortOrder::on(self.right_rel, self.right_col)
    }
}

impl<'a> CostModel<'a> {
    /// Cost and properties of joining two sub-plans with operator `op`.
    ///
    /// * `left` / `right` are the outer and inner child `(cost, props)`.
    /// * `key` is the equi-join predicate (first crossing edge), if any.
    /// * `right_is_canonical_index_scan` must be true iff the inner child is
    ///   exactly the index-scan plan on `key.right_col` of a single base
    ///   relation — the precondition under which an index-nested-loop join
    ///   replaces the inner scan by per-tuple index probes.
    ///
    /// Returns `None` when the operator is inapplicable: hash, merge and
    /// index-nested-loop joins require an equi-join predicate, and
    /// index-nested-loop additionally requires an indexed inner base
    /// relation accessed by its canonical index scan.
    #[must_use]
    pub fn join_cost(
        &self,
        op: JoinOp,
        left: (&CostVector, &PlanProps),
        right: (&CostVector, &PlanProps),
        key: Option<&JoinKey>,
        right_is_canonical_index_scan: bool,
    ) -> Option<(CostVector, PlanProps)> {
        let (lc, lp) = left;
        let (rc, rp) = right;
        debug_assert_eq!(lp.rels & rp.rels, 0, "operand rel sets must be disjoint");

        let selectivity = self.graph.crossing_selectivity(lp.rels, rp.rels);
        let out_rels = lp.rels | rp.rels;
        let out_rows = (lp.rows * rp.rows * selectivity).max(1.0);
        let out_width = self.width_of(out_rels);
        let loss = combine_tuple_loss(lc.get(Objective::TupleLoss), rc.get(Objective::TupleLoss));
        let sampling_factor = lp.sampling_factor * rp.sampling_factor;

        let (cost, order) = match op {
            JoinOp::HashJoin { dop } => {
                key?;
                (
                    self.hash_join(dop, lc, lp, rc, rp, out_rows),
                    SortOrder::None,
                )
            }
            JoinOp::SortMergeJoin { dop } => {
                let key = key?;
                let order = key.outer_order();
                (self.merge_join(dop, key, lc, lp, rc, rp, out_rows), order)
            }
            JoinOp::IndexNestedLoop => {
                let key = key?;
                if !key.inner_indexed || !right_is_canonical_index_scan || rp.rels.count_ones() != 1
                {
                    return None;
                }
                (self.index_nl_join(key, lc, lp, out_rows), lp.order)
            }
            JoinOp::NestedLoop => (self.nested_loop(lc, lp, rc, rp, out_rows), lp.order),
        };

        let mut cost = cost;
        cost.set(Objective::TupleLoss, loss);
        let props = PlanProps {
            rels: out_rels,
            rows: out_rows,
            width: out_width,
            order,
            sampling_factor,
        };
        Some((cost, props))
    }

    /// Hash join: build a hash table on the inner input (blocking), probe
    /// with the outer input (pipelined). Inputs are generated in parallel
    /// branches.
    fn hash_join(
        &self,
        dop: u8,
        lc: &CostVector,
        lp: &PlanProps,
        rc: &CostVector,
        rp: &PlanProps,
        out_rows: f64,
    ) -> CostVector {
        let p = self.params;
        let hash_bytes = rp.rows * (rp.width + p.hash_entry_overhead);
        let in_mem_bytes = hash_bytes.min(p.work_mem_bytes);
        let spill_bytes = (hash_bytes - p.work_mem_bytes).max(0.0);
        let spill_pages = spill_bytes / p.page_bytes;

        let build_cpu = rp.rows * p.hash_build_cost;
        let probe_cpu = lp.rows * p.hash_probe_cost + out_rows * p.cpu_tuple_cost;
        let own_cpu = build_cpu + probe_cpu;
        let own_io = 2.0 * spill_pages; // write + re-read spilled partitions

        let build_time = p.parallel_time(build_cpu + spill_pages * p.seq_page_cost, dop);
        let probe_time = p.parallel_time(probe_cpu + spill_pages * p.seq_page_cost, dop);

        let mut c = CostVector::zero();
        c.set(
            Objective::TotalTime,
            lc.get(Objective::TotalTime)
                .max(rc.get(Objective::TotalTime) + build_time)
                + probe_time,
        );
        c.set(
            Objective::StartupTime,
            lc.get(Objective::StartupTime)
                .max(rc.get(Objective::TotalTime) + build_time),
        );
        c.set(
            Objective::IoLoad,
            lc.get(Objective::IoLoad) + rc.get(Objective::IoLoad) + own_io,
        );
        c.set(
            Objective::CpuLoad,
            lc.get(Objective::CpuLoad)
                + rc.get(Objective::CpuLoad)
                + own_cpu * p.cpu_overhead_factor(dop),
        );
        c.set(
            Objective::UsedCores,
            (lc.get(Objective::UsedCores) + rc.get(Objective::UsedCores)).max(f64::from(dop)),
        );
        c.set(
            Objective::DiskFootprint,
            lc.get(Objective::DiskFootprint) + rc.get(Objective::DiskFootprint) + spill_bytes,
        );
        c.set(
            Objective::BufferFootprint,
            lc.get(Objective::BufferFootprint)
                + rc.get(Objective::BufferFootprint)
                + in_mem_bytes
                + p.scan_buffer_bytes,
        );
        c.set(
            Objective::Energy,
            lc.get(Objective::Energy)
                + rc.get(Objective::Energy)
                + (own_cpu * p.energy_per_cpu_unit + own_io * p.energy_per_io_page)
                    * p.energy_overhead_factor(dop),
        );
        c
    }

    /// Sort-merge join: sort inputs lacking the merge order (blocking),
    /// then merge. Inputs are generated and sorted in parallel branches —
    /// the paper's `max(t_L, t_R) + t_M` example formula (§6.1).
    #[allow(clippy::too_many_arguments)]
    fn merge_join(
        &self,
        dop: u8,
        key: &JoinKey,
        lc: &CostVector,
        lp: &PlanProps,
        rc: &CostVector,
        rp: &PlanProps,
        out_rows: f64,
    ) -> CostVector {
        let p = self.params;
        let sort_side = |rows: f64, width: f64, needed: bool| -> (f64, f64, f64, f64) {
            // (cpu_work, time, spill_bytes, buffer_bytes)
            if !needed {
                return (0.0, 0.0, 0.0, 0.0);
            }
            let cpu = rows * rows.max(2.0).log2() * p.sort_cmp_cost;
            let bytes = rows * width;
            let spill = (bytes - p.work_mem_bytes).max(0.0);
            let spill_pages = spill / p.page_bytes;
            let time = p.parallel_time(cpu + 2.0 * spill_pages * p.seq_page_cost, dop);
            (cpu, time, spill, bytes.min(p.work_mem_bytes))
        };

        let sort_l = lp.order != key.outer_order();
        let sort_r = rp.order != key.inner_order();
        let (l_cpu, l_time, l_spill, l_buf) = sort_side(lp.rows, lp.width, sort_l);
        let (r_cpu, r_time, r_spill, r_buf) = sort_side(rp.rows, rp.width, sort_r);

        let merge_cpu = (lp.rows + rp.rows) * p.cpu_operator_cost + out_rows * p.cpu_tuple_cost;
        let own_cpu = (l_cpu + r_cpu) * p.cpu_overhead_factor(dop) + merge_cpu;
        let own_io = 2.0 * (l_spill + r_spill) / p.page_bytes;

        // A sorted side is "ready" for merging once generated and sorted;
        // an already-sorted side is ready at its startup time (pipelined).
        let l_ready = if sort_l {
            lc.get(Objective::TotalTime) + l_time
        } else {
            lc.get(Objective::StartupTime)
        };
        let r_ready = if sort_r {
            rc.get(Objective::TotalTime) + r_time
        } else {
            rc.get(Objective::StartupTime)
        };

        let mut c = CostVector::zero();
        c.set(
            Objective::TotalTime,
            (lc.get(Objective::TotalTime) + l_time).max(rc.get(Objective::TotalTime) + r_time)
                + merge_cpu,
        );
        c.set(Objective::StartupTime, l_ready.max(r_ready));
        c.set(
            Objective::IoLoad,
            lc.get(Objective::IoLoad) + rc.get(Objective::IoLoad) + own_io,
        );
        c.set(
            Objective::CpuLoad,
            lc.get(Objective::CpuLoad) + rc.get(Objective::CpuLoad) + own_cpu,
        );
        c.set(
            Objective::UsedCores,
            (lc.get(Objective::UsedCores) + rc.get(Objective::UsedCores)).max(f64::from(dop)),
        );
        c.set(
            Objective::DiskFootprint,
            lc.get(Objective::DiskFootprint) + rc.get(Objective::DiskFootprint) + l_spill + r_spill,
        );
        c.set(
            Objective::BufferFootprint,
            lc.get(Objective::BufferFootprint)
                + rc.get(Objective::BufferFootprint)
                + l_buf
                + r_buf
                + p.scan_buffer_bytes,
        );
        c.set(
            Objective::Energy,
            lc.get(Objective::Energy)
                + rc.get(Objective::Energy)
                + (own_cpu * p.energy_per_cpu_unit + own_io * p.energy_per_io_page)
                    * p.energy_overhead_factor(dop),
        );
        c
    }

    /// Index-nested-loop join: stream the outer input, probe the inner base
    /// relation's index per outer tuple. The inner child plan is *replaced*
    /// by index probes, so only catalog constants of the inner relation
    /// enter the formula (keeps the formula monotone in child costs).
    fn index_nl_join(
        &self,
        key: &JoinKey,
        lc: &CostVector,
        lp: &PlanProps,
        out_rows: f64,
    ) -> CostVector {
        let p = self.params;
        let inner_table = self.catalog.table(self.graph.rels[key.right_rel].table);
        let inner_rows = inner_table.cardinality.max(2.0);
        let inner_pages = inner_table.pages();

        let probes = lp.rows;
        let descend_cpu = p.cpu_operator_cost * inner_rows.log2().ceil();
        let own_cpu = probes * descend_cpu + out_rows * (p.cpu_index_tuple_cost + p.cpu_tuple_cost);
        // Mackert–Lohman-flavoured cap: repeated probes hit cached pages.
        let own_io = probes.min(2.0 * inner_pages) + out_rows * lp.width * 0.0;
        let own_time = own_cpu + own_io * p.random_page_cost;

        let mut c = CostVector::zero();
        c.set(
            Objective::TotalTime,
            lc.get(Objective::TotalTime) + own_time,
        );
        c.set(
            Objective::StartupTime,
            lc.get(Objective::StartupTime) + descend_cpu,
        );
        c.set(Objective::IoLoad, lc.get(Objective::IoLoad) + own_io);
        c.set(Objective::CpuLoad, lc.get(Objective::CpuLoad) + own_cpu);
        c.set(Objective::UsedCores, lc.get(Objective::UsedCores).max(1.0));
        c.set(Objective::DiskFootprint, lc.get(Objective::DiskFootprint));
        c.set(
            Objective::BufferFootprint,
            lc.get(Objective::BufferFootprint) + 2.0 * p.scan_buffer_bytes,
        );
        c.set(
            Objective::Energy,
            lc.get(Objective::Energy)
                + own_cpu * p.energy_per_cpu_unit
                + own_io * p.energy_per_io_page,
        );
        c
    }

    /// Plain nested-loop join with a materialized inner input; the only
    /// operator applicable without an equi-join predicate.
    fn nested_loop(
        &self,
        lc: &CostVector,
        lp: &PlanProps,
        rc: &CostVector,
        rp: &PlanProps,
        out_rows: f64,
    ) -> CostVector {
        let p = self.params;
        let mat_bytes = rp.rows * rp.width;
        let spill_bytes = (mat_bytes - p.work_mem_bytes).max(0.0);
        // The inner is written once and re-read per outer tuple when spilled.
        let own_io = (spill_bytes / p.page_bytes) * (1.0 + lp.rows.clamp(1.0, 100.0));
        let own_cpu = lp.rows * rp.rows * p.cpu_operator_cost
            + out_rows * p.cpu_tuple_cost
            + rp.rows * p.cpu_tuple_cost;
        let own_time = own_cpu + own_io * p.seq_page_cost;

        let mut c = CostVector::zero();
        c.set(
            Objective::TotalTime,
            lc.get(Objective::TotalTime) + rc.get(Objective::TotalTime) + own_time,
        );
        c.set(
            Objective::StartupTime,
            lc.get(Objective::StartupTime)
                .max(rc.get(Objective::TotalTime)),
        );
        c.set(
            Objective::IoLoad,
            lc.get(Objective::IoLoad) + rc.get(Objective::IoLoad) + own_io,
        );
        c.set(
            Objective::CpuLoad,
            lc.get(Objective::CpuLoad) + rc.get(Objective::CpuLoad) + own_cpu,
        );
        c.set(
            Objective::UsedCores,
            lc.get(Objective::UsedCores)
                .max(rc.get(Objective::UsedCores)),
        );
        c.set(
            Objective::DiskFootprint,
            lc.get(Objective::DiskFootprint) + rc.get(Objective::DiskFootprint) + spill_bytes,
        );
        c.set(
            Objective::BufferFootprint,
            lc.get(Objective::BufferFootprint)
                + rc.get(Objective::BufferFootprint)
                + mat_bytes.min(p.work_mem_bytes)
                + p.scan_buffer_bytes,
        );
        c.set(
            Objective::Energy,
            lc.get(Objective::Energy)
                + rc.get(Objective::Energy)
                + own_cpu * p.energy_per_cpu_unit
                + own_io * p.energy_per_io_page,
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CostModelParams;
    use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
    use moqo_plan::ScanOp;

    fn setup() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("orders", 150_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 150_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 600_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 150_000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat)
            .rel("orders", 1.0)
            .rel("lineitem", 1.0)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (params, cat, graph)
    }

    fn key() -> JoinKey {
        JoinKey {
            left_rel: 0,
            left_col: 0,
            right_rel: 1,
            right_col: 0,
            inner_indexed: true,
        }
    }

    fn scan_pair(model: &CostModel, rel: usize, op: ScanOp) -> (CostVector, PlanProps) {
        model.scan_cost(rel, op).expect("scan applicable")
    }

    #[test]
    fn hash_join_requires_equi_predicate() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SeqScan);
        let r = scan_pair(&model, 1, ScanOp::SeqScan);
        assert!(model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                None,
                false
            )
            .is_none());
        assert!(model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false
            )
            .is_some());
    }

    #[test]
    fn join_cardinality_uses_crossing_selectivity() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SeqScan);
        let r = scan_pair(&model, 1, ScanOp::SeqScan);
        let (_, props) = model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false,
            )
            .unwrap();
        // 150k × 600k / 150k = 600k.
        assert!((props.rows - 600_000.0).abs() < 1.0);
        assert_eq!(props.rels, 0b11);
        assert_eq!(props.width, 250.0);
    }

    #[test]
    fn hash_join_startup_includes_build() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SeqScan);
        let r = scan_pair(&model, 1, ScanOp::SeqScan);
        let (c, _) = model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false,
            )
            .unwrap();
        // Startup must cover the full inner generation + build.
        assert!(c.get(Objective::StartupTime) >= r.0.get(Objective::TotalTime));
        assert!(c.get(Objective::BufferFootprint) > l.0.get(Objective::BufferFootprint));
    }

    #[test]
    fn parallel_hash_join_is_faster_but_hungrier() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SeqScan);
        let r = scan_pair(&model, 1, ScanOp::SeqScan);
        let run = |dop| {
            model
                .join_cost(
                    JoinOp::HashJoin { dop },
                    (&l.0, &l.1),
                    (&r.0, &r.1),
                    Some(&key()),
                    false,
                )
                .unwrap()
                .0
        };
        let serial = run(1);
        let wide = run(4);
        assert!(wide.get(Objective::TotalTime) < serial.get(Objective::TotalTime));
        assert!(wide.get(Objective::UsedCores) > serial.get(Objective::UsedCores));
        assert!(wide.get(Objective::Energy) > serial.get(Objective::Energy));
        assert!(wide.get(Objective::CpuLoad) > serial.get(Objective::CpuLoad));
    }

    #[test]
    fn merge_join_skips_sort_on_presorted_inputs() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l_sorted = scan_pair(&model, 0, ScanOp::IndexScan { column: 0 });
        let r_sorted = scan_pair(&model, 1, ScanOp::IndexScan { column: 0 });
        let l_unsorted = scan_pair(&model, 0, ScanOp::SeqScan);
        let r_unsorted = scan_pair(&model, 1, ScanOp::SeqScan);
        let run = |l: &(CostVector, PlanProps), r: &(CostVector, PlanProps)| {
            model
                .join_cost(
                    JoinOp::SortMergeJoin { dop: 1 },
                    (&l.0, &l.1),
                    (&r.0, &r.1),
                    Some(&key()),
                    false,
                )
                .unwrap()
                .0
        };
        let presorted = run(&l_sorted, &r_sorted);
        let unsorted = run(&l_unsorted, &r_unsorted);
        // Sorting dominates: the presorted variant avoids the sort CPU even
        // though index scans are individually more expensive.
        assert!(
            presorted.get(Objective::CpuLoad) < unsorted.get(Objective::CpuLoad),
            "presorted {} vs unsorted {}",
            presorted.get(Objective::CpuLoad),
            unsorted.get(Objective::CpuLoad)
        );
        // Merge-join output is sorted on the outer key.
        let (_, props) = model
            .join_cost(
                JoinOp::SortMergeJoin { dop: 1 },
                (&l_sorted.0, &l_sorted.1),
                (&r_sorted.0, &r_sorted.1),
                Some(&key()),
                false,
            )
            .unwrap();
        assert_eq!(props.order, SortOrder::on(0, 0));
    }

    #[test]
    fn index_nl_requires_canonical_inner_index_scan() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SeqScan);
        let r = scan_pair(&model, 1, ScanOp::IndexScan { column: 0 });
        assert!(model
            .join_cost(
                JoinOp::IndexNestedLoop,
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false
            )
            .is_none());
        let (c, props) = model
            .join_cost(
                JoinOp::IndexNestedLoop,
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                true,
            )
            .unwrap();
        // IdxNL streams: startup is tiny compared to hash join.
        let (hash, _) = model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false,
            )
            .unwrap();
        assert!(c.get(Objective::StartupTime) < hash.get(Objective::StartupTime) / 100.0);
        assert!(c.get(Objective::BufferFootprint) < hash.get(Objective::BufferFootprint));
        assert_eq!(props.order, SortOrder::None); // preserves outer (unsorted) order
    }

    #[test]
    fn nested_loop_always_applicable_and_expensive() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SeqScan);
        let r = scan_pair(&model, 1, ScanOp::SeqScan);
        let (nl, _) = model
            .join_cost(JoinOp::NestedLoop, (&l.0, &l.1), (&r.0, &r.1), None, false)
            .unwrap();
        let (hash, _) = model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false,
            )
            .unwrap();
        assert!(nl.get(Objective::TotalTime) > hash.get(Objective::TotalTime));
    }

    #[test]
    fn tuple_loss_composes_through_joins() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SamplingScan { rate_pct: 2 });
        let r = scan_pair(&model, 1, ScanOp::SamplingScan { rate_pct: 5 });
        let (c, props) = model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false,
            )
            .unwrap();
        let expect = 1.0 - (1.0 - 0.98) * (1.0 - 0.95);
        assert!((c.get(Objective::TupleLoss) - expect).abs() < 1e-12);
        assert!((props.sampling_factor - 0.001).abs() < 1e-12);
    }

    #[test]
    fn spill_kicks_in_beyond_work_mem() {
        let (mut p, cat, g) = setup();
        p.work_mem_bytes = 1024.0; // force spilling
        let model = CostModel::new(&p, &cat, &g);
        let l = scan_pair(&model, 0, ScanOp::SeqScan);
        let r = scan_pair(&model, 1, ScanOp::SeqScan);
        let (c, _) = model
            .join_cost(
                JoinOp::HashJoin { dop: 1 },
                (&l.0, &l.1),
                (&r.0, &r.1),
                Some(&key()),
                false,
            )
            .unwrap();
        assert!(c.get(Objective::DiskFootprint) > 0.0);
        assert!(c.get(Objective::IoLoad) > l.0.get(Objective::IoLoad) + r.0.get(Objective::IoLoad));
    }
}
