//! The [`CostModel`]: scan costs and the shared machinery for join costs.

use moqo_catalog::{subset_width, Catalog, JoinGraph};
use moqo_cost::{CostVector, Objective};
use moqo_plan::{PlanProps, ScanOp, SortOrder};

use crate::params::CostModelParams;

/// The nine-objective cost model, bound to a catalog, one query block and a
/// parameter set.
///
/// The model is *compositional*: scan costs are computed from base-table
/// statistics, join costs from the two children's `(CostVector, PlanProps)`
/// pairs plus the crossing join predicate. This is exactly the interface the
/// dynamic-programming optimizers (EXA/RTA/IRA) need, and it guarantees the
/// recursive formulas only see child costs and fixed per-operator constants
/// — the precondition of the principle of near-optimality (§6.1).
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    /// Cost parameters (Postgres GUC analogues).
    pub params: &'a CostModelParams,
    /// Base-table statistics.
    pub catalog: &'a Catalog,
    /// The query block being optimized.
    pub graph: &'a JoinGraph,
}

impl<'a> CostModel<'a> {
    /// Creates a model for one query block.
    #[must_use]
    pub fn new(params: &'a CostModelParams, catalog: &'a Catalog, graph: &'a JoinGraph) -> Self {
        CostModel {
            params,
            catalog,
            graph,
        }
    }

    /// Cost and properties of scanning base relation `rel` with operator
    /// `op`. Returns `None` when the operator is inapplicable (index scan on
    /// a column without an index).
    #[must_use]
    pub fn scan_cost(&self, rel: usize, op: ScanOp) -> Option<(CostVector, PlanProps)> {
        let p = self.params;
        let base = &self.graph.rels[rel];
        let table = self.catalog.table(base.table);
        let full_rows = self.graph.filtered_rows(rel, self.catalog);
        let heap_pages = table.pages();
        let width = table.tuple_bytes;

        let mut c = CostVector::zero();
        let props = match op {
            ScanOp::SeqScan => {
                let cpu = table.cardinality * p.cpu_tuple_cost;
                let io = heap_pages;
                c.set(Objective::TotalTime, io * p.seq_page_cost + cpu);
                c.set(Objective::StartupTime, 0.0);
                c.set(Objective::IoLoad, io);
                c.set(Objective::CpuLoad, cpu);
                c.set(Objective::UsedCores, 1.0);
                c.set(Objective::DiskFootprint, 0.0);
                c.set(Objective::BufferFootprint, p.scan_buffer_bytes);
                c.set(
                    Objective::Energy,
                    cpu * p.energy_per_cpu_unit + io * p.energy_per_io_page,
                );
                c.set(Objective::TupleLoss, 0.0);
                PlanProps {
                    rels: 1 << rel,
                    rows: full_rows,
                    width,
                    order: SortOrder::None,
                    sampling_factor: 1.0,
                }
            }
            ScanOp::IndexScan { column } => {
                if !table.column(column).indexed {
                    return None;
                }
                // Full index scan: traverse the index in key order and fetch
                // heap tuples (random access pattern).
                let index_pages = (table.cardinality * 16.0 / p.page_bytes).max(1.0);
                let io = index_pages + heap_pages;
                let cpu = table.cardinality * (p.cpu_index_tuple_cost + p.cpu_tuple_cost);
                // First tuple: btree descent plus one random heap fetch.
                let descend = p.cpu_operator_cost * table.cardinality.max(2.0).log2().ceil()
                    + p.random_page_cost;
                c.set(
                    Objective::TotalTime,
                    index_pages * p.seq_page_cost + heap_pages * p.random_page_cost + cpu,
                );
                c.set(Objective::StartupTime, descend);
                c.set(Objective::IoLoad, io);
                c.set(Objective::CpuLoad, cpu);
                c.set(Objective::UsedCores, 1.0);
                c.set(Objective::DiskFootprint, 0.0);
                c.set(Objective::BufferFootprint, 2.0 * p.scan_buffer_bytes);
                c.set(
                    Objective::Energy,
                    cpu * p.energy_per_cpu_unit + io * p.energy_per_io_page,
                );
                c.set(Objective::TupleLoss, 0.0);
                PlanProps {
                    rels: 1 << rel,
                    rows: full_rows,
                    width,
                    order: SortOrder::on(rel, column),
                    sampling_factor: 1.0,
                }
            }
            ScanOp::SamplingScan { rate_pct } => {
                let fraction = op.sampling_fraction();
                debug_assert!((1..=5).contains(&rate_pct));
                // Bernoulli page-level sampling: read only the sampled pages.
                let io = (heap_pages * fraction).max(1.0);
                let cpu = table.cardinality * fraction * p.cpu_tuple_cost
                    + table.cardinality * p.cpu_operator_cost * 0.1;
                c.set(Objective::TotalTime, io * p.seq_page_cost + cpu);
                c.set(Objective::StartupTime, 0.0);
                c.set(Objective::IoLoad, io);
                c.set(Objective::CpuLoad, cpu);
                c.set(Objective::UsedCores, 1.0);
                c.set(Objective::DiskFootprint, 0.0);
                c.set(Objective::BufferFootprint, p.scan_buffer_bytes);
                c.set(
                    Objective::Energy,
                    cpu * p.energy_per_cpu_unit + io * p.energy_per_io_page,
                );
                c.set(Objective::TupleLoss, 1.0 - fraction);
                PlanProps {
                    rels: 1 << rel,
                    rows: (full_rows * fraction).max(1.0),
                    width,
                    order: SortOrder::None,
                    sampling_factor: fraction,
                }
            }
        };
        Some((c, props))
    }

    /// Combined tuple width of the join result over the union of two masks.
    #[must_use]
    pub(crate) fn width_of(&self, rels: moqo_catalog::RelMask) -> f64 {
        subset_width(self.graph, self.catalog, rels)
    }
}

/// Tuple-loss composition for joins (paper §6.1): joining operands with
/// losses `a` and `b` yields loss `1 − (1−a)(1−b)`.
#[inline]
#[must_use]
pub(crate) fn combine_tuple_loss(a: f64, b: f64) -> f64 {
    (1.0 - (1.0 - a) * (1.0 - b)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::{ColumnStats, JoinGraphBuilder, TableStats};

    fn setup() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("t", 100_000.0, 100.0)
                .with_column(ColumnStats::new("id", 100_000.0).indexed())
                .with_column(ColumnStats::new("payload", 50.0)),
        );
        let graph = JoinGraphBuilder::new(&cat).rel("t", 0.5).build();
        (params, cat, graph)
    }

    #[test]
    fn seq_scan_costs_pages_plus_cpu() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let (c, props) = model.scan_cost(0, ScanOp::SeqScan).unwrap();
        let pages = cat.table(g.rels[0].table).pages();
        assert!((c.get(Objective::IoLoad) - pages).abs() < 1e-9);
        assert!(c.get(Objective::TotalTime) > pages * p.seq_page_cost);
        assert_eq!(c.get(Objective::StartupTime), 0.0);
        assert_eq!(c.get(Objective::TupleLoss), 0.0);
        assert_eq!(props.rows, 50_000.0); // filter selectivity 0.5
        assert_eq!(props.order, SortOrder::None);
        assert_eq!(props.sampling_factor, 1.0);
    }

    #[test]
    fn index_scan_sorted_but_more_expensive_io() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let (seq, _) = model.scan_cost(0, ScanOp::SeqScan).unwrap();
        let (idx, props) = model.scan_cost(0, ScanOp::IndexScan { column: 0 }).unwrap();
        assert_eq!(props.order, SortOrder::on(0, 0));
        assert!(idx.get(Objective::TotalTime) > seq.get(Objective::TotalTime));
        assert!(idx.get(Objective::StartupTime) > 0.0);
    }

    #[test]
    fn index_scan_requires_index() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        assert!(model
            .scan_cost(0, ScanOp::IndexScan { column: 1 })
            .is_none());
    }

    #[test]
    fn sampling_scan_trades_loss_for_cost() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let (seq, _) = model.scan_cost(0, ScanOp::SeqScan).unwrap();
        let (s1, props1) = model
            .scan_cost(0, ScanOp::SamplingScan { rate_pct: 1 })
            .unwrap();
        let (s5, props5) = model
            .scan_cost(0, ScanOp::SamplingScan { rate_pct: 5 })
            .unwrap();
        assert!(s1.get(Objective::TotalTime) < s5.get(Objective::TotalTime));
        assert!(s5.get(Objective::TotalTime) < seq.get(Objective::TotalTime));
        assert!((s1.get(Objective::TupleLoss) - 0.99).abs() < 1e-12);
        assert!((s5.get(Objective::TupleLoss) - 0.95).abs() < 1e-12);
        assert_eq!(props1.sampling_factor, 0.01);
        assert!((props1.rows - 500.0).abs() < 1e-9);
        assert!(props5.rows > props1.rows);
    }

    #[test]
    fn tuple_loss_composition_matches_paper_formula() {
        assert_eq!(combine_tuple_loss(0.0, 0.0), 0.0);
        assert!((combine_tuple_loss(0.5, 0.5) - 0.75).abs() < 1e-12);
        assert_eq!(combine_tuple_loss(1.0, 0.3), 1.0);
        // Symmetry.
        assert_eq!(combine_tuple_loss(0.2, 0.7), combine_tuple_loss(0.7, 0.2));
    }
}
