//! Tunable cost-model parameters (the Postgres GUC analogues).

/// Parameters of the nine-objective cost model. Defaults follow the
/// Postgres planner constants (`seq_page_cost = 1.0`, `cpu_tuple_cost =
/// 0.01`, …) extended with parallelism and energy coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelParams {
    /// Bytes per buffer/heap page (Postgres BLCKSZ).
    pub page_bytes: f64,
    /// Cost of a sequential page fetch (Postgres `seq_page_cost`).
    pub seq_page_cost: f64,
    /// Cost of a random page fetch (Postgres `random_page_cost`).
    pub random_page_cost: f64,
    /// CPU cost of emitting one tuple (Postgres `cpu_tuple_cost`).
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry (Postgres `cpu_index_tuple_cost`).
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of a generic operator/qual evaluation (Postgres `cpu_operator_cost`).
    pub cpu_operator_cost: f64,
    /// CPU cost per inner tuple inserted into a hash table.
    pub hash_build_cost: f64,
    /// CPU cost per outer tuple probing a hash table.
    pub hash_probe_cost: f64,
    /// CPU cost per comparison in sorting (multiplied by `n·log2(n)`).
    pub sort_cmp_cost: f64,
    /// Memory available per sort/hash before spilling to disk, in bytes
    /// (Postgres `work_mem`).
    pub work_mem_bytes: f64,
    /// Per-entry memory overhead of a hash table, in bytes.
    pub hash_entry_overhead: f64,
    /// Fractional CPU-work overhead per additional parallel worker
    /// (coordination, tuple exchange).
    pub parallel_cpu_overhead: f64,
    /// Fixed startup/teardown time cost per additional parallel worker.
    pub parallel_setup_cost: f64,
    /// Energy per unit of CPU work.
    pub energy_per_cpu_unit: f64,
    /// Energy per page of IO.
    pub energy_per_io_page: f64,
    /// Fractional energy overhead per additional core (Flach-style
    /// coordination overhead: parallel plans may be faster but consume more
    /// total energy, paper §4).
    pub energy_coordination: f64,
    /// Buffer memory held by a scan, in bytes.
    pub scan_buffer_bytes: f64,
    /// Whether the plan space includes sampling scans. Sampling makes plan
    /// cardinality vary within a table set; the optimizer compensates by
    /// auto-selecting props-aware pruning whenever this is `true` and
    /// `TupleLoss` is not a selected objective (`PruneMode::auto` in
    /// `moqo_core`), which keeps the RTA/IRA guarantees exact over the
    /// sampled plan space. Disabling sampling shrinks the space (~3× fewer
    /// considered plans on an 8-table chain) and keeps every pruning site
    /// on the paper's cost-only rule.
    pub enable_sampling: bool,
}

impl Default for CostModelParams {
    fn default() -> Self {
        CostModelParams {
            page_bytes: 8192.0,
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            hash_build_cost: 0.015,
            hash_probe_cost: 0.01,
            sort_cmp_cost: 0.002,
            work_mem_bytes: 4.0 * 1024.0 * 1024.0,
            hash_entry_overhead: 16.0,
            parallel_cpu_overhead: 0.05,
            parallel_setup_cost: 10.0,
            energy_per_cpu_unit: 1.0,
            energy_per_io_page: 2.0,
            energy_coordination: 0.08,
            scan_buffer_bytes: 8192.0,
            enable_sampling: true,
        }
    }
}

impl CostModelParams {
    /// CPU-work multiplier for running an operator at the given degree of
    /// parallelism (total work grows with coordination overhead).
    #[must_use]
    pub fn cpu_overhead_factor(&self, dop: u8) -> f64 {
        1.0 + self.parallel_cpu_overhead * f64::from(dop - 1)
    }

    /// Energy multiplier at the given degree of parallelism.
    #[must_use]
    pub fn energy_overhead_factor(&self, dop: u8) -> f64 {
        1.0 + self.energy_coordination * f64::from(dop - 1)
    }

    /// Wall-clock time for `work` units of own work at the given DOP:
    /// the work parallelizes, plus a fixed setup cost per extra worker.
    #[must_use]
    pub fn parallel_time(&self, work: f64, dop: u8) -> f64 {
        work * self.cpu_overhead_factor(dop) / f64::from(dop)
            + self.parallel_setup_cost * f64::from(dop - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_postgres_constants() {
        let p = CostModelParams::default();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert_eq!(p.cpu_tuple_cost, 0.01);
        assert_eq!(p.page_bytes, 8192.0);
    }

    #[test]
    fn serial_operator_has_no_overhead() {
        let p = CostModelParams::default();
        assert_eq!(p.cpu_overhead_factor(1), 1.0);
        assert_eq!(p.energy_overhead_factor(1), 1.0);
        assert_eq!(p.parallel_time(100.0, 1), 100.0);
    }

    #[test]
    fn parallelism_trades_time_for_energy() {
        let p = CostModelParams::default();
        let work = 1e6;
        // More cores: less wall-clock time ...
        assert!(p.parallel_time(work, 4) < p.parallel_time(work, 1));
        // ... but more total energy (the paper's §4 observation).
        assert!(p.energy_overhead_factor(4) > p.energy_overhead_factor(1));
        assert!(p.cpu_overhead_factor(4) > 1.0);
    }

    #[test]
    fn tiny_work_not_worth_parallelizing() {
        // Fixed setup cost makes high DOP a loss for small inputs, so DOP
        // choices form a genuine tradeoff rather than a dominant strategy.
        let p = CostModelParams::default();
        assert!(p.parallel_time(10.0, 4) > p.parallel_time(10.0, 1));
    }
}
