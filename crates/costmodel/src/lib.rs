//! Nine-objective Postgres-style cost model (paper §4).
//!
//! The paper extends the Postgres 9.2.4 cost model to nine objectives. The
//! formulas here are analytical reconstructions with the same structure:
//! every objective's recursive formula combines the children's costs using
//! only **sum, maximum, minimum and multiplication by constants** — plus the
//! special tuple-loss formula `1 − (1−a)(1−b)` — so the principle of
//! near-optimality (paper §6.1, Definition 7) holds for every operator and
//! objective. This structural property is what the RTA/IRA guarantees rest
//! on, and it is property-tested in `tests/pono.rs`.
//!
//! The nine objectives and the shape of their formulas:
//!
//! | objective        | children combined via | notes |
//! |------------------|----------------------|-------|
//! | total time       | `max` (parallel branches) or `+` (pipelines), `+` own work / DOP | paper's `max(t_L, t_R) + t_M` example |
//! | startup time     | `max` / `+` of child startup/total | hash build & sorts block, IdxNL streams |
//! | IO load          | `+` | pages read/written, incl. spill |
//! | CPU load         | `+` | DOP adds coordination overhead |
//! | used cores       | `max(c_L + c_R, dop)` for parallel branches | paper: up to 4 cores/op |
//! | disk footprint   | `+` | spill beyond `work_mem` |
//! | buffer footprint | `+` | conservative concurrent-peak model |
//! | energy           | `+`, own work × (1 + coord·(dop−1)) | Flach-style: parallelism costs energy |
//! | tuple loss       | `1−(1−a)(1−b)` | sampling scans: `1 − rate` |
//!
//! Units: time in Postgres optimizer units (the paper's Figure 4 axis is
//! "Time (PG Optimizer Units)"), IO in pages, CPU in optimizer units, disk
//! and buffer in bytes, energy in abstract Joule-like units, tuple loss as a
//! fraction in `[0, 1]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod join;
mod model;
mod params;

pub use join::JoinKey;
pub use model::CostModel;
pub use params::CostModelParams;
