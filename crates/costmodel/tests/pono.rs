//! Property tests for the principle of near-optimality (PONO, paper
//! Definition 7) at the cost-formula level: for every join operator and
//! every objective, replacing the children of a plan by children whose cost
//! is worse by at most factor α must not make the parent worse by more than
//! factor α.
//!
//! Cardinality-derived quantities are operator constants here (both child
//! variants share the same physical properties), which is exactly the
//! setting of the paper's proof by structural induction over {sum, max,
//! min, ×const} formulas plus the tuple-loss composition.

use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
use moqo_cost::{approx_dominates, CostVector, Objective, ObjectiveSet, NUM_OBJECTIVES};
use moqo_costmodel::{CostModel, CostModelParams, JoinKey};
use moqo_plan::{JoinOp, PlanProps, SortOrder};
use proptest::prelude::*;

fn setup() -> (CostModelParams, Catalog, JoinGraph) {
    let params = CostModelParams::default();
    let mut cat = Catalog::new();
    cat.add_table(
        TableStats::new("left_t", 50_000.0, 100.0)
            .with_column(ColumnStats::new("lk", 50_000.0).indexed()),
    );
    cat.add_table(
        TableStats::new("right_t", 200_000.0, 120.0)
            .with_column(ColumnStats::new("rk", 50_000.0).indexed()),
    );
    let graph = JoinGraphBuilder::new(&cat)
        .rel("left_t", 1.0)
        .rel("right_t", 1.0)
        .join(("left_t", "lk"), ("right_t", "rk"))
        .build();
    (params, cat, graph)
}

fn key() -> JoinKey {
    JoinKey {
        left_rel: 0,
        left_col: 0,
        right_rel: 1,
        right_col: 0,
        inner_indexed: true,
    }
}

/// A child cost vector with sensible magnitudes per objective; tuple loss
/// stays in [0, 1].
fn arb_child_cost() -> impl Strategy<Value = CostVector> {
    (prop::array::uniform8(1.0f64..1e6), 0.0f64..0.9).prop_map(|(vals, loss)| {
        let mut a = [0.0; NUM_OBJECTIVES];
        a[..8].copy_from_slice(&vals);
        a[Objective::UsedCores.index()] = 1.0 + vals[4] % 4.0; // 1..5 cores
        a[Objective::TupleLoss.index()] = loss;
        CostVector::from_array(a)
    })
}

/// Per-dimension degradation factors in [1, α]; tuple loss is clamped to
/// its domain.
fn degrade(c: &CostVector, factors: &[f64; NUM_OBJECTIVES], alpha: f64) -> CostVector {
    let mut out = [0.0; NUM_OBJECTIVES];
    for (i, v) in c.as_array().iter().enumerate() {
        let f = 1.0 + (factors[i] % 1.0) * (alpha - 1.0);
        out[i] = v * f;
    }
    let loss_i = Objective::TupleLoss.index();
    out[loss_i] = out[loss_i].min(1.0);
    CostVector::from_array(out)
}

fn child_props(rel: usize, rows: f64, order: SortOrder) -> PlanProps {
    PlanProps {
        rels: 1 << rel,
        rows,
        width: 110.0,
        order,
        sampling_factor: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// PONO over all join operators: degraded children yield a parent within
    /// α of the original parent in every objective.
    #[test]
    fn pono_holds_for_all_join_operators(
        lc in arb_child_cost(),
        rc in arb_child_cost(),
        lf in prop::array::uniform9(0.0f64..100.0),
        rf in prop::array::uniform9(0.0f64..100.0),
        alpha in 1.0f64..3.0,
        lrows in 10.0f64..100_000.0,
        rrows in 10.0f64..100_000.0,
        l_sorted in any::<bool>(),
        r_sorted in any::<bool>(),
    ) {
        let (params, cat, graph) = setup();
        let model = CostModel::new(&params, &cat, &graph);
        let k = key();

        let l_order = if l_sorted { k.outer_order() } else { SortOrder::None };
        let r_order = if r_sorted { k.inner_order() } else { SortOrder::None };
        let lp = child_props(0, lrows, l_order);
        let rp = child_props(1, rrows, r_order);

        let lc_bad = degrade(&lc, &lf, alpha);
        let rc_bad = degrade(&rc, &rf, alpha);
        // Precondition of PONO: the degraded children are α-dominated.
        prop_assert!(approx_dominates(&lc_bad, &lc, alpha + 1e-9, ObjectiveSet::all()));
        prop_assert!(approx_dominates(&rc_bad, &rc, alpha + 1e-9, ObjectiveSet::all()));

        for op in JoinOp::all_configurations() {
            // Index-nested-loop needs the canonical inner; exercise it too.
            let canonical = matches!(op, JoinOp::IndexNestedLoop);
            let base = model.join_cost(op, (&lc, &lp), (&rc, &rp), Some(&k), canonical);
            let degraded =
                model.join_cost(op, (&lc_bad, &lp), (&rc_bad, &rp), Some(&k), canonical);
            let (Some((base, _)), Some((deg, _))) = (base, degraded) else {
                continue;
            };
            for o in Objective::ALL {
                prop_assert!(
                    deg.get(o) <= alpha * base.get(o) + 1e-6,
                    "{op}: objective {o} violates PONO: {} > {} × {}",
                    deg.get(o),
                    alpha,
                    base.get(o)
                );
            }
        }
    }

    /// POO (Definition 6) as the α = 1 special case: dominated children
    /// yield a dominated parent.
    #[test]
    fn poo_holds_for_all_join_operators(
        lc in arb_child_cost(),
        rc in arb_child_cost(),
        shrink in prop::array::uniform9(0.1f64..1.0),
        lrows in 10.0f64..100_000.0,
        rrows in 10.0f64..100_000.0,
    ) {
        let (params, cat, graph) = setup();
        let model = CostModel::new(&params, &cat, &graph);
        let k = key();
        let lp = child_props(0, lrows, SortOrder::None);
        let rp = child_props(1, rrows, SortOrder::None);

        // Better children: every dimension shrunk.
        let mut better = [0.0; NUM_OBJECTIVES];
        for (i, v) in lc.as_array().iter().enumerate() {
            better[i] = v * shrink[i];
        }
        let lc_better = CostVector::from_array(better);

        for op in JoinOp::all_configurations() {
            let canonical = matches!(op, JoinOp::IndexNestedLoop);
            let base = model.join_cost(op, (&lc, &lp), (&rc, &rp), Some(&k), canonical);
            let improved =
                model.join_cost(op, (&lc_better, &lp), (&rc, &rp), Some(&k), canonical);
            let (Some((base, _)), Some((imp, _))) = (base, improved) else {
                continue;
            };
            for o in Objective::ALL {
                prop_assert!(
                    imp.get(o) <= base.get(o) + 1e-9,
                    "{op}: objective {o} violates POO"
                );
            }
        }
    }

    /// Scan costs are monotone in the sampling rate for time/io/cpu and
    /// anti-monotone for tuple loss — the tradeoff sampling exists for.
    #[test]
    fn sampling_rate_tradeoff_is_monotone(rate in 1u8..5) {
        let (params, cat, graph) = setup();
        let model = CostModel::new(&params, &cat, &graph);
        let (lo, _) = model
            .scan_cost(0, moqo_plan::ScanOp::SamplingScan { rate_pct: rate })
            .unwrap();
        let (hi, _) = model
            .scan_cost(0, moqo_plan::ScanOp::SamplingScan { rate_pct: rate + 1 })
            .unwrap();
        prop_assert!(lo.get(Objective::TotalTime) <= hi.get(Objective::TotalTime));
        prop_assert!(lo.get(Objective::CpuLoad) <= hi.get(Objective::CpuLoad));
        prop_assert!(lo.get(Objective::TupleLoss) >= hi.get(Objective::TupleLoss));
    }
}
