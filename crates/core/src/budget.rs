//! Optimization-time budgets (the paper's two-hour timeout, §5.1).

use std::time::{Duration, Instant};

/// A wall-clock deadline for one optimizer run. The paper's experiments use
/// a two-hour timeout; when it expires, the dynamic programming "finishes
/// quickly by only generating one plan for all table sets that have not been
/// treated so far" (§5.1). Checks are amortized: [`Deadline::expired`] only
/// consults the clock every few thousand calls.
#[derive(Debug)]
pub struct Deadline {
    start: Instant,
    limit: Option<Duration>,
    check_counter: std::cell::Cell<u32>,
    expired_flag: std::cell::Cell<bool>,
}

/// How many `expired()` calls share one clock read.
const CHECK_EVERY: u32 = 4096;

impl Deadline {
    /// A deadline `limit` from now; `None` means unlimited.
    #[must_use]
    pub fn new(limit: Option<Duration>) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
            check_counter: std::cell::Cell::new(0),
            expired_flag: std::cell::Cell::new(false),
        }
    }

    /// An unlimited deadline.
    #[must_use]
    pub fn unlimited() -> Self {
        Deadline::new(None)
    }

    /// Cheap amortized expiry check.
    #[inline]
    pub fn expired(&self) -> bool {
        if self.expired_flag.get() {
            return true;
        }
        let Some(limit) = self.limit else {
            return false;
        };
        let n = self.check_counter.get();
        if n == 0 {
            self.check_counter.set(CHECK_EVERY);
            if self.start.elapsed() >= limit {
                self.expired_flag.set(true);
                return true;
            }
        } else {
            self.check_counter.set(n - 1);
        }
        false
    }

    /// Precise expiry check (always reads the clock).
    #[must_use]
    pub fn expired_now(&self) -> bool {
        if self.expired_flag.get() {
            return true;
        }
        match self.limit {
            Some(limit) if self.start.elapsed() >= limit => {
                self.expired_flag.set(true);
                true
            }
            _ => false,
        }
    }

    /// Elapsed time since the deadline was created.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The budget left on the clock right now: `None` for an unlimited
    /// deadline, zero once expired. Worker threads cannot share a
    /// [`Deadline`] (the amortization cells are intentionally not `Sync`),
    /// so each derives its own from the remaining budget at spawn time.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.limit.map(|l| l.saturating_sub(self.start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::unlimited();
        for _ in 0..10_000 {
            assert!(!d.expired());
        }
        assert!(!d.expired_now());
    }

    #[test]
    fn zero_limit_expires_immediately() {
        let d = Deadline::new(Some(Duration::ZERO));
        assert!(d.expired_now());
        assert!(d.expired());
    }

    #[test]
    fn expiry_is_sticky() {
        let d = Deadline::new(Some(Duration::ZERO));
        assert!(d.expired_now());
        // Once expired, even amortized checks report true immediately.
        for _ in 0..10 {
            assert!(d.expired());
        }
    }

    #[test]
    fn generous_limit_does_not_expire() {
        let d = Deadline::new(Some(Duration::from_secs(3600)));
        for _ in 0..10_000 {
            assert!(!d.expired());
        }
    }

    #[test]
    fn remaining_tracks_the_budget() {
        assert_eq!(Deadline::unlimited().remaining(), None);
        let d = Deadline::new(Some(Duration::from_secs(3600)));
        let r = d.remaining().unwrap();
        assert!(r <= Duration::from_secs(3600) && r > Duration::from_secs(3500));
        let expired = Deadline::new(Some(Duration::ZERO));
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn elapsed_grows() {
        let d = Deadline::unlimited();
        let a = d.elapsed();
        let b = d.elapsed();
        assert!(b >= a);
    }
}
