//! Many-objective query optimization algorithms.
//!
//! This crate implements the paper's contribution and its baseline:
//!
//! * [`exa`] — the **exact algorithm** (Ganguly et al. 1992; paper §5,
//!   Algorithm 1): dynamic programming over table subsets that keeps a full
//!   Pareto plan set per subset.
//! * [`rta`] — the **representative-tradeoffs algorithm** (paper §6,
//!   Algorithm 2): an approximation scheme for *weighted* MOQO. Identical
//!   enumeration, but a new plan is only inserted if no stored plan
//!   approximately dominates it with internal precision `α_i = α_U^(1/|Q|)`.
//!   Generates an `α_U`-approximate Pareto set (Theorem 3) and therefore an
//!   `α_U`-approximate weighted optimum (Corollary 1).
//! * [`ira`] — the **iterative-refinement algorithm** (paper §7,
//!   Algorithm 3): an approximation scheme for *bounded-weighted* MOQO that
//!   repeatedly invokes the RTA's `FindParetoPlans` with geometrically
//!   refined precision `α(i) = α_U^(2^(−i/(3l−3)))` until a stopping
//!   condition certifies an `α_U`-approximate plan (Theorem 6).
//! * [`selinger`] — the classical single-objective Selinger baseline (bushy
//!   variant), realized as the exact algorithm over a single objective.
//! * [`rmq`] — the **anytime randomized optimizer** (following Trummer &
//!   Koch's randomized follow-up, arXiv:1603.00400): samples join trees and
//!   improves them by local transformations, scaling to join graphs far
//!   beyond the reach of the dynamic-programming schemes — without a formal
//!   `α_U` guarantee.
//!
//! The shared dynamic-programming skeleton lives in [`dp`]; the pruning
//! structure implementing Algorithms 1/2's `Prune` in [`pareto`]; plan
//! selection under weights and bounds (`SelectBest`) in [`select`];
//! asymptotic complexity formulas (paper Figure 7, Theorems 1–5) in
//! [`complexity`]; and a user-facing facade over multi-block queries in
//! [`Optimizer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod dp;
pub mod pareto;
pub mod rmq;
pub mod select;
#[doc(hidden)]
pub mod test_support;

mod budget;
mod exa_rta;
mod ira;
mod metrics;
mod optimizer;
mod soqo;

pub use budget::Deadline;
pub use dp::{find_pareto_plans, DpConfig, DpResult, DpStats, PlanEntry, TreeShape};
pub use exa_rta::{exa, rta, rta_internal_precision};
pub use ira::{ira, ira_precision_schedule, IraResult};
pub use metrics::{BlockReport, ConvergencePoint, OptimizationReport};
pub use optimizer::{combine_block_costs, Algorithm, BlockPlan, OptimizationResult, Optimizer};
pub use pareto::{props_key, FrontierProbes, FrontierStructure, PruneMode};
pub use rmq::{cost_tree, rmq, rmq_warm, RmqConfig, RmqResult};
pub use select::select_best;
pub use soqo::{min_cost_for_objective, selinger};
