//! The iterative-refinement algorithm (IRA, Algorithm 3) for
//! bounded-weighted MOQO on one query block.
//!
//! An approximate Pareto set does not necessarily contain a near-optimal
//! plan once bounds are involved (paper Figure 8): two cost vectors can be
//! arbitrarily similar while only one respects the bounds. The IRA therefore
//! iterates the RTA's `FindParetoPlans` with geometrically refined precision
//! and stops as soon as a certificate proves the currently best plan
//! `α_U`-approximate (Theorem 6):
//!
//! > terminate once `¬∃ p ∈ P : c(p) ⪯ α·B ∧ C_W(c(p))/α < C_W(c(popt))/α_U`
//!
//! The precision schedule `α(i) = α_U^(2^(−i/(3l−3)))` is derived from
//! Theorem 7: it makes the worst-case time of iteration `i` grow like `2^i`,
//! so the final iteration dominates and redundant work across iterations is
//! negligible (§7.2).

use moqo_cost::Preference;
use moqo_costmodel::CostModel;

use crate::budget::Deadline;
use crate::dp::DpResult;
use crate::exa_rta::{rta_internal_precision, run};
use crate::pareto::PlanEntry;
use crate::select::select_best;

/// Precision used by IRA iteration `i` (1-based) for `l` objectives:
/// `α_U^(2^(−i/(3l−3)))`. For `l = 1` the denominator degenerates; we clamp
/// it to 1, which makes the schedule converge in a single refinement step
/// (bounded single-objective optimization needs no Pareto tradeoffs).
#[must_use]
pub fn ira_precision_schedule(alpha_u: f64, objectives: usize, iteration: u32) -> f64 {
    debug_assert!(alpha_u >= 1.0 && objectives >= 1 && iteration >= 1);
    let denom = (3 * objectives).saturating_sub(3).max(1) as f64;
    alpha_u.powf(2f64.powf(-f64::from(iteration) / denom))
}

/// Below this distance from 1 the iteration precision is snapped to exactly
/// 1 (an exact iteration), guaranteeing termination despite floating point.
const ALPHA_EXACT_THRESHOLD: f64 = 1.0 + 1e-6;

/// Hard cap on iterations before forcing an exact final iteration. The
/// paper's Figure 10 observes up to ≈100 iterations; the cap only matters
/// when floating-point noise stalls the certificate.
const MAX_ITERATIONS: u32 = 128;

/// Result of one IRA run.
#[derive(Debug)]
pub struct IraResult {
    /// The last iteration's plan set (an `α_last`-approximate Pareto set).
    pub result: DpResult,
    /// The selected plan `popt` — an `α_U`-approximate solution on
    /// termination without timeout.
    pub best: PlanEntry,
    /// Number of `FindParetoPlans` iterations executed.
    pub iterations: u32,
    /// Precision `α` of the last iteration.
    pub alpha_last: f64,
    /// Considered plans summed over all iterations.
    pub total_considered: u64,
}

/// Runs the IRA on one query block.
///
/// # Panics
///
/// Panics if `alpha_u < 1` or the preference has no objectives.
#[must_use]
pub fn ira(
    model: &CostModel<'_>,
    preference: &Preference,
    alpha_u: f64,
    deadline: &Deadline,
) -> IraResult {
    assert!(alpha_u >= 1.0, "the user precision must satisfy α_U ≥ 1");
    let l = preference.objectives.len();
    assert!(l >= 1, "preference must select at least one objective");
    let n = model.graph.n_rels();

    let mut total_considered = 0u64;
    let mut iteration = 0u32;
    loop {
        iteration += 1;
        let mut alpha = ira_precision_schedule(alpha_u, l, iteration);
        let exact_round = alpha < ALPHA_EXACT_THRESHOLD || iteration >= MAX_ITERATIONS;
        if exact_round {
            alpha = 1.0;
        }
        let alpha_internal = rta_internal_precision(alpha, n);
        let result = run(
            model,
            preference.objectives,
            preference,
            alpha_internal,
            deadline,
        );
        total_considered += result.stats.considered_plans;
        let best = select_best(&result.final_plans, preference)
            .expect("FindParetoPlans returns at least one plan");

        let timed_out = result.stats.timed_out;
        let certified = exact_round
            || stopping_condition_holds(&result.final_plans, preference, alpha, alpha_u, &best);
        if certified || timed_out {
            return IraResult {
                result,
                best,
                iterations: iteration,
                alpha_last: alpha,
                total_considered,
            };
        }
    }
}

/// Algorithm 3's termination test: there must be **no** plan `p` in the set
/// with `c(p) ⪯ α·B` and `C_W(c(p))/α < C_W(c(popt))/α_U`. Such a plan
/// would witness that a feasible plan with substantially lower weighted
/// cost might exist just beyond the current approximation precision.
///
/// When `popt` itself violates the bounds (the set contains no feasible plan
/// yet), its weighted cost is taken as `+∞`: the loop must keep refining as
/// long as *any* plan respects the relaxed bounds, because a feasible plan
/// `p*` would be shadowed by a relaxed-feasible representative (Theorem 6's
/// argument). Only when not even the relaxed bounds are attainable can no
/// feasible plan exist at all, and the weighted fallback of `SelectBest` is
/// the correct answer (Definition 2).
fn stopping_condition_holds(
    plans: &[PlanEntry],
    preference: &Preference,
    alpha: f64,
    alpha_u: f64,
    best: &PlanEntry,
) -> bool {
    let best_weighted = if preference.respects_bounds(&best.cost) {
        preference.weighted_cost(&best.cost)
    } else {
        f64::INFINITY
    };
    !plans.iter().any(|p| {
        preference
            .bounds
            .relaxed_respected_by(&p.cost, alpha, preference.objectives)
            && preference.weighted_cost(&p.cost) / alpha < best_weighted / alpha_u
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exa_rta::exa;
    use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
    use moqo_cost::{Objective, ObjectiveSet};
    use moqo_costmodel::CostModelParams;

    fn setup() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("orders", 30_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 30_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 120_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 30_000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat)
            .rel("orders", 1.0)
            .rel("lineitem", 0.5)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (params, cat, graph)
    }

    #[test]
    fn schedule_is_strictly_decreasing_towards_one() {
        let alpha_u = 2.0;
        let mut prev = f64::INFINITY;
        for i in 1..=50 {
            let a = ira_precision_schedule(alpha_u, 9, i);
            assert!(a < prev, "schedule must strictly decrease");
            assert!(a > 1.0);
            assert!(a <= alpha_u);
            prev = a;
        }
        // Converges towards 1.
        assert!(ira_precision_schedule(alpha_u, 9, 500) < 1.001);
    }

    #[test]
    fn schedule_first_iteration_is_near_alpha_u() {
        // 2^(−1/24) ≈ 0.9715 for l = 9 — the first iteration is coarse.
        let a1 = ira_precision_schedule(2.0, 9, 1);
        assert!(a1 > 1.9 && a1 < 2.0, "got {a1}");
    }

    #[test]
    fn single_objective_schedule_degenerates_gracefully() {
        let a1 = ira_precision_schedule(2.0, 1, 1);
        assert!((1.0..=2.0).contains(&a1));
    }

    #[test]
    fn ira_respects_feasible_bounds() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        // Find the exact time optimum among loss-free plans, so the bound
        // pair (time ≤ 1.5×min, loss ≤ 0) is guaranteed feasible. (The
        // unconstrained time optimum samples, which would make the bounds
        // jointly infeasible.)
        let probe_pref = Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::TupleLoss,
        ]))
        .weight(Objective::TotalTime, 1.0);
        let exact = exa(&model, &probe_pref, &Deadline::unlimited());
        let min_time = exact
            .final_plans
            .iter()
            .filter(|e| e.cost.get(Objective::TupleLoss) == 0.0)
            .map(|e| e.cost.get(Objective::TotalTime))
            .fold(f64::INFINITY, f64::min);
        assert!(min_time.is_finite());

        let preference = Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
            Objective::TupleLoss,
        ]))
        .weight(Objective::BufferFootprint, 1.0)
        .weight(Objective::TupleLoss, 1e7)
        .bound(Objective::TotalTime, min_time * 1.5)
        .bound(Objective::TupleLoss, 0.0);

        let out = ira(&model, &preference, 1.5, &Deadline::unlimited());
        assert!(
            preference.respects_bounds(&out.best.cost),
            "a feasible plan exists, so the IRA must return one"
        );
        assert!(out.iterations >= 1);
        assert!(out.alpha_last >= 1.0);
    }

    #[test]
    fn ira_matches_exa_quality_within_alpha() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let preference = Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
            Objective::TupleLoss,
        ]))
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::TupleLoss, 1e6)
        .bound(Objective::TupleLoss, 0.0);

        let exact = exa(&model, &preference, &Deadline::unlimited());
        let opt = select_best(&exact.final_plans, &preference).unwrap();
        assert!(preference.respects_bounds(&opt.cost));

        for alpha_u in [1.15, 1.5, 2.0] {
            let out = ira(&model, &preference, alpha_u, &Deadline::unlimited());
            assert!(
                preference.respects_bounds(&out.best.cost),
                "α_U = {alpha_u}"
            );
            let rho =
                preference.weighted_cost(&out.best.cost) / preference.weighted_cost(&opt.cost);
            assert!(
                rho <= alpha_u + 1e-9,
                "α_U = {alpha_u}: relative cost {rho} exceeds guarantee"
            );
        }
    }

    #[test]
    fn ira_with_infeasible_bounds_returns_weighted_best() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let preference = Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
        ]))
        .weight(Objective::TotalTime, 1.0)
        .bound(Objective::BufferFootprint, 0.001); // unattainable

        let out = ira(&model, &preference, 1.5, &Deadline::unlimited());
        // No plan can respect the bound; result minimizes weighted cost.
        assert!(!preference.respects_bounds(&out.best.cost));
        let exact = exa(&model, &preference, &Deadline::unlimited());
        let opt = select_best(&exact.final_plans, &preference).unwrap();
        let rho = preference.weighted_cost(&out.best.cost) / preference.weighted_cost(&opt.cost);
        assert!(rho <= 1.5 + 1e-9, "got {rho}");
    }

    #[test]
    fn ira_terminates_under_timeout() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let preference = Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::TupleLoss,
        ]))
        .weight(Objective::TotalTime, 1.0)
        .bound(Objective::TupleLoss, 0.5);
        let deadline = Deadline::new(Some(std::time::Duration::ZERO));
        let out = ira(&model, &preference, 1.2, &deadline);
        assert!(out.result.stats.timed_out);
        assert!(out.iterations >= 1);
    }
}
