//! `FindParetoPlans`: the shared bottom-up dynamic programming of
//! Algorithms 1 and 2.
//!
//! The enumeration follows the paper's pseudo-code, generating bushy plans:
//!
//! 1. plans for singleton table sets from all applicable scan operators,
//! 2. for table sets of increasing cardinality, all splits into two
//!    non-empty disjoint subsets, all join-operator configurations, and all
//!    combinations of stored sub-plans — each candidate goes through
//!    `Prune` (see [`crate::pareto`]).
//!
//! Two Postgres heuristics the paper deliberately kept (§4) are honoured:
//! Cartesian products are considered only for table sets that admit no
//! connected split, and (at the [`crate::Optimizer`] level) query blocks are
//! optimized separately.
//!
//! Plans are additionally grouped by output [`SortOrder`] — the slice of
//! Postgres path keys relevant here — and pruning happens within a group:
//! a sorted plan may be arbitrarily worse on every cost objective and still
//! be the key to a cheaper sort-merge join above, so comparing across orders
//! would break the principle of optimality. The ablation flag
//! [`DpConfig::group_by_order`] disables this for measurement.
//!
//! On deadline expiry the enumeration "finishes quickly by only generating
//! one plan for all table sets that have not been treated so far" (§5.1):
//! remaining sets get a single plan assembled greedily from the
//! best-weighted stored sub-plans.

use std::collections::{BTreeMap, HashMap};

use moqo_catalog::RelMask;
use moqo_cost::{ObjectiveSet, Weights};
use moqo_costmodel::{CostModel, JoinKey};
use moqo_plan::{JoinOp, PlanArena, PlanNode, ScanOp, SortOrder};

use crate::budget::Deadline;
use crate::pareto::{PlanSet, PruneMode, PruneStrategy};

pub use crate::pareto::PlanEntry;

/// Configuration of one `FindParetoPlans` run.
#[derive(Debug, Clone, Copy)]
pub struct DpConfig {
    /// Internal pruning precision `α_i` (1.0 = exact algorithm).
    pub alpha_internal: f64,
    /// Unsound ablation: approximate deletions (see [`PruneStrategy`]).
    pub approx_deletion: bool,
    /// Set to `false` to ablate order-aware plan grouping (plans of all
    /// output orders then compete in a single Pareto set).
    pub group_by_order: bool,
    /// Plan-tree shape to enumerate. The paper's Algorithm 1 is the
    /// left-deep original of Ganguly et al. "slightly extended to generate
    /// bushy plans in addition to left-deep plans" (§5); bushy is the
    /// default everywhere.
    pub tree_shape: TreeShape,
    /// Dominance relation plans are discarded under. The algorithm entry
    /// points select this via [`PruneMode::auto`]; calling
    /// `find_pareto_plans` directly with [`PruneMode::CostOnly`] while
    /// sampling scans are enabled and `TupleLoss` is unselected reproduces
    /// the unsound pruning the mode exists to fix.
    pub prune_mode: PruneMode,
}

/// Which join-tree shapes the dynamic programming enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeShape {
    /// All bushy trees (the paper's extended Algorithm 1).
    #[default]
    Bushy,
    /// Left-deep trees only: the inner (right) input of every join is a
    /// base relation (the original Ganguly et al. formulation).
    LeftDeep,
}

impl DpConfig {
    /// Exact enumeration (EXA) with cost-only pruning.
    #[must_use]
    pub fn exact() -> Self {
        DpConfig {
            alpha_internal: 1.0,
            approx_deletion: false,
            group_by_order: true,
            tree_shape: TreeShape::Bushy,
            prune_mode: PruneMode::CostOnly,
        }
    }

    /// Approximate enumeration with internal precision `alpha_internal`.
    #[must_use]
    pub fn approximate(alpha_internal: f64) -> Self {
        DpConfig {
            alpha_internal,
            ..DpConfig::exact()
        }
    }

    /// Replaces the pruning mode (builder style).
    #[must_use]
    pub fn with_prune_mode(mut self, mode: PruneMode) -> Self {
        self.prune_mode = mode;
        self
    }
}

/// Counters and accounting collected during one run.
#[derive(Debug, Clone, Default)]
pub struct DpStats {
    /// Plans constructed and offered to `Prune` (the paper's "considered
    /// plans", which grow quadratically in the Pareto set sizes).
    pub considered_plans: u64,
    /// Plans currently stored across all table sets.
    pub stored_plans: usize,
    /// Peak of [`DpStats::stored_plans`], sampled whenever a table set
    /// completes (rather than after every insertion): the stored sets at a
    /// completion boundary are determined by the candidate *set*, not the
    /// candidate *order*, so the peak is comparable across enumeration-order
    /// changes. Transient within-set spikes are deliberately not counted.
    pub peak_stored_plans: usize,
    /// Deterministic memory model: peak stored plans × bytes per stored
    /// plan (plan node + cost vector + entry bookkeeping), in bytes.
    pub peak_memory_bytes: usize,
    /// Number of stored plans for the last table set that was treated
    /// completely (the paper's "#Pareto plans" metric, Figures 5 and 9).
    pub pareto_last_complete: usize,
    /// Maximum plan-set size over all (table set, order) groups.
    pub max_group_size: usize,
    /// Frontier probes resolved by the grid-bucket fast path (a verified
    /// occupant of the candidate's own α^(1/k)-cell rejected it without a
    /// scan), summed over every plan set of the run.
    pub frontier_grid_hits: u64,
    /// Frontier probes that fell through to a cutoff scan (plain sorted
    /// vector, or the indexed engine's filtered scans), summed over every
    /// plan set of the run. Together with
    /// [`DpStats::frontier_grid_hits`] this partitions all `would_reject`
    /// probes, so the hit ratio measures the index's effectiveness.
    pub frontier_scan_probes: u64,
    /// Whether the deadline expired and the quick-finish path ran.
    pub timed_out: bool,
}

impl DpStats {
    /// Bytes accounted per stored plan: the O(1)-space representation of
    /// Theorem 1 (plan node + cost vector + props + id).
    #[must_use]
    pub fn bytes_per_stored_plan() -> usize {
        PlanArena::bytes_per_node() + std::mem::size_of::<PlanEntry>()
    }

    fn on_stored_delta(&mut self, inserted: bool, deleted: usize) {
        if inserted {
            self.stored_plans += 1;
        }
        self.stored_plans -= deleted;
    }

    /// Samples the peak at a table-set completion boundary (see
    /// [`DpStats::peak_stored_plans`]).
    fn on_set_completed(&mut self) {
        if self.stored_plans > self.peak_stored_plans {
            self.peak_stored_plans = self.stored_plans;
            self.peak_memory_bytes = self.peak_stored_plans * Self::bytes_per_stored_plan();
        }
    }
}

/// Result of one `FindParetoPlans` run.
#[derive(Debug)]
pub struct DpResult {
    /// Arena owning every plan generated during the run.
    pub arena: PlanArena,
    /// The (approximate) Pareto plan set for the full table set, flattened
    /// over order groups.
    pub final_plans: Vec<PlanEntry>,
    /// Run statistics.
    pub stats: DpStats,
}

/// Per-table-set state: one [`PlanSet`] per output order.
///
/// The order index is a `BTreeMap` so entry iteration (and with it the
/// candidate stream of every superset, the flattened final front, and the
/// stored sets under *approximate* pruning, which are insertion-order
/// dependent) is deterministic; a `HashMap`'s per-instance seed made
/// α > 1 runs irreproducible. Groups per table set are few, so the tree
/// lookup is not measurable against the prune scans.
#[derive(Debug, Default)]
struct OrderGroups {
    groups: BTreeMap<SortOrder, PlanSet>,
    completed: bool,
}

impl OrderGroups {
    fn total_plans(&self) -> usize {
        self.groups.values().map(PlanSet::len).sum()
    }

    fn iter_entries(&self) -> impl Iterator<Item = &PlanEntry> {
        self.groups.values().flat_map(PlanSet::iter)
    }

    /// Sums the probe-outcome counters of every group's plan set.
    fn probes(&self) -> crate::pareto::FrontierProbes {
        let mut sum = crate::pareto::FrontierProbes::default();
        for set in self.groups.values() {
            let p = set.probes();
            sum.grid_hits += p.grid_hits;
            sum.scan_probes += p.scan_probes;
        }
        sum
    }

    fn best_weighted(&self, weights: &Weights) -> Option<PlanEntry> {
        self.iter_entries()
            .min_by(|a, b| {
                weights
                    .weighted_cost(&a.cost)
                    .partial_cmp(&weights.weighted_cost(&b.cost))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
    }
}

/// Computes the (approximate) Pareto plan set for the model's query block.
///
/// * `objectives` — the selected objective subset (dominance dimensions).
/// * `config` — pruning precision and ablation switches.
/// * `weights` — used only by the quick-finish path after a timeout, to pick
///   the single surviving plan per remaining table set.
/// * `deadline` — wall-clock budget; see module docs for expiry semantics.
///
/// # Panics
///
/// Panics if the query block is empty or has more than 24 relations.
#[must_use]
pub fn find_pareto_plans(
    model: &CostModel<'_>,
    objectives: ObjectiveSet,
    config: &DpConfig,
    weights: &Weights,
    deadline: &Deadline,
) -> DpResult {
    let n = model.graph.n_rels();
    assert!(n >= 1, "query block must contain at least one relation");
    assert!(n <= 24, "query blocks beyond 24 relations are unsupported");

    let strategy = PruneStrategy {
        alpha_internal: config.alpha_internal,
        approx_deletion: config.approx_deletion,
        mode: config.prune_mode,
    };
    let full_mask: RelMask = model.graph.full_mask();
    let mut arena = PlanArena::new();
    let mut stats = DpStats::default();
    // Dense DP table indexed by mask; entry 0 unused.
    let mut table: Vec<OrderGroups> = Vec::with_capacity(1 << n);
    for _ in 0..(1usize << n) {
        table.push(OrderGroups::default());
    }

    let keys = JoinKeys::new(model);

    // Phase 1: access paths for single tables.
    for rel in 0..n {
        let mask = 1u32 << rel;
        let target = &mut table[mask as usize];
        for op in scan_configurations(model, rel) {
            if let Some((cost, props)) = model.scan_cost(rel, op) {
                stats.considered_plans += 1;
                offer_entry(
                    target,
                    cost,
                    props,
                    |a| a.scan(rel, op),
                    &mut arena,
                    &strategy,
                    objectives,
                    config.group_by_order,
                    &mut stats,
                );
            }
        }
        target.completed = true;
        stats.pareto_last_complete = target.total_plans();
        stats.on_set_completed();
    }

    // Phase 2: table sets of increasing cardinality.
    'outer: for mask in masks_by_cardinality(n) {
        if deadline.expired() {
            stats.timed_out = true;
            break 'outer;
        }
        let splits = enumerate_splits(model, mask, config.tree_shape);
        // Split the borrow: take the target group out of the table, so both
        // sub-plan sides are read in place — no per-split clones of the two
        // entry sets. `mask` is a strict superset of every split side, so
        // the taken slot is never read below.
        let mut target = std::mem::take(&mut table[mask as usize]);
        'mask: for (m1, m2) in splits {
            let key = keys.join_key(m1, m2);
            for left in table[m1 as usize].iter_entries() {
                for right in table[m2 as usize].iter_entries() {
                    if deadline.expired() {
                        stats.timed_out = true;
                        break 'mask;
                    }
                    let right_canonical = is_canonical_index_scan(&arena, right, key.as_ref());
                    for op in JoinOp::all_configurations() {
                        let combined = model.join_cost(
                            op,
                            (&left.cost, &left.props),
                            (&right.cost, &right.props),
                            key.as_ref(),
                            right_canonical,
                        );
                        let Some((cost, props)) = combined else {
                            continue;
                        };
                        stats.considered_plans += 1;
                        offer_entry(
                            &mut target,
                            cost,
                            props,
                            |a| a.join(op, left.plan, right.plan),
                            &mut arena,
                            &strategy,
                            objectives,
                            config.group_by_order,
                            &mut stats,
                        );
                    }
                }
            }
        }
        target.completed = !stats.timed_out;
        let total = target.total_plans();
        table[mask as usize] = target;
        // A timed-out set is still sampled: its partial plans are resident
        // and the quick-finish pass builds on top of them.
        stats.on_set_completed();
        if stats.timed_out {
            break 'outer;
        }
        stats.pareto_last_complete = total;
    }

    if stats.timed_out {
        quick_finish(
            model,
            &mut table,
            &mut arena,
            weights,
            objectives,
            config.prune_mode,
            &mut stats,
        );
    }

    // Roll the per-set probe counters up into the run stats — including
    // timed-out and quick-finish sets, whose probes are real work too.
    for group in &table {
        let probes = group.probes();
        stats.frontier_grid_hits += probes.grid_hits;
        stats.frontier_scan_probes += probes.scan_probes;
    }

    let final_plans: Vec<PlanEntry> = table[full_mask as usize].iter_entries().copied().collect();
    debug_assert!(
        !final_plans.is_empty(),
        "the DP must produce at least one plan for the full table set"
    );
    DpResult {
        arena,
        final_plans,
        stats,
    }
}

/// Scan operator configurations for one relation: sequential scan, index
/// scans on every indexed column, and the five sampling rates — streamed,
/// so per-relation callers (the DP's phase 1, random tree construction)
/// allocate nothing.
pub(crate) fn scan_configurations<'m>(
    model: &'m CostModel<'_>,
    rel: usize,
) -> impl Iterator<Item = ScanOp> + 'm {
    let table = model.catalog.table(model.graph.rels[rel].table);
    let sampling = model.params.enable_sampling;
    std::iter::once(ScanOp::SeqScan)
        .chain(
            table
                .columns
                .iter()
                .enumerate()
                .filter(|(_, col)| col.indexed)
                .map(|(ordinal, _)| ScanOp::IndexScan {
                    column: ordinal as u16,
                }),
        )
        .chain(
            sampling
                .then_some(moqo_plan::SAMPLING_RATES_PCT)
                .into_iter()
                .flatten()
                .map(|rate_pct| ScanOp::SamplingScan { rate_pct }),
        )
}

/// Per-relation scan configurations materialized once per run — the random
/// search re-draws scan operators for every sampled tree and every mutation,
/// so it indexes into this table instead of re-deriving (or re-allocating)
/// the option list per draw.
pub(crate) struct ScanOptions {
    per_rel: Vec<Vec<ScanOp>>,
}

impl ScanOptions {
    pub(crate) fn new(model: &CostModel<'_>) -> Self {
        ScanOptions {
            per_rel: (0..model.graph.n_rels())
                .map(|rel| scan_configurations(model, rel).collect())
                .collect(),
        }
    }

    /// The scan operators applicable to `rel`, in the canonical
    /// [`scan_configurations`] order.
    pub(crate) fn for_rel(&self, rel: usize) -> &[ScanOp] {
        &self.per_rel[rel]
    }
}

/// All masks with 2..=n bits, in increasing cardinality and ascending
/// numeric order within each cardinality — the exact order the eager table
/// produced (stable sort over an ascending range), but streamed: the eager
/// variant materialized and sorted all `2^n` masks (16M entries at n = 24)
/// and was built twice on every timed-out run.
pub(crate) fn masks_by_cardinality(n: usize) -> impl Iterator<Item = RelMask> {
    let n = u32::try_from(n).expect("query blocks are capped at 24 relations");
    (2..=n).flat_map(move |k| GosperMasks::new(n, k))
}

/// Iterator over all `n`-bit masks with exactly `k` bits set, ascending
/// (Gosper's hack: each step computes the next-larger integer with the same
/// population count).
struct GosperMasks {
    next: Option<u32>,
    /// Exclusive upper bound `1 << n`.
    limit: u32,
}

impl GosperMasks {
    fn new(n: u32, k: u32) -> Self {
        debug_assert!(k >= 1 && k <= n && n < 32);
        GosperMasks {
            next: Some((1u32 << k) - 1),
            limit: 1u32 << n,
        }
    }
}

impl Iterator for GosperMasks {
    type Item = RelMask;

    fn next(&mut self) -> Option<RelMask> {
        let cur = self.next.take()?;
        let c = cur & cur.wrapping_neg();
        let r = cur.wrapping_add(c);
        let succ = (((r ^ cur) >> 2) / c) | r;
        if succ < self.limit {
            self.next = Some(succ);
        }
        Some(cur)
    }
}

/// Precomputed join-key lookup: one entry per join-graph edge, with the
/// endpoint bit masks and both normalized key orientations (including the
/// inner-index catalog probe) resolved once per run, plus a per-relation
/// incidence index. The per-call [`join_key`] re-derived all of that for
/// every split of every mask; the first rework made the crossing test two
/// AND ops per edge but still scanned *all* edges per probe — on dense
/// graphs (cliques: O(n²) edges) the probe now walks only the edges
/// incident to the outer side's relations.
pub(crate) struct JoinKeys {
    edges: Vec<EdgeKeys>,
    /// For each relation, ascending indices into `edges` of the edges
    /// incident to it.
    by_rel: Vec<Vec<u32>>,
}

struct EdgeKeys {
    left_mask: RelMask,
    right_mask: RelMask,
    /// Key orientation when the edge's left endpoint is on the outer side.
    forward: JoinKey,
    /// Key orientation when the edge's right endpoint is on the outer side.
    reverse: JoinKey,
}

impl JoinKeys {
    pub(crate) fn new(model: &CostModel<'_>) -> Self {
        let indexed = |rel: usize, col: u16| {
            model
                .catalog
                .table(model.graph.rels[rel].table)
                .column(col)
                .indexed
        };
        let edges: Vec<EdgeKeys> = model
            .graph
            .edges
            .iter()
            .map(|e| EdgeKeys {
                left_mask: 1u32 << e.left_rel,
                right_mask: 1u32 << e.right_rel,
                forward: JoinKey {
                    left_rel: e.left_rel,
                    left_col: e.left_col,
                    right_rel: e.right_rel,
                    right_col: e.right_col,
                    inner_indexed: indexed(e.right_rel, e.right_col),
                },
                reverse: JoinKey {
                    left_rel: e.right_rel,
                    left_col: e.right_col,
                    right_rel: e.left_rel,
                    right_col: e.left_col,
                    inner_indexed: indexed(e.left_rel, e.left_col),
                },
            })
            .collect();
        let mut by_rel = vec![Vec::new(); model.graph.n_rels()];
        for (i, e) in model.graph.edges.iter().enumerate() {
            let i = u32::try_from(i).expect("edge count fits in u32");
            by_rel[e.left_rel].push(i);
            by_rel[e.right_rel].push(i);
        }
        JoinKeys { edges, by_rel }
    }

    /// The equi-join predicate for a split: the lowest-index edge crossing
    /// the two sides (identical to the seed's "first edge in declaration
    /// order"), normalized so the left fields refer to the `m1` (outer)
    /// side. Probes only the edges incident to `m1`'s relations via the
    /// per-relation index instead of scanning the whole edge list.
    pub(crate) fn join_key(&self, m1: RelMask, m2: RelMask) -> Option<JoinKey> {
        let mut best: Option<u32> = None;
        let mut rels = m1;
        while rels != 0 {
            let rel = rels.trailing_zeros() as usize;
            rels &= rels - 1;
            for &ei in &self.by_rel[rel] {
                if best.is_some_and(|b| ei >= b) {
                    // Incidence lists are ascending: nothing later on this
                    // relation can beat the incumbent.
                    break;
                }
                let e = &self.edges[ei as usize];
                // `rel ∈ m1` by construction; the edge crosses iff its
                // other endpoint lies in `m2`.
                let crosses = (e.left_mask & (1u32 << rel) != 0 && e.right_mask & m2 != 0)
                    || (e.right_mask & (1u32 << rel) != 0 && e.left_mask & m2 != 0);
                if crosses {
                    best = Some(ei);
                    break;
                }
            }
        }
        best.map(|ei| {
            let e = &self.edges[ei as usize];
            if e.left_mask & m1 != 0 {
                e.forward
            } else {
                e.reverse
            }
        })
    }
}

/// Ordered splits of `mask` into two non-empty disjoint subsets, honouring
/// the Cartesian-product heuristic: if any split is connected by a join
/// edge, unconnected splits are dropped. Left-deep enumeration restricts
/// the inner (right) side to singletons. Streamed — the eager version
/// allocated two `Vec`s per mask in the DP's hottest outer loop. The
/// connected-splits-exist decision is made up front from a single edge
/// scan: `mask` admits a connected split iff some edge lies entirely
/// within it (either endpoint's singleton split is then connected, and for
/// left-deep shape the `(mask∖{v}, {v})` split qualifies), so the
/// heuristic never needs the full split list materialized.
fn enumerate_splits<'g>(
    model: &'g CostModel<'_>,
    mask: RelMask,
    shape: TreeShape,
) -> SplitIter<'g> {
    debug_assert!(mask.count_ones() >= 2, "splits need at least two relations");
    let connected_only = model.graph.edges.iter().any(|e| e.within(mask));
    SplitIter {
        graph: model.graph,
        mask,
        next_m1: (mask - 1) & mask,
        shape,
        connected_only,
    }
}

/// Streaming sub-mask enumeration behind [`enumerate_splits`]; yields the
/// exact sequence the eager version produced (descending `m1`, filtered).
struct SplitIter<'g> {
    graph: &'g moqo_catalog::JoinGraph,
    mask: RelMask,
    next_m1: RelMask,
    shape: TreeShape,
    connected_only: bool,
}

impl Iterator for SplitIter<'_> {
    type Item = (RelMask, RelMask);

    fn next(&mut self) -> Option<(RelMask, RelMask)> {
        while self.next_m1 != 0 {
            let m1 = self.next_m1;
            self.next_m1 = (m1 - 1) & self.mask;
            let m2 = self.mask ^ m1;
            if self.shape == TreeShape::LeftDeep && m2.count_ones() != 1 {
                continue;
            }
            if self.connected_only && !self.graph.connects(m1, m2) {
                continue;
            }
            return Some((m1, m2));
        }
        None
    }
}

/// Whether `entry` is exactly the canonical index-scan plan on the join
/// key's inner column (precondition of index-nested-loop joins).
fn is_canonical_index_scan(arena: &PlanArena, entry: &PlanEntry, key: Option<&JoinKey>) -> bool {
    let Some(key) = key else { return false };
    if entry.props.rels.count_ones() != 1 {
        return false;
    }
    matches!(
        arena.node(entry.plan),
        PlanNode::Scan {
            rel,
            op: ScanOp::IndexScan { column },
        } if rel == key.right_rel && column == key.right_col
    )
}

/// Offers a costed candidate to the right order group, building its arena
/// node only when it survives the rejection probe. The vast majority of
/// considered plans are dominated on arrival, so probing before allocating
/// keeps arena growth bounded by *accepted* plans rather than the full
/// candidate stream (the caller has already counted the candidate in
/// `considered_plans`; rejected candidates never touched the stored set, so
/// every statistic is unchanged against the allocate-then-prune loop).
#[allow(clippy::too_many_arguments)]
fn offer_entry(
    groups: &mut OrderGroups,
    cost: moqo_cost::CostVector,
    props: moqo_plan::PlanProps,
    build_plan: impl FnOnce(&mut PlanArena) -> moqo_plan::PlanId,
    arena: &mut PlanArena,
    strategy: &PruneStrategy,
    objectives: ObjectiveSet,
    group_by_order: bool,
    stats: &mut DpStats,
) {
    let order_key = if group_by_order {
        props.order
    } else {
        SortOrder::None
    };
    let set = groups.groups.entry(order_key).or_default();
    if set.would_reject(&cost, &props, strategy, objectives) {
        return;
    }
    let plan = build_plan(arena);
    let deleted = set.insert_unrejected(PlanEntry { cost, props, plan }, strategy, objectives);
    stats.on_stored_delta(true, deleted);
    if set.len() > stats.max_group_size {
        stats.max_group_size = set.len();
    }
}

/// Inserts a pre-built entry into the right order group, maintaining
/// statistics (quick-finish path: the plan node already exists because only
/// the weighted-best candidate per table set is ever materialized).
fn insert_entry(
    groups: &mut OrderGroups,
    entry: PlanEntry,
    strategy: &PruneStrategy,
    objectives: ObjectiveSet,
    group_by_order: bool,
    stats: &mut DpStats,
) {
    let order_key = if group_by_order {
        entry.props.order
    } else {
        SortOrder::None
    };
    let set = groups.groups.entry(order_key).or_default();
    let before = set.len();
    let inserted = set.prune_insert(entry, strategy, objectives);
    let after = set.len();
    if inserted {
        // after = before + 1 − deleted.
        let deleted = before + 1 - after;
        stats.on_stored_delta(true, deleted);
        if after > stats.max_group_size {
            stats.max_group_size = after;
        }
    }
}

/// §5.1 timeout semantics: give every untreated table set exactly one plan,
/// assembled from the best-weighted stored sub-plans.
fn quick_finish(
    model: &CostModel<'_>,
    table: &mut [OrderGroups],
    arena: &mut PlanArena,
    weights: &Weights,
    objectives: ObjectiveSet,
    prune_mode: PruneMode,
    stats: &mut DpStats,
) {
    let n = model.graph.n_rels();
    let keys = JoinKeys::new(model);
    // A table set's best-weighted entry requires a full scan over all of its
    // order groups, and the old loop recomputed it for both sides of every
    // split. Sets probed here are always in their final state (the quick
    // pass walks masks in cardinality order, completing each before any
    // superset probes it), so one memoized scan per mask suffices.
    let mut best_cache: HashMap<RelMask, Option<PlanEntry>> = HashMap::new();
    for mask in masks_by_cardinality(n) {
        if table[mask as usize].completed {
            continue;
        }
        let splits = enumerate_splits(model, mask, TreeShape::Bushy);
        let mut best: Option<PlanEntry> = None;
        for (m1, m2) in splits {
            let mut cached_best = |m: RelMask| {
                *best_cache
                    .entry(m)
                    .or_insert_with(|| table[m as usize].best_weighted(weights))
            };
            let (Some(left), Some(right)) = (cached_best(m1), cached_best(m2)) else {
                continue;
            };
            let key = keys.join_key(m1, m2);
            let right_canonical = is_canonical_index_scan(arena, &right, key.as_ref());
            for op in JoinOp::all_configurations() {
                let Some((cost, props)) = model.join_cost(
                    op,
                    (&left.cost, &left.props),
                    (&right.cost, &right.props),
                    key.as_ref(),
                    right_canonical,
                ) else {
                    continue;
                };
                let better = best
                    .as_ref()
                    .is_none_or(|b| weights.weighted_cost(&cost) < weights.weighted_cost(&b.cost));
                if better {
                    let plan = arena.join(op, left.plan, right.plan);
                    best = Some(PlanEntry { cost, props, plan });
                }
            }
            // One split suffices for the quick path once a plan exists.
            if best.is_some() {
                break;
            }
        }
        let entry = best.expect("every table set admits at least a nested-loop plan");
        let groups = &mut table[mask as usize];
        insert_entry(
            groups,
            entry,
            &PruneStrategy::exact().with_mode(prune_mode),
            objectives,
            true,
            stats,
        );
        groups.completed = true;
        stats.on_set_completed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
    use moqo_cost::Objective;
    use moqo_costmodel::CostModelParams;
    use std::time::Duration;

    fn setup3() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("customer", 15_000.0, 179.0)
                .with_column(ColumnStats::new("c_custkey", 15_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("orders", 150_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 150_000.0).indexed())
                .with_column(ColumnStats::new("o_custkey", 15_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 600_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 150_000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat)
            .rel("customer", 0.2)
            .rel("orders", 0.5)
            .rel("lineitem", 0.6)
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (params, cat, graph)
    }

    fn objs2() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
    }

    #[test]
    fn exact_dp_produces_plans_for_full_set() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let result = find_pareto_plans(
            &model,
            objs2(),
            &DpConfig::exact(),
            &Weights::single(Objective::TotalTime),
            &Deadline::unlimited(),
        );
        assert!(!result.final_plans.is_empty());
        assert!(!result.stats.timed_out);
        assert!(result.stats.considered_plans > 0);
        for entry in &result.final_plans {
            assert_eq!(entry.props.rels, g.full_mask());
            assert_eq!(result.arena.leaf_count(entry.plan), 3);
        }
    }

    #[test]
    fn approximate_dp_stores_fewer_plans() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let w = Weights::single(Objective::TotalTime);
        let exact = find_pareto_plans(
            &model,
            objs2(),
            &DpConfig::exact(),
            &w,
            &Deadline::unlimited(),
        );
        let approx = find_pareto_plans(
            &model,
            objs2(),
            &DpConfig::approximate(2.0f64.powf(1.0 / 3.0)),
            &w,
            &Deadline::unlimited(),
        );
        assert!(approx.stats.peak_stored_plans <= exact.stats.peak_stored_plans);
        assert!(approx.stats.considered_plans <= exact.stats.considered_plans);
        assert!(!approx.final_plans.is_empty());
    }

    #[test]
    fn single_objective_keeps_one_plan_per_group() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let objs = ObjectiveSet::single(Objective::TotalTime);
        let result = find_pareto_plans(
            &model,
            objs,
            &DpConfig::exact(),
            &Weights::single(Objective::TotalTime),
            &Deadline::unlimited(),
        );
        // Per (set, order) group at most one plan survives with one objective.
        assert!(result.stats.max_group_size == 1);
    }

    #[test]
    fn timeout_still_yields_full_plan() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let result = find_pareto_plans(
            &model,
            ObjectiveSet::all(),
            &DpConfig::exact(),
            &Weights::single(Objective::TotalTime),
            &Deadline::new(Some(Duration::ZERO)),
        );
        assert!(result.stats.timed_out);
        assert!(!result.final_plans.is_empty());
        for entry in &result.final_plans {
            assert_eq!(entry.props.rels, g.full_mask());
        }
    }

    #[test]
    fn cartesian_only_without_edges() {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(TableStats::new("a", 100.0, 50.0).with_column(ColumnStats::new("id", 100.0)));
        cat.add_table(TableStats::new("b", 200.0, 50.0).with_column(ColumnStats::new("id", 200.0)));
        let graph = JoinGraphBuilder::new(&cat)
            .rel("a", 1.0)
            .rel("b", 1.0)
            .build();
        let model = CostModel::new(&params, &cat, &graph);
        let result = find_pareto_plans(
            &model,
            objs2(),
            &DpConfig::exact(),
            &Weights::single(Objective::TotalTime),
            &Deadline::unlimited(),
        );
        // All full-set plans must be nested-loop joins (the only Cartesian op).
        for entry in &result.final_plans {
            let joins = result.arena.join_ops(entry.plan);
            assert!(joins.iter().all(|op| matches!(op, JoinOp::NestedLoop)));
        }
    }

    #[test]
    fn pareto_metric_tracks_last_completed_set() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let result = find_pareto_plans(
            &model,
            objs2(),
            &DpConfig::exact(),
            &Weights::single(Objective::TotalTime),
            &Deadline::unlimited(),
        );
        assert_eq!(
            result.stats.pareto_last_complete,
            result.final_plans.len(),
            "last completed set is the full set on an untimed run"
        );
    }

    #[test]
    fn memory_accounting_is_consistent() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let result = find_pareto_plans(
            &model,
            objs2(),
            &DpConfig::exact(),
            &Weights::single(Objective::TotalTime),
            &Deadline::unlimited(),
        );
        assert!(result.stats.peak_stored_plans >= result.stats.stored_plans);
        assert_eq!(
            result.stats.peak_memory_bytes,
            result.stats.peak_stored_plans * DpStats::bytes_per_stored_plan()
        );
    }

    #[test]
    fn gosper_matches_eager_enumeration() {
        for n in 1..=12usize {
            let mut eager: Vec<RelMask> =
                (1..(1u32 << n)).filter(|m| m.count_ones() >= 2).collect();
            eager.sort_by_key(|m| m.count_ones());
            let streamed: Vec<RelMask> = masks_by_cardinality(n).collect();
            assert_eq!(streamed, eager, "n = {n}: order must match the seed");
        }
    }

    #[test]
    fn join_keys_agree_with_linear_scan() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let keys = JoinKeys::new(&model);
        // The seed implementation: first edge crossing the split, normalized
        // so the left fields refer to the outer side, index flag from the
        // catalog.
        let reference = |m1: RelMask, m2: RelMask| -> Option<JoinKey> {
            let edge = model.graph.edges.iter().find(|e| e.crosses(m1, m2))?;
            let left_in_m1 = m1 & (1u32 << edge.left_rel) != 0;
            let (left_rel, left_col, right_rel, right_col) = if left_in_m1 {
                (edge.left_rel, edge.left_col, edge.right_rel, edge.right_col)
            } else {
                (edge.right_rel, edge.right_col, edge.left_rel, edge.left_col)
            };
            let inner_indexed = model
                .catalog
                .table(model.graph.rels[right_rel].table)
                .column(right_col)
                .indexed;
            Some(JoinKey {
                left_rel,
                left_col,
                right_rel,
                right_col,
                inner_indexed,
            })
        };
        let n = g.n_rels();
        for mask in 1..(1u32 << n) {
            let mut m1 = (mask - 1) & mask;
            while m1 != 0 {
                let m2 = mask ^ m1;
                assert_eq!(
                    keys.join_key(m1, m2),
                    reference(m1, m2),
                    "split {m1:b} | {m2:b}"
                );
                m1 = (m1 - 1) & mask;
            }
        }
        // Disjoint non-adjacent sides: no key either way.
        assert_eq!(keys.join_key(0b001, 0b100), reference(0b001, 0b100));
    }

    #[test]
    fn splits_enumeration_is_exhaustive_and_ordered() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        // Mask {customer, orders} = 0b011: splits (01|10) and (10|01).
        let splits: Vec<_> = enumerate_splits(&model, 0b011, TreeShape::Bushy).collect();
        assert_eq!(splits.len(), 2);
        assert!(splits.contains(&(0b001, 0b010)));
        assert!(splits.contains(&(0b010, 0b001)));
        // Full mask: customer–lineitem is not an edge, so the connected
        // splits exclude ({customer},{lineitem}) pairs joined directly —
        // but 0b101 vs 0b010 IS connected via both edges.
        let full_splits: Vec<_> = enumerate_splits(&model, 0b111, TreeShape::Bushy).collect();
        assert!(full_splits.contains(&(0b101, 0b010)));
        assert_eq!(full_splits.len(), 6);
    }

    /// The streaming split iterator must reproduce the eager seed
    /// implementation — same splits, same order, same Cartesian fallback —
    /// on every mask of connected, partially connected and edge-free
    /// graphs, for both tree shapes.
    #[test]
    fn streaming_splits_match_eager_reference() {
        let eager = |model: &CostModel<'_>, mask: RelMask, shape: TreeShape| {
            let mut connected = Vec::new();
            let mut all = Vec::new();
            let mut m1 = (mask - 1) & mask;
            while m1 != 0 {
                let m2 = mask ^ m1;
                if shape == TreeShape::Bushy || m2.count_ones() == 1 {
                    all.push((m1, m2));
                    if model.graph.connects(m1, m2) {
                        connected.push((m1, m2));
                    }
                }
                m1 = (m1 - 1) & mask;
            }
            if connected.is_empty() {
                all
            } else {
                connected
            }
        };

        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        for name in ["a", "b", "c", "d"] {
            cat.add_table(
                TableStats::new(name, 1000.0, 50.0)
                    .with_column(ColumnStats::new("id", 1000.0).indexed()),
            );
        }
        // A path a–b–c plus an isolated d: masks containing d alone with
        // others exercise the Cartesian fallback.
        let graph = JoinGraphBuilder::new(&cat)
            .rel("a", 1.0)
            .rel("b", 1.0)
            .rel("c", 1.0)
            .rel("d", 1.0)
            .join(("a", "id"), ("b", "id"))
            .join(("b", "id"), ("c", "id"))
            .build();
        let model = CostModel::new(&params, &cat, &graph);
        for mask in 1u32..(1 << 4) {
            if mask.count_ones() < 2 {
                continue;
            }
            for shape in [TreeShape::Bushy, TreeShape::LeftDeep] {
                let streamed: Vec<_> = enumerate_splits(&model, mask, shape).collect();
                assert_eq!(
                    streamed,
                    eager(&model, mask, shape),
                    "mask {mask:b} shape {shape:?}"
                );
            }
        }
    }
}
