//! `SelectBest` (Algorithm 1, lines 36–41): choose the best plan from a
//! Pareto set under weights and bounds.

use moqo_cost::Preference;

use crate::pareto::PlanEntry;

/// Selects the best plan in `plans` for the given preference: among the
/// plans that respect the bounds the one with minimal weighted cost; if no
/// plan respects the bounds, the plan with minimal weighted cost overall
/// (Definition 2's fallback).
///
/// Returns `None` only for an empty input.
#[must_use]
pub fn select_best(plans: &[PlanEntry], preference: &Preference) -> Option<PlanEntry> {
    let weighted = |e: &PlanEntry| preference.weighted_cost(&e.cost);
    let min_by_weight = |iter: &mut dyn Iterator<Item = &PlanEntry>| -> Option<PlanEntry> {
        iter.min_by(|a, b| {
            weighted(a)
                .partial_cmp(&weighted(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .copied()
    };
    let mut respecting = plans.iter().filter(|e| preference.respects_bounds(&e.cost));
    if let Some(best) = min_by_weight(&mut respecting) {
        return Some(best);
    }
    min_by_weight(&mut plans.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::{CostVector, Objective, ObjectiveSet, Preference};
    use moqo_plan::{PlanId, PlanProps, SortOrder};

    fn entry(t: f64, b: f64, id: u32) -> PlanEntry {
        PlanEntry {
            cost: CostVector::from_pairs(&[
                (Objective::TotalTime, t),
                (Objective::BufferFootprint, b),
            ]),
            props: PlanProps {
                rels: 1,
                rows: 1.0,
                width: 1.0,
                order: SortOrder::None,
                sampling_factor: 1.0,
            },
            plan: PlanId(id),
        }
    }

    fn pref() -> Preference {
        Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
        ]))
        .weight(Objective::TotalTime, 1.5)
        .weight(Objective::BufferFootprint, 1.0)
    }

    #[test]
    fn picks_minimal_weighted_without_bounds() {
        // The running example: weighted optimum is (buffer 1.0, time 1.5).
        let plans: Vec<PlanEntry> = moqo_cost::running_example::PLAN_POINTS
            .iter()
            .enumerate()
            .map(|(i, &(b, t))| entry(t, b, i as u32))
            .collect();
        let best = select_best(&plans, &pref()).unwrap();
        assert_eq!(best.cost.get(Objective::BufferFootprint), 1.0);
        assert_eq!(best.cost.get(Objective::TotalTime), 1.5);
    }

    #[test]
    fn bounds_switch_the_winner() {
        // Figure 1(b): with time ≤ 1.2 and buffer ≤ 2.5 the optimum moves
        // to (buffer 2.0, time 1.0).
        let plans: Vec<PlanEntry> = moqo_cost::running_example::PLAN_POINTS
            .iter()
            .enumerate()
            .map(|(i, &(b, t))| entry(t, b, i as u32))
            .collect();
        let p = pref()
            .bound(Objective::TotalTime, 1.2)
            .bound(Objective::BufferFootprint, 2.5);
        let best = select_best(&plans, &p).unwrap();
        assert_eq!(best.cost.get(Objective::BufferFootprint), 2.0);
        assert_eq!(best.cost.get(Objective::TotalTime), 1.0);
    }

    #[test]
    fn infeasible_bounds_fall_back_to_weighted() {
        let plans = vec![entry(2.0, 2.0, 0), entry(1.0, 4.0, 1)];
        let p = pref().bound(Objective::TotalTime, 0.1);
        let best = select_best(&plans, &p).unwrap();
        // No plan respects the bound; minimal weighted cost wins:
        // 1.5·2+2 = 5 vs 1.5·1+4 = 5.5.
        assert_eq!(best.plan, PlanId(0));
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(select_best(&[], &pref()).is_none());
    }
}
