//! RMQ — the anytime **r**andomized **m**ulti-objective **q**uery optimizer.
//!
//! The deterministic schemes (EXA/RTA/IRA) enumerate the full table-subset
//! lattice, which becomes infeasible beyond ~10 relations (paper Figure 7).
//! Following the approach of Trummer & Koch's follow-up work on fast
//! randomized multi-objective query optimization (arXiv:1603.00400), RMQ
//! trades the formal `α_U` guarantee for scalability: it *samples* complete
//! join trees and improves them by local plan transformations, maintaining
//! the incumbent (approximate) Pareto front in a [`PlanSet`] at all times —
//! an *anytime* algorithm that can be stopped after any iteration and still
//! return the best front discovered so far.
//!
//! The search runs a small population of **walkers** — independent local
//! searches over the join-tree transformation neighbourhood. Each walker
//! descends its own random *scalarization* of the selected objectives
//! (the first walkers take the unit directions, so every frontier extreme
//! has a dedicated hunter; the rest take random mixtures, normalized by a
//! reference cost so objectives of wildly different magnitude contribute
//! comparably). One iteration advances one walker (round-robin) by either
//!
//! 1. **restarting** it on a fresh join tree sampled by a random walk over
//!    the join graph: start from one component per base relation (random
//!    scan operator), repeatedly join two random *connected* components
//!    with a random applicable join operator (falling back to Cartesian
//!    nested-loop products only when no connected pair remains — the same
//!    Postgres heuristic the DP honours),
//! 2. **jumping** it onto the front member that is best under the walker's
//!    own scalarization (exploitation of the elite set), or
//! 3. **mutating** its current tree with one random transformation — join
//!    commutativity, join associativity (left/right rotation), a
//!    join-operator swap, a scan-operator swap, or a coordinated rewrite
//!    towards a pipelined index-nested-loop join — re-costing the result
//!    bottom-up. The walker accepts the move when its scalarized cost does
//!    not increase, plus half of the non-dominated tradeoff moves, so it
//!    can cross valleys of its own scalarization while still converging
//!    towards its corner of the tradeoff space.
//!
//! Every successfully costed candidate is offered to the front's
//! `prune_insert`; the front never stores a dominated plan. All randomness
//! flows from one seeded [`StdRng`], so runs are fully deterministic per
//! seed. The iteration budget and the wall-clock [`Deadline`] jointly bound
//! the run.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use moqo_cost::{CostVector, Preference, Weights};
use moqo_costmodel::CostModel;
use moqo_plan::{JoinOp, JoinTree, PlanArena, PlanProps, ScanOp};

use crate::budget::Deadline;
use crate::dp::{join_key, scan_configurations, DpStats};
use crate::metrics::ConvergencePoint;
use crate::pareto::{PlanEntry, PlanSet, PruneStrategy};
use crate::select::select_best;

/// Configuration of one RMQ run.
#[derive(Debug, Clone, Copy)]
pub struct RmqConfig {
    /// Iteration budget: total number of candidate plans to sample.
    pub samples: u64,
    /// RNG seed; equal seeds yield bit-identical runs.
    pub seed: u64,
    /// Number of concurrent local searches (round-robin). More walkers
    /// cover more basins; fewer walkers descend deeper per budget.
    pub walkers: usize,
    /// Per-iteration probability of restarting the walker on a fresh random
    /// join tree (exploration).
    pub restart_probability: f64,
    /// Per-iteration probability of jumping the walker onto the front
    /// member that is best under the walker's own scalarization direction
    /// (exploitation of the elite set).
    pub elite_probability: f64,
    /// Record one [`ConvergencePoint`] every `convergence_stride`
    /// iterations; `0` picks a stride that yields ≈64 points.
    pub convergence_stride: u64,
    /// Store a snapshot of the front's cost vectors in every convergence
    /// point (needed for offline coverage analysis; off by default because
    /// snapshots are O(front) each).
    pub record_fronts: bool,
}

impl RmqConfig {
    /// A configuration with the default walker population and
    /// exploration/exploitation balance.
    #[must_use]
    pub fn new(samples: u64, seed: u64) -> Self {
        RmqConfig {
            samples,
            seed,
            walkers: 6,
            restart_probability: 0.05,
            elite_probability: 0.1,
            convergence_stride: 0,
            record_fronts: false,
        }
    }

    fn effective_stride(&self) -> u64 {
        if self.convergence_stride > 0 {
            self.convergence_stride
        } else {
            (self.samples / 64).max(1)
        }
    }
}

/// Result of one RMQ run on a single query block.
#[derive(Debug)]
pub struct RmqResult {
    /// Arena owning every candidate plan generated during the run.
    pub arena: PlanArena,
    /// The incumbent Pareto front at stop time (sorted by the first
    /// selected objective).
    pub final_plans: Vec<PlanEntry>,
    /// DP-style counters: `considered_plans` counts sampled candidates,
    /// `stored_plans`/`peak_stored_plans` track the front.
    pub stats: DpStats,
    /// Convergence trace, one point per stride plus the final state.
    pub convergence: Vec<ConvergencePoint>,
    /// Iterations actually executed (may fall short of the budget on
    /// deadline expiry).
    pub iterations: u64,
}

/// Runs the anytime randomized optimizer on one query block.
///
/// Always returns at least one plan: the first sampled tree is constructed
/// before the iteration loop and random tree construction cannot fail (a
/// nested-loop join applies to every component pair).
///
/// # Panics
///
/// Panics if the preference selects no objectives or the block is empty.
#[must_use]
pub fn rmq(
    model: &CostModel<'_>,
    preference: &Preference,
    config: &RmqConfig,
    deadline: &Deadline,
) -> RmqResult {
    let n = model.graph.n_rels();
    assert!(n >= 1, "query block must contain at least one relation");
    assert!(
        !preference.objectives.is_empty(),
        "preference must select at least one objective"
    );

    let objectives = preference.objectives;
    let strategy = PruneStrategy::exact();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arena = PlanArena::new();
    let mut front = PlanSet::new();
    let mut stats = DpStats::default();
    let mut convergence = Vec::new();
    let stride = config.effective_stride();

    let offer = |tree: &JoinTree,
                 cost: CostVector,
                 props: PlanProps,
                 arena: &mut PlanArena,
                 front: &mut PlanSet,
                 stats: &mut DpStats| {
        stats.considered_plans += 1;
        // Run the rejection test before allocating arena nodes: rejected
        // candidates (the vast majority) then leave no garbage behind, so
        // arena growth is bounded by *accepted* plans, not the budget.
        if front.would_reject(&cost, &strategy, objectives) {
            return false;
        }
        let plan = arena.insert_tree(tree);
        let before = front.len();
        let inserted = front.prune_insert(PlanEntry { cost, props, plan }, &strategy, objectives);
        if inserted {
            let deleted = before + 1 - front.len();
            stats.stored_plans += 1;
            stats.stored_plans -= deleted;
            if stats.stored_plans > stats.peak_stored_plans {
                stats.peak_stored_plans = stats.stored_plans;
                stats.peak_memory_bytes =
                    stats.peak_stored_plans * DpStats::bytes_per_stored_plan();
            }
            if front.len() > stats.max_group_size {
                stats.max_group_size = front.len();
            }
        }
        inserted
    };

    // Seed the walker population (and thereby the front), so the anytime
    // contract (non-empty result) holds even for a zero-sample budget or an
    // already-expired deadline.
    let n_walkers = config.walkers.max(1);
    let mut walkers: Vec<Walker> = Vec::with_capacity(n_walkers);
    for i in 0..n_walkers {
        let (tree, cost, props) =
            sample_random_tree(model, &mut rng).expect("a nested-loop plan always exists");
        offer(&tree, cost, props, &mut arena, &mut front, &mut stats);
        // The first seeded cost normalizes the scalarizations: objectives
        // of wildly different magnitudes then contribute comparably.
        let reference = walkers.first().map_or(cost, |w: &Walker| w.reference);
        let scal = walker_scalarization(i, objectives, &reference, &mut rng);
        walkers.push(Walker {
            state: Component { tree, cost, props },
            scal,
            reference,
        });
    }

    let mut iterations = 0u64;
    while iterations < config.samples {
        if deadline.expired() {
            stats.timed_out = true;
            break;
        }
        let walker = &mut walkers[(iterations % n_walkers as u64) as usize];
        iterations += 1;

        let draw: f64 = rng.gen_range(0.0..1.0);
        if draw < config.restart_probability {
            // Exploration: restart this walker on a fresh random tree.
            let (tree, cost, props) =
                sample_random_tree(model, &mut rng).expect("a nested-loop plan always exists");
            offer(&tree, cost, props, &mut arena, &mut front, &mut stats);
            walker.state = Component { tree, cost, props };
        } else if draw < config.restart_probability + config.elite_probability {
            // Exploitation: jump onto the front member best under this
            // walker's own scalarization direction.
            let elite = front
                .iter()
                .min_by(|a, b| {
                    walker
                        .scal
                        .weighted_cost(&a.cost)
                        .partial_cmp(&walker.scal.weighted_cost(&b.cost))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied();
            if let Some(elite) = elite {
                walker.state = Component {
                    tree: arena.extract_tree(elite.plan),
                    cost: elite.cost,
                    props: elite.props,
                };
            }
            // A jump re-uses a stored plan; no candidate is sampled, so
            // `considered_plans` is not incremented.
        } else {
            // Local move: one random transformation of the walker's tree.
            match mutate_tree(model, &walker.state.tree, &mut rng) {
                Some((tree, cost, props)) => {
                    offer(&tree, cost, props, &mut arena, &mut front, &mut stats);
                    // Accept when the walker's scalarized cost does not
                    // increase (plateau moves keep the walk mobile); also
                    // accept a fraction of non-dominated tradeoff moves so
                    // the walk can cross valleys of its own scalarization.
                    let old = walker.scal.weighted_cost(&walker.state.cost);
                    let new = walker.scal.weighted_cost(&cost);
                    let accept = new <= old
                        || (!moqo_cost::dominance::strictly_dominates(
                            &walker.state.cost,
                            &cost,
                            objectives,
                        ) && rng.gen_range(0.0..1.0) < 0.5);
                    if accept {
                        walker.state = Component { tree, cost, props };
                    }
                }
                None => {
                    // Un-costable transformation; still one budget sample.
                    stats.considered_plans += 1;
                }
            }
        }

        if iterations % stride == 0 {
            convergence.push(trace_point(
                iterations,
                &front,
                preference,
                config.record_fronts,
            ));
        }
    }

    if convergence.last().is_none_or(|p| p.iteration != iterations) {
        convergence.push(trace_point(
            iterations,
            &front,
            preference,
            config.record_fronts,
        ));
    }

    stats.pareto_last_complete = front.len();
    let final_plans: Vec<PlanEntry> = front.iter().copied().collect();
    debug_assert!(!final_plans.is_empty());
    RmqResult {
        arena,
        final_plans,
        stats,
        convergence,
        iterations,
    }
}

fn trace_point(
    iteration: u64,
    front: &PlanSet,
    preference: &Preference,
    record_front: bool,
) -> ConvergencePoint {
    let best_weighted = select_best(front.as_slice(), preference)
        .map_or(f64::INFINITY, |e| preference.weighted_cost(&e.cost));
    ConvergencePoint {
        iteration,
        front_size: front.len(),
        best_weighted,
        front: if record_front {
            front.iter().map(|e| e.cost).collect()
        } else {
            Vec::new()
        },
    }
}

/// One in-flight component of the random walk: a subtree plus its cost and
/// physical properties.
struct Component {
    tree: JoinTree,
    cost: CostVector,
    props: PlanProps,
}

/// One local search of the population: its current plan and the fixed
/// scalarization direction it descends.
struct Walker {
    state: Component,
    scal: Weights,
    reference: CostVector,
}

/// The scalarization of walker `i`: walkers `0..l` take the unit directions
/// of the `l` selected objectives (dedicated extreme hunters), later
/// walkers take random mixtures. All directions are normalized by the
/// reference cost so each objective contributes comparably.
fn walker_scalarization(
    i: usize,
    objectives: moqo_cost::ObjectiveSet,
    reference: &CostVector,
    rng: &mut StdRng,
) -> Weights {
    let objs: Vec<_> = objectives.iter().collect();
    let mut w = Weights::zero();
    for (k, &o) in objs.iter().enumerate() {
        let lambda = if i < objs.len() {
            f64::from(u8::from(k == i))
        } else {
            rng.gen_range(0.05..1.0)
        };
        let scale = reference.get(o).max(1e-9);
        w.set(o, lambda / scale);
    }
    w
}

/// Samples a complete random join tree by the random-walk construction and
/// costs it on the way up. Returns `None` only if some relation admits no
/// scan at all (impossible for well-formed catalogs).
fn sample_random_tree(
    model: &CostModel<'_>,
    rng: &mut StdRng,
) -> Option<(JoinTree, CostVector, PlanProps)> {
    let n = model.graph.n_rels();
    let mut components: Vec<Component> = Vec::with_capacity(n);
    for rel in 0..n {
        let mut ops = scan_configurations(model, rel);
        ops.shuffle(rng);
        let (op, cost, props) = ops
            .into_iter()
            .find_map(|op| model.scan_cost(rel, op).map(|(c, p)| (op, c, p)))?;
        components.push(Component {
            tree: JoinTree::scan(rel, op),
            cost,
            props,
        });
    }

    while components.len() > 1 {
        // Candidate pairs: connected ones if any exist (the Cartesian
        // heuristic), otherwise every pair.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..components.len() {
            for j in 0..components.len() {
                if i != j
                    && model
                        .graph
                        .connects(components[i].props.rels, components[j].props.rels)
                {
                    pairs.push((i, j));
                }
            }
        }
        if pairs.is_empty() {
            for i in 0..components.len() {
                for j in 0..components.len() {
                    if i != j {
                        pairs.push((i, j));
                    }
                }
            }
        }
        pairs.shuffle(rng);

        let mut joined = None;
        'pairs: for (i, j) in pairs {
            let mut ops = JoinOp::all_configurations();
            ops.shuffle(rng);
            for op in ops {
                if let Some((cost, props)) = cost_join(model, op, &components[i], &components[j]) {
                    joined = Some((i, j, op, cost, props));
                    break 'pairs;
                }
            }
        }
        let (i, j, op, cost, props) = joined?;
        let (first, second) = (i.min(j), i.max(j));
        let right = components.swap_remove(second);
        let left = components.swap_remove(first);
        let (left, right) = if first == i {
            (left, right)
        } else {
            (right, left)
        };
        components.push(Component {
            tree: JoinTree::join(op, left.tree, right.tree),
            cost,
            props,
        });
    }

    let c = components.pop()?;
    Some((c.tree, c.cost, c.props))
}

/// Applies one random local transformation to a copy of `base` and re-costs
/// it. Returns `None` when the transformed tree cannot be costed
/// (inapplicable operator after the rewrite) or no transformation applied.
fn mutate_tree(
    model: &CostModel<'_>,
    base: &JoinTree,
    rng: &mut StdRng,
) -> Option<(JoinTree, CostVector, PlanProps)> {
    let mut tree = base.clone();
    let n_joins = tree.n_joins();
    let n_leaves = tree.n_leaves();

    // Try a handful of transformation draws: structural rewrites can be
    // inapplicable at the drawn position (e.g. rotating over a leaf).
    let mut transformed = false;
    for _ in 0..4 {
        let choice = rng.gen_range(0u32..6);
        transformed = match choice {
            0 if n_joins > 0 => tree.commute(rng.gen_range(0..n_joins)),
            1 if n_joins > 0 => tree.rotate_right(rng.gen_range(0..n_joins)),
            2 if n_joins > 0 => tree.rotate_left(rng.gen_range(0..n_joins)),
            3 if n_joins > 0 => {
                let ops = JoinOp::all_configurations();
                tree.set_join_op(rng.gen_range(0..n_joins), *ops.as_slice().choose(rng)?)
            }
            4 => {
                let leaf = rng.gen_range(0..n_leaves);
                let (rel, current) = tree.scan_at(leaf)?;
                let ops = scan_configurations(model, rel);
                let new_op = *ops.as_slice().choose(rng)?;
                // Re-drawing the current operator would re-cost an
                // identical tree; treat it as a failed draw instead.
                new_op != current && tree.set_scan_op(leaf, new_op).is_some()
            }
            5 if n_joins > 0 => {
                // Coordinated rewrite towards a pipelined index-nested-loop
                // join: pick a join whose inner child is a leaf, switch the
                // leaf to the join key's canonical index scan and the join
                // to IdxNL in one step (the swaps rarely pay off applied
                // separately).
                let k = rng.gen_range(0..n_joins);
                match tree.join_at(k) {
                    Some(JoinTree::Join { left, right, .. }) => {
                        if let JoinTree::Scan { rel, .. } = &**right {
                            match join_key(model, left.rel_mask(), 1u32 << rel) {
                                Some(key) if key.inner_indexed => {
                                    tree.make_index_nl(k, key.right_col)
                                }
                                _ => false,
                            }
                        } else {
                            false
                        }
                    }
                    _ => false,
                }
            }
            _ => false,
        };
        if transformed {
            break;
        }
    }
    if !transformed {
        return None;
    }
    let (cost, props) = cost_tree(model, &tree)?;
    Some((tree, cost, props))
}

/// Costs an owned join tree bottom-up. Returns `None` when any operator in
/// the tree is inapplicable (e.g. an index scan on an unindexed column or a
/// hash join over a predicate-free split).
#[must_use]
pub fn cost_tree(model: &CostModel<'_>, tree: &JoinTree) -> Option<(CostVector, PlanProps)> {
    match tree {
        JoinTree::Scan { rel, op } => model.scan_cost(*rel, *op),
        JoinTree::Join { op, left, right } => {
            let (lc, lp) = cost_tree(model, left)?;
            let (rc, rp) = cost_tree(model, right)?;
            let key = join_key(model, lp.rels, rp.rels);
            let right_canonical = match (&**right, key.as_ref()) {
                (
                    JoinTree::Scan {
                        rel,
                        op: ScanOp::IndexScan { column },
                    },
                    Some(k),
                ) => *rel == k.right_rel && *column == k.right_col,
                _ => false,
            };
            model.join_cost(*op, (&lc, &lp), (&rc, &rp), key.as_ref(), right_canonical)
        }
    }
}

fn cost_join(
    model: &CostModel<'_>,
    op: JoinOp,
    left: &Component,
    right: &Component,
) -> Option<(CostVector, PlanProps)> {
    let key = join_key(model, left.props.rels, right.props.rels);
    let right_canonical = match (&right.tree, key.as_ref()) {
        (
            JoinTree::Scan {
                rel,
                op: ScanOp::IndexScan { column },
            },
            Some(k),
        ) => *rel == k.right_rel && *column == k.right_col,
        _ => false,
    };
    model.join_cost(
        op,
        (&left.cost, &left.props),
        (&right.cost, &right.props),
        key.as_ref(),
        right_canonical,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
    use moqo_cost::{Objective, ObjectiveSet};
    use moqo_costmodel::CostModelParams;

    fn setup3() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("customer", 15_000.0, 179.0)
                .with_column(ColumnStats::new("c_custkey", 15_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("orders", 150_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 150_000.0).indexed())
                .with_column(ColumnStats::new("o_custkey", 15_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 600_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 150_000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat)
            .rel("customer", 0.2)
            .rel("orders", 0.5)
            .rel("lineitem", 0.6)
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (params, cat, graph)
    }

    fn pref() -> Preference {
        Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
        ]))
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
    }

    #[test]
    fn rmq_returns_full_plans_and_traces_convergence() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(200, 7),
            &Deadline::unlimited(),
        );
        assert!(!out.final_plans.is_empty());
        for e in &out.final_plans {
            assert_eq!(e.props.rels, g.full_mask());
            assert_eq!(out.arena.leaf_count(e.plan), 3);
        }
        assert_eq!(out.iterations, 200);
        // Elite jumps re-use stored plans and are not counted as sampled
        // candidates, so the counter trails the iteration count slightly.
        assert!(out.stats.considered_plans >= 150);
        assert!(out.stats.considered_plans <= 200 + 6);
        assert!(!out.convergence.is_empty());
        assert_eq!(out.convergence.last().unwrap().iteration, 200);
        // Front sizes in the trace never exceed the peak.
        for pt in &out.convergence {
            assert!(pt.front_size <= out.stats.peak_stored_plans);
            assert!(pt.best_weighted.is_finite());
        }
    }

    #[test]
    fn rmq_is_deterministic_per_seed() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let cfg = RmqConfig::new(300, 42);
        let a = rmq(&model, &pref(), &cfg, &Deadline::unlimited());
        let b = rmq(&model, &pref(), &cfg, &Deadline::unlimited());
        let av: Vec<CostVector> = a.final_plans.iter().map(|e| e.cost).collect();
        let bv: Vec<CostVector> = b.final_plans.iter().map(|e| e.cost).collect();
        assert_eq!(av, bv, "same seed must reproduce the same front");
        assert_eq!(a.stats.considered_plans, b.stats.considered_plans);
    }

    #[test]
    fn rmq_front_is_an_antichain() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let preference = pref();
        let out = rmq(
            &model,
            &preference,
            &RmqConfig::new(500, 3),
            &Deadline::unlimited(),
        );
        let vectors: Vec<CostVector> = out.final_plans.iter().map(|e| e.cost).collect();
        for (i, a) in vectors.iter().enumerate() {
            for (j, b) in vectors.iter().enumerate() {
                if i != j {
                    assert!(
                        !moqo_cost::dominance::strictly_dominates(a, b, preference.objectives),
                        "front must be an antichain"
                    );
                }
            }
        }
    }

    #[test]
    fn rmq_zero_budget_still_returns_a_plan() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(0, 1),
            &Deadline::unlimited(),
        );
        assert_eq!(out.final_plans.len(), out.stats.pareto_last_complete);
        assert!(!out.final_plans.is_empty());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn rmq_respects_deadline() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(u64::MAX, 5),
            &Deadline::new(Some(std::time::Duration::from_millis(20))),
        );
        assert!(out.stats.timed_out);
        assert!(!out.final_plans.is_empty());
        assert!(out.iterations < u64::MAX);
    }

    #[test]
    fn rmq_single_relation_block() {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("t", 1000.0, 100.0)
                .with_column(ColumnStats::new("id", 1000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat).rel("t", 1.0).build();
        let model = CostModel::new(&params, &cat, &graph);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(50, 9),
            &Deadline::unlimited(),
        );
        assert!(!out.final_plans.is_empty());
        for e in &out.final_plans {
            assert_eq!(e.props.rels, 0b1);
        }
    }

    #[test]
    fn cost_tree_matches_direct_costing() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        // Build (customer ⋈ orders) ⋈ lineitem with hash joins and compare
        // against the incremental costs the walk would produce.
        let tree = JoinTree::join(
            JoinOp::HashJoin { dop: 1 },
            JoinTree::join(
                JoinOp::HashJoin { dop: 1 },
                JoinTree::scan(0, ScanOp::SeqScan),
                JoinTree::scan(1, ScanOp::SeqScan),
            ),
            JoinTree::scan(2, ScanOp::SeqScan),
        );
        let (cost, props) = cost_tree(&model, &tree).expect("hash joins apply on join edges");
        assert_eq!(props.rels, 0b111);
        assert!(cost.get(Objective::TotalTime) > 0.0);
        // An index-nested-loop join over a non-canonical inner child must
        // fail to cost.
        let bad = JoinTree::join(
            JoinOp::IndexNestedLoop,
            JoinTree::scan(0, ScanOp::SeqScan),
            JoinTree::scan(1, ScanOp::SeqScan),
        );
        assert!(cost_tree(&model, &bad).is_none());
    }
}
