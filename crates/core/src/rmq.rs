//! RMQ — the anytime **r**andomized **m**ulti-objective **q**uery optimizer.
//!
//! The deterministic schemes (EXA/RTA/IRA) enumerate the full table-subset
//! lattice, which becomes infeasible beyond ~10 relations (paper Figure 7).
//! Following the approach of Trummer & Koch's follow-up work on fast
//! randomized multi-objective query optimization (arXiv:1603.00400), RMQ
//! trades the formal `α_U` guarantee for scalability: it *samples* complete
//! join trees and improves them by local plan transformations, maintaining
//! an incumbent (approximate) Pareto front in a [`PlanSet`] at all times —
//! an *anytime* algorithm that can be stopped after any iteration and still
//! return the best front discovered so far.
//!
//! The search runs a population of **walkers** — *fully independent* local
//! searches over the join-tree transformation neighbourhood, which is what
//! makes the population embarrassingly parallel. Each walker owns a private
//! [`PlanArena`], local front and RNG (seeded from the master seed and its
//! walker index), and descends its own random *scalarization* of the
//! selected objectives: the first walkers take the unit directions, so
//! every frontier extreme has a dedicated hunter; the rest take random
//! mixtures, normalized by the walker's first sampled cost so objectives of
//! wildly different magnitude contribute comparably. One iteration advances
//! one walker by either
//!
//! 1. **restarting** it on a fresh join tree sampled by a random walk over
//!    the join graph: start from one component per base relation (random
//!    scan operator), repeatedly join two random *connected* components
//!    with a random applicable join operator (falling back to Cartesian
//!    nested-loop products only when no connected pair remains — the same
//!    Postgres heuristic the DP honours),
//! 2. **jumping** it onto the local-front member that is best under the
//!    walker's own scalarization (exploitation of its elite set), or
//! 3. **mutating** its current tree with one random transformation — join
//!    commutativity, join associativity (left/right rotation), a
//!    join-operator swap, a scan-operator swap, or a coordinated rewrite
//!    towards a pipelined index-nested-loop join — re-costing the result
//!    bottom-up. The walker accepts the move when its scalarized cost does
//!    not increase, plus half of the non-dominated tradeoff moves, so it
//!    can cross valleys of its own scalarization while still converging
//!    towards its corner of the tradeoff space.
//!
//! The sample budget is dealt to the walkers round-robin (global iteration
//! `i` belongs to walker `i mod W`), walkers advance in short interleaved
//! slices (so a wall-clock deadline starves no scalarization direction) —
//! sharded across [`RmqConfig::threads`] OS threads via
//! `std::thread::scope` — and the local fronts are merged in walker-index
//! order, re-rooting the surviving plans (and only those) into one result
//! arena ([`PlanArena::adopt`]). Because walkers
//! never communicate, the merged front is **byte-identical for a fixed seed
//! regardless of thread count**; threads only change wall-clock time. The
//! iteration budget and the wall-clock [`Deadline`] jointly bound the run
//! (an expiring deadline trades determinism for punctuality, exactly like
//! the DP's quick-finish path).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use moqo_cost::{CostVector, ObjectiveSet, Preference, Weights};
use moqo_costmodel::CostModel;
use moqo_plan::{JoinOp, JoinTree, PlanArena, PlanId, PlanProps, ScanOp};

use crate::budget::Deadline;
use crate::dp::{DpStats, JoinKeys, ScanOptions};
use crate::metrics::ConvergencePoint;
use crate::pareto::{PlanEntry, PlanSet, PruneMode, PruneStrategy};
use crate::select::select_best;

/// Configuration of one RMQ run.
#[derive(Debug, Clone, Copy)]
pub struct RmqConfig {
    /// Iteration budget: total number of candidate plans to sample,
    /// dealt round-robin to the walker population.
    pub samples: u64,
    /// RNG seed; equal seeds yield bit-identical runs at any thread count.
    pub seed: u64,
    /// Number of independent local searches. More walkers cover more
    /// basins; fewer walkers descend deeper per budget.
    pub walkers: usize,
    /// OS threads to shard the walker population over; `0` uses all
    /// available cores. Never affects the result, only wall-clock time.
    pub threads: usize,
    /// Per-iteration probability of restarting the walker on a fresh random
    /// join tree (exploration).
    pub restart_probability: f64,
    /// Per-iteration probability of jumping the walker onto the member of
    /// its local front that is best under the walker's own scalarization
    /// direction (exploitation of the elite set).
    pub elite_probability: f64,
    /// Record one [`ConvergencePoint`] every `convergence_stride`
    /// iterations; `0` picks a stride that yields ≈64 points.
    pub convergence_stride: u64,
    /// Store a snapshot of the front's cost vectors in every convergence
    /// point (needed for offline coverage analysis; off by default because
    /// snapshots are O(front) each).
    pub record_fronts: bool,
}

impl RmqConfig {
    /// A configuration with the default walker population and
    /// exploration/exploitation balance, single-threaded.
    #[must_use]
    pub fn new(samples: u64, seed: u64) -> Self {
        RmqConfig {
            samples,
            seed,
            walkers: 8,
            threads: 1,
            restart_probability: 0.05,
            elite_probability: 0.1,
            convergence_stride: 0,
            record_fronts: false,
        }
    }

    /// Shards the walker population over `threads` OS threads (builder
    /// style); `0` uses all available cores.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_stride(&self) -> u64 {
        if self.convergence_stride > 0 {
            self.convergence_stride
        } else {
            (self.samples / 64).max(1)
        }
    }
}

/// Result of one RMQ run on a single query block.
#[derive(Debug)]
pub struct RmqResult {
    /// Arena owning the merged front's plans (walker arenas are private and
    /// dropped after the merge; only surviving plans are re-rooted here).
    pub arena: PlanArena,
    /// The incumbent Pareto front at stop time (sorted by the first
    /// selected objective).
    pub final_plans: Vec<PlanEntry>,
    /// DP-style counters: `considered_plans` counts sampled candidates,
    /// `peak_stored_plans` sums the walker-local front peaks (total
    /// concurrently resident stored plans), `stored_plans` is the merged
    /// front.
    pub stats: DpStats,
    /// Convergence trace, one point per stride plus the final state. Point
    /// `g` reconstructs the merged front after `g` global iterations of the
    /// round-robin schedule.
    pub convergence: Vec<ConvergencePoint>,
    /// Iterations actually executed across all walkers (may fall short of
    /// the budget on deadline expiry).
    pub iterations: u64,
}

/// Runs the anytime randomized optimizer on one query block.
///
/// Always returns at least one plan: every walker seeds itself with one
/// sampled tree before its iteration loop and random tree construction
/// cannot fail (a nested-loop join applies to every component pair).
///
/// # Panics
///
/// Panics if the preference selects no objectives or the block is empty.
#[must_use]
pub fn rmq(
    model: &CostModel<'_>,
    preference: &Preference,
    config: &RmqConfig,
    deadline: &Deadline,
) -> RmqResult {
    rmq_warm(model, preference, config, deadline, &[])
}

/// [`rmq`] with a warm start: walker `w` seeds itself from
/// `warm_start[w mod |warm_start|]` (instead of a random tree) when the
/// tree still costs under this model — the serving layer's plan cache
/// hands fronts computed for the same block back to the search, so the
/// walk begins at yesterday's frontier instead of from scratch. Trees that
/// fail to cost (or an empty slice) fall back to random seeding. Results
/// remain fully deterministic in `(seed, warm_start, budget)` at any
/// thread count.
///
/// # Panics
///
/// Panics if the preference selects no objectives, the block is empty, or
/// a warm tree references relations outside the block.
#[must_use]
pub fn rmq_warm(
    model: &CostModel<'_>,
    preference: &Preference,
    config: &RmqConfig,
    deadline: &Deadline,
    warm_start: &[JoinTree],
) -> RmqResult {
    let n = model.graph.n_rels();
    assert!(n >= 1, "query block must contain at least one relation");
    assert!(
        !preference.objectives.is_empty(),
        "preference must select at least one objective"
    );

    let objectives = preference.objectives;
    // Same soundness rule as the DP schemes: props-aware fronts whenever
    // sampling lets cardinality leak past the cost vector (the offer path,
    // the cross-walker merge and the trace reconstruction must all agree,
    // or the merged front could discard a walker's props-distinct plans).
    let strategy =
        PruneStrategy::exact().with_mode(PruneMode::auto(model.params.enable_sampling, objectives));
    let keys = JoinKeys::new(model);
    let scan_opts = ScanOptions::new(model);
    let n_walkers = config.walkers.max(1);
    let w64 = n_walkers as u64;
    // The snapshot schedule is materialized up front, so cap the trace at
    // MAX_TRACE_POINTS by coarsening the stride: anytime configs pair
    // `samples = u64::MAX` with a wall-clock deadline, and an explicit
    // stride must not make the schedule allocation proportional to the
    // (astronomical) nominal budget.
    const MAX_TRACE_POINTS: u64 = 4096;
    let stride = config
        .effective_stride()
        .max(config.samples.div_ceil(MAX_TRACE_POINTS));

    // Round-robin schedule: global iteration i (0-based) belongs to walker
    // i mod W, so walker w's budget and its local progress after g global
    // iterations are both closed-form (saturating: a budget of u64::MAX
    // must not overflow the per-walker shares).
    let local_count = |g: u64, w: usize| g.saturating_sub(w as u64).div_ceil(w64);
    let trace_points: Vec<u64> = (1..=config.samples / stride).map(|j| j * stride).collect();
    let walker_inputs: Vec<(u64, u64, Vec<u64>)> = (0..n_walkers)
        .map(|w| {
            (
                local_count(config.samples, w),
                walker_seed(config.seed, w as u64),
                trace_points.iter().map(|&g| local_count(g, w)).collect(),
            )
        })
        .collect();

    let threads = effective_threads(config.threads, n_walkers);
    let runs: Vec<WalkerRun> = if threads <= 1 {
        run_walkers(
            model,
            &keys,
            &scan_opts,
            objectives,
            config,
            0,
            &walker_inputs,
            warm_start,
            deadline,
        )
    } else {
        let remaining = deadline.remaining();
        let chunk_size = n_walkers.div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = walker_inputs
                .chunks(chunk_size)
                .enumerate()
                .map(|(ci, chunk)| {
                    let keys = &keys;
                    let scan_opts = &scan_opts;
                    s.spawn(move || {
                        // Walkers cannot share the deadline (its amortization
                        // cells are not `Sync`); each thread re-derives one
                        // from the remaining budget.
                        let local_deadline = Deadline::new(remaining);
                        run_walkers(
                            model,
                            keys,
                            scan_opts,
                            objectives,
                            config,
                            ci * chunk_size,
                            chunk,
                            warm_start,
                            &local_deadline,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("walker threads do not panic"))
                .collect()
        })
    };

    // Deterministic merge in walker-index order, on cost vectors first: the
    // survivors are only known once every walker front has been folded in,
    // and only they are re-rooted into the result arena — so it holds
    // exactly the final front's trees, nothing orphaned. Candidate indices
    // stand in as plan ids during the merge.
    let mut candidates: Vec<(usize, PlanEntry)> = Vec::new();
    let mut front = PlanSet::new();
    for (ri, run) in runs.iter().enumerate() {
        for e in run.front.iter() {
            if front.would_reject(&e.cost, &e.props, &strategy, objectives) {
                continue;
            }
            let placeholder = PlanId(u32::try_from(candidates.len()).expect("front fits in u32"));
            candidates.push((ri, *e));
            front.insert_unrejected(
                PlanEntry {
                    plan: placeholder,
                    ..*e
                },
                &strategy,
                objectives,
            );
        }
    }
    let mut arena = PlanArena::new();
    let final_plans: Vec<PlanEntry> = front
        .iter()
        .map(|e| {
            let (ri, orig) = candidates[e.plan.0 as usize];
            PlanEntry {
                plan: arena.adopt(&runs[ri].arena, orig.plan),
                ..orig
            }
        })
        .collect();

    let iterations: u64 = runs.iter().map(|r| r.iterations).sum();

    // Reconstruct the global convergence trace: the merged front after g
    // global iterations is the walker-order merge of each local front after
    // its share of the schedule.
    let mut convergence = Vec::new();
    let mut max_front = front.len();
    for (j, &g) in trace_points.iter().enumerate() {
        if g > iterations {
            break;
        }
        let mut merged = PlanSet::new();
        for run in &runs {
            for e in &run.snapshots[j] {
                merged.prune_insert(*e, &strategy, objectives);
            }
        }
        max_front = max_front.max(merged.len());
        convergence.push(trace_point(g, &merged, preference, config.record_fronts));
    }
    if convergence.last().is_none_or(|p| p.iteration != iterations) {
        convergence.push(trace_point(
            iterations,
            &front,
            preference,
            config.record_fronts,
        ));
    }

    let peak_stored: usize = runs
        .iter()
        .map(|r| r.peak_front)
        .sum::<usize>()
        .max(front.len());
    // Probe outcomes: each walker's local front plus the merged front.
    let probe_sets = runs
        .iter()
        .map(|r| r.front.probes())
        .chain([front.probes()]);
    let (frontier_grid_hits, frontier_scan_probes) = probe_sets.fold((0u64, 0u64), |(h, s), p| {
        (h + p.grid_hits, s + p.scan_probes)
    });
    let stats = DpStats {
        considered_plans: runs.iter().map(|r| r.considered).sum(),
        stored_plans: front.len(),
        peak_stored_plans: peak_stored,
        peak_memory_bytes: peak_stored * DpStats::bytes_per_stored_plan(),
        pareto_last_complete: front.len(),
        max_group_size: max_front,
        frontier_grid_hits,
        frontier_scan_probes,
        timed_out: runs.iter().any(|r| r.timed_out),
    };

    debug_assert!(!final_plans.is_empty());
    RmqResult {
        arena,
        final_plans,
        stats,
        convergence,
        iterations,
    }
}

/// Everything one walker brings home: its private arena and front, local
/// counters, and the front snapshots for the global trace reconstruction.
struct WalkerRun {
    arena: PlanArena,
    front: PlanSet,
    considered: u64,
    peak_front: usize,
    iterations: u64,
    timed_out: bool,
    /// Front snapshots aligned with the walker's snapshot schedule.
    snapshots: Vec<Vec<PlanEntry>>,
}

/// Runs a contiguous chunk of walkers on one thread, interleaving their
/// iterations in short round-robin slices so a wall-clock deadline starves
/// no walker: every scalarization direction keeps advancing at roughly the
/// same rate until the clock (or its budget) stops it. Slicing cannot
/// affect budget-bound results — walkers share nothing, so any schedule
/// yields the same per-walker streams; only *where* an expiring deadline
/// lands is wall-clock dependent, as it always was.
#[allow(clippy::too_many_arguments)]
fn run_walkers(
    model: &CostModel<'_>,
    keys: &JoinKeys,
    scan_opts: &ScanOptions,
    objectives: ObjectiveSet,
    config: &RmqConfig,
    first_index: usize,
    inputs: &[(u64, u64, Vec<u64>)],
    warm_start: &[JoinTree],
    deadline: &Deadline,
) -> Vec<WalkerRun> {
    /// Iterations one walker runs before yielding to the next in its chunk.
    const ITER_SLICE: u64 = 64;
    let mut states: Vec<WalkerState<'_>> = inputs
        .iter()
        .enumerate()
        .map(|(i, (budget, seed, snaps))| {
            let index = first_index + i;
            let warm = if warm_start.is_empty() {
                None
            } else {
                Some(&warm_start[index % warm_start.len()])
            };
            WalkerState::new(
                model, keys, scan_opts, objectives, config, index, *budget, *seed, snaps, warm,
            )
        })
        .collect();
    let mut target = 0u64;
    while states.iter().any(|s| !s.done()) {
        target = target.saturating_add(ITER_SLICE);
        for s in &mut states {
            s.advance_to(target, deadline);
        }
    }
    states.into_iter().map(WalkerState::finish).collect()
}

/// One independent local search, resumable in iteration slices.
/// Deterministic given (seed, budget): the RNG, arena and front are
/// private, so the interleaving schedule never shows in the results.
struct WalkerState<'a> {
    model: &'a CostModel<'a>,
    keys: &'a JoinKeys,
    scan_opts: &'a ScanOptions,
    objectives: ObjectiveSet,
    config: &'a RmqConfig,
    budget: u64,
    snapshot_counts: &'a [u64],
    rng: StdRng,
    arena: PlanArena,
    front: PlanSet,
    strategy: PruneStrategy,
    considered: u64,
    peak_front: usize,
    snapshots: Vec<Vec<PlanEntry>>,
    scal: Weights,
    state: Component,
    iterations: u64,
    timed_out: bool,
    /// Reusable shuffle buffer for scan-operator draws (random tree
    /// construction re-shuffles the options of every relation).
    scan_scratch: Vec<ScanOp>,
}

impl<'a> WalkerState<'a> {
    /// Seeds the walker (and thereby its front), so the anytime contract
    /// (non-empty result) holds even for a zero-sample budget or an
    /// already expired deadline. The first sampled cost normalizes the
    /// walker's scalarization: objectives of wildly different magnitudes
    /// then contribute comparably.
    #[allow(clippy::too_many_arguments)]
    fn new(
        model: &'a CostModel<'a>,
        keys: &'a JoinKeys,
        scan_opts: &'a ScanOptions,
        objectives: ObjectiveSet,
        config: &'a RmqConfig,
        index: usize,
        budget: u64,
        seed: u64,
        snapshot_counts: &'a [u64],
        warm: Option<&JoinTree>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scan_scratch = Vec::new();
        // A warm tree that no longer costs under this model falls back to
        // random seeding — the warm start is an accelerator, never a
        // correctness dependency.
        let (tree, cost, props) = warm
            .and_then(|t| cost_tree_with(model, keys, t).map(|(c, p)| (t.clone(), c, p)))
            .unwrap_or_else(|| {
                sample_random_tree(model, keys, scan_opts, &mut scan_scratch, &mut rng)
                    .expect("a nested-loop plan always exists")
            });
        let scal = walker_scalarization(index, objectives, &cost, &mut rng);
        let mut walker = WalkerState {
            model,
            keys,
            scan_opts,
            objectives,
            config,
            budget,
            snapshot_counts,
            rng,
            arena: PlanArena::new(),
            front: PlanSet::new(),
            strategy: PruneStrategy::exact()
                .with_mode(PruneMode::auto(model.params.enable_sampling, objectives)),
            considered: 0,
            peak_front: 0,
            snapshots: Vec::with_capacity(snapshot_counts.len()),
            scal,
            state: Component { tree, cost, props },
            iterations: 0,
            timed_out: false,
            scan_scratch,
        };
        let seeded = walker.state.tree.clone();
        walker.offer(&seeded, cost, props);
        walker.emit(0);
        walker
    }

    /// Offers a costed candidate to the local front. The rejection test
    /// runs before allocating arena nodes: rejected candidates (the vast
    /// majority) then leave no garbage behind, so arena growth is bounded
    /// by *accepted* plans, not the budget.
    fn offer(&mut self, tree: &JoinTree, cost: CostVector, props: PlanProps) {
        self.considered += 1;
        let strategy = self.strategy;
        if self
            .front
            .would_reject(&cost, &props, &strategy, self.objectives)
        {
            return;
        }
        let plan = self.arena.insert_tree(tree);
        self.front
            .insert_unrejected(PlanEntry { cost, props, plan }, &strategy, self.objectives);
        if self.front.len() > self.peak_front {
            self.peak_front = self.front.len();
        }
    }

    /// Pins every snapshot slot whose local count is ≤ `upto` to the
    /// current front (counts are nondecreasing, so this emits in schedule
    /// order).
    fn emit(&mut self, upto: u64) {
        while self.snapshots.len() < self.snapshot_counts.len()
            && self.snapshot_counts[self.snapshots.len()] <= upto
        {
            self.snapshots.push(self.front.iter().copied().collect());
        }
    }

    /// Whether this walker has nothing left to do.
    fn done(&self) -> bool {
        self.timed_out || self.iterations >= self.budget
    }

    /// Advances until the local iteration count reaches `target` (capped by
    /// the budget) or the deadline expires.
    fn advance_to(&mut self, target: u64, deadline: &Deadline) {
        let target = target.min(self.budget);
        while self.iterations < target && !self.timed_out {
            if deadline.expired() {
                self.timed_out = true;
                break;
            }
            self.iterations += 1;
            self.step();
            self.emit(self.iterations);
        }
        if self.done() {
            // Outstanding snapshot slots pin the front at exit (deadline
            // expiry short of the schedule); idempotent once drained.
            self.emit(u64::MAX);
        }
    }

    /// One iteration: restart, elite jump, or local mutation.
    fn step(&mut self) {
        let draw: f64 = self.rng.gen_range(0.0..1.0);
        if draw < self.config.restart_probability {
            // Exploration: restart this walker on a fresh random tree.
            let (tree, cost, props) = sample_random_tree(
                self.model,
                self.keys,
                self.scan_opts,
                &mut self.scan_scratch,
                &mut self.rng,
            )
            .expect("a nested-loop plan always exists");
            self.offer(&tree, cost, props);
            self.state = Component { tree, cost, props };
        } else if draw < self.config.restart_probability + self.config.elite_probability {
            // Exploitation: jump onto the local-front member best under
            // this walker's own scalarization direction.
            let elite = self
                .front
                .iter()
                .min_by(|a, b| {
                    self.scal
                        .weighted_cost(&a.cost)
                        .partial_cmp(&self.scal.weighted_cost(&b.cost))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied();
            if let Some(elite) = elite {
                self.state = Component {
                    tree: self.arena.extract_tree(elite.plan),
                    cost: elite.cost,
                    props: elite.props,
                };
            }
            // A jump re-uses a stored plan; no candidate is sampled, so
            // `considered_plans` is not incremented.
        } else {
            // Local move: one random transformation of the walker's tree.
            match mutate_tree(
                self.model,
                self.keys,
                self.scan_opts,
                &self.state.tree,
                &mut self.rng,
            ) {
                Some((tree, cost, props)) => {
                    self.offer(&tree, cost, props);
                    // Accept when the walker's scalarized cost does not
                    // increase (plateau moves keep the walk mobile); also
                    // accept a fraction of non-dominated tradeoff moves so
                    // the walk can cross valleys of its own scalarization.
                    let old = self.scal.weighted_cost(&self.state.cost);
                    let new = self.scal.weighted_cost(&cost);
                    let accept = new <= old
                        || (!moqo_cost::dominance::strictly_dominates(
                            &self.state.cost,
                            &cost,
                            self.objectives,
                        ) && self.rng.gen_range(0.0..1.0) < 0.5);
                    if accept {
                        self.state = Component { tree, cost, props };
                    }
                }
                None => {
                    // Un-costable transformation; still one budget sample.
                    self.considered += 1;
                }
            }
        }
    }

    /// Surrenders the walker's results.
    fn finish(self) -> WalkerRun {
        WalkerRun {
            arena: self.arena,
            front: self.front,
            considered: self.considered,
            peak_front: self.peak_front,
            iterations: self.iterations,
            timed_out: self.timed_out,
            snapshots: self.snapshots,
        }
    }
}

/// Derives walker `i`'s RNG seed from the master seed: SplitMix64 over the
/// golden-ratio sequence gives decorrelated per-walker streams that depend
/// only on (seed, index), never on scheduling.
fn walker_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves the thread knob: `0` means all available cores; never more
/// threads than walkers.
fn effective_threads(requested: usize, n_walkers: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    };
    t.clamp(1, n_walkers)
}

fn trace_point(
    iteration: u64,
    front: &PlanSet,
    preference: &Preference,
    record_front: bool,
) -> ConvergencePoint {
    let entries: Vec<PlanEntry> = front.iter().copied().collect();
    let best_weighted = select_best(&entries, preference)
        .map_or(f64::INFINITY, |e| preference.weighted_cost(&e.cost));
    ConvergencePoint {
        iteration,
        front_size: entries.len(),
        best_weighted,
        front: if record_front {
            entries.iter().map(|e| e.cost).collect()
        } else {
            Vec::new()
        },
    }
}

/// One in-flight component of the random walk: a subtree plus its cost and
/// physical properties.
struct Component {
    tree: JoinTree,
    cost: CostVector,
    props: PlanProps,
}

/// The scalarization of walker `i`: walkers `0..l` take the unit directions
/// of the `l` selected objectives (dedicated extreme hunters), later
/// walkers take random mixtures. All directions are normalized by the
/// reference cost so each objective contributes comparably.
fn walker_scalarization(
    i: usize,
    objectives: ObjectiveSet,
    reference: &CostVector,
    rng: &mut StdRng,
) -> Weights {
    let objs: Vec<_> = objectives.iter().collect();
    let mut w = Weights::zero();
    for (k, &o) in objs.iter().enumerate() {
        let lambda = if i < objs.len() {
            f64::from(u8::from(k == i))
        } else {
            rng.gen_range(0.05..1.0)
        };
        let scale = reference.get(o).max(1e-9);
        w.set(o, lambda / scale);
    }
    w
}

/// Samples a complete random join tree by the random-walk construction and
/// costs it on the way up. Returns `None` only if some relation admits no
/// scan at all (impossible for well-formed catalogs).
fn sample_random_tree(
    model: &CostModel<'_>,
    keys: &JoinKeys,
    scan_opts: &ScanOptions,
    scan_scratch: &mut Vec<ScanOp>,
    rng: &mut StdRng,
) -> Option<(JoinTree, CostVector, PlanProps)> {
    let n = model.graph.n_rels();
    let mut components: Vec<Component> = Vec::with_capacity(n);
    for rel in 0..n {
        scan_scratch.clear();
        scan_scratch.extend_from_slice(scan_opts.for_rel(rel));
        scan_scratch.shuffle(rng);
        let (op, cost, props) = scan_scratch
            .iter()
            .find_map(|&op| model.scan_cost(rel, op).map(|(c, p)| (op, c, p)))?;
        components.push(Component {
            tree: JoinTree::scan(rel, op),
            cost,
            props,
        });
    }

    while components.len() > 1 {
        // Candidate pairs: connected ones if any exist (the Cartesian
        // heuristic), otherwise every pair.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..components.len() {
            for j in 0..components.len() {
                if i != j
                    && model
                        .graph
                        .connects(components[i].props.rels, components[j].props.rels)
                {
                    pairs.push((i, j));
                }
            }
        }
        if pairs.is_empty() {
            for i in 0..components.len() {
                for j in 0..components.len() {
                    if i != j {
                        pairs.push((i, j));
                    }
                }
            }
        }
        pairs.shuffle(rng);

        let mut joined = None;
        'pairs: for (i, j) in pairs {
            let mut ops = JoinOp::all_configurations();
            ops.shuffle(rng);
            for op in ops {
                if let Some((cost, props)) =
                    cost_join(model, keys, op, &components[i], &components[j])
                {
                    joined = Some((i, j, op, cost, props));
                    break 'pairs;
                }
            }
        }
        let (i, j, op, cost, props) = joined?;
        let (first, second) = (i.min(j), i.max(j));
        let right = components.swap_remove(second);
        let left = components.swap_remove(first);
        let (left, right) = if first == i {
            (left, right)
        } else {
            (right, left)
        };
        components.push(Component {
            tree: JoinTree::join(op, left.tree, right.tree),
            cost,
            props,
        });
    }

    let c = components.pop()?;
    Some((c.tree, c.cost, c.props))
}

/// Applies one random local transformation to a copy of `base` and re-costs
/// it. Returns `None` when the transformed tree cannot be costed
/// (inapplicable operator after the rewrite) or no transformation applied.
fn mutate_tree(
    model: &CostModel<'_>,
    keys: &JoinKeys,
    scan_opts: &ScanOptions,
    base: &JoinTree,
    rng: &mut StdRng,
) -> Option<(JoinTree, CostVector, PlanProps)> {
    let mut tree = base.clone();
    let n_joins = tree.n_joins();
    let n_leaves = tree.n_leaves();

    // Try a handful of transformation draws: structural rewrites can be
    // inapplicable at the drawn position (e.g. rotating over a leaf).
    let mut transformed = false;
    for _ in 0..4 {
        let choice = rng.gen_range(0u32..6);
        transformed = match choice {
            0 if n_joins > 0 => tree.commute(rng.gen_range(0..n_joins)),
            1 if n_joins > 0 => tree.rotate_right(rng.gen_range(0..n_joins)),
            2 if n_joins > 0 => tree.rotate_left(rng.gen_range(0..n_joins)),
            3 if n_joins > 0 => {
                let ops = JoinOp::all_configurations();
                tree.set_join_op(rng.gen_range(0..n_joins), *ops.as_slice().choose(rng)?)
            }
            4 => {
                let leaf = rng.gen_range(0..n_leaves);
                let (rel, current) = tree.scan_at(leaf)?;
                let ops = scan_opts.for_rel(rel);
                let new_op = *ops.choose(rng)?;
                // Re-drawing the current operator would re-cost an
                // identical tree; treat it as a failed draw instead.
                new_op != current && tree.set_scan_op(leaf, new_op).is_some()
            }
            5 if n_joins > 0 => {
                // Coordinated rewrite towards a pipelined index-nested-loop
                // join: pick a join whose inner child is a leaf, switch the
                // leaf to the join key's canonical index scan and the join
                // to IdxNL in one step (the swaps rarely pay off applied
                // separately).
                let k = rng.gen_range(0..n_joins);
                match tree.join_at(k) {
                    Some(JoinTree::Join { left, right, .. }) => {
                        if let JoinTree::Scan { rel, .. } = &**right {
                            match keys.join_key(left.rel_mask(), 1u32 << rel) {
                                Some(key) if key.inner_indexed => {
                                    tree.make_index_nl(k, key.right_col)
                                }
                                _ => false,
                            }
                        } else {
                            false
                        }
                    }
                    _ => false,
                }
            }
            _ => false,
        };
        if transformed {
            break;
        }
    }
    if !transformed {
        return None;
    }
    let (cost, props) = cost_tree_with(model, keys, &tree)?;
    Some((tree, cost, props))
}

/// Costs an owned join tree bottom-up. Returns `None` when any operator in
/// the tree is inapplicable (e.g. an index scan on an unindexed column or a
/// hash join over a predicate-free split).
#[must_use]
pub fn cost_tree(model: &CostModel<'_>, tree: &JoinTree) -> Option<(CostVector, PlanProps)> {
    cost_tree_with(model, &JoinKeys::new(model), tree)
}

/// [`cost_tree`] against a precomputed key index — the walker hot path
/// re-costs a whole tree per mutation, so the per-run index is built once.
fn cost_tree_with(
    model: &CostModel<'_>,
    keys: &JoinKeys,
    tree: &JoinTree,
) -> Option<(CostVector, PlanProps)> {
    match tree {
        JoinTree::Scan { rel, op } => model.scan_cost(*rel, *op),
        JoinTree::Join { op, left, right } => {
            let (lc, lp) = cost_tree_with(model, keys, left)?;
            let (rc, rp) = cost_tree_with(model, keys, right)?;
            let key = keys.join_key(lp.rels, rp.rels);
            let right_canonical = match (&**right, key.as_ref()) {
                (
                    JoinTree::Scan {
                        rel,
                        op: ScanOp::IndexScan { column },
                    },
                    Some(k),
                ) => *rel == k.right_rel && *column == k.right_col,
                _ => false,
            };
            model.join_cost(*op, (&lc, &lp), (&rc, &rp), key.as_ref(), right_canonical)
        }
    }
}

fn cost_join(
    model: &CostModel<'_>,
    keys: &JoinKeys,
    op: JoinOp,
    left: &Component,
    right: &Component,
) -> Option<(CostVector, PlanProps)> {
    let key = keys.join_key(left.props.rels, right.props.rels);
    let right_canonical = match (&right.tree, key.as_ref()) {
        (
            JoinTree::Scan {
                rel,
                op: ScanOp::IndexScan { column },
            },
            Some(k),
        ) => *rel == k.right_rel && *column == k.right_col,
        _ => false,
    };
    model.join_cost(
        op,
        (&left.cost, &left.props),
        (&right.cost, &right.props),
        key.as_ref(),
        right_canonical,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
    use moqo_cost::{Objective, ObjectiveSet};
    use moqo_costmodel::CostModelParams;

    fn setup3() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("customer", 15_000.0, 179.0)
                .with_column(ColumnStats::new("c_custkey", 15_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("orders", 150_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 150_000.0).indexed())
                .with_column(ColumnStats::new("o_custkey", 15_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 600_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 150_000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat)
            .rel("customer", 0.2)
            .rel("orders", 0.5)
            .rel("lineitem", 0.6)
            .join(("customer", "c_custkey"), ("orders", "o_custkey"))
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (params, cat, graph)
    }

    fn pref() -> Preference {
        Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
        ]))
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
    }

    #[test]
    fn rmq_returns_full_plans_and_traces_convergence() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(200, 7),
            &Deadline::unlimited(),
        );
        assert!(!out.final_plans.is_empty());
        for e in &out.final_plans {
            assert_eq!(e.props.rels, g.full_mask());
            assert_eq!(out.arena.leaf_count(e.plan), 3);
        }
        assert_eq!(out.iterations, 200);
        // Elite jumps re-use stored plans and are not counted as sampled
        // candidates; every walker seeds one extra tree.
        assert!(out.stats.considered_plans >= 150);
        assert!(out.stats.considered_plans <= 200 + 8);
        assert!(!out.convergence.is_empty());
        assert_eq!(out.convergence.last().unwrap().iteration, 200);
        // Front sizes in the trace never exceed the peak.
        for pt in &out.convergence {
            assert!(pt.front_size <= out.stats.peak_stored_plans);
            assert!(pt.best_weighted.is_finite());
        }
    }

    #[test]
    fn rmq_is_deterministic_per_seed() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let cfg = RmqConfig::new(300, 42);
        let a = rmq(&model, &pref(), &cfg, &Deadline::unlimited());
        let b = rmq(&model, &pref(), &cfg, &Deadline::unlimited());
        let av: Vec<CostVector> = a.final_plans.iter().map(|e| e.cost).collect();
        let bv: Vec<CostVector> = b.final_plans.iter().map(|e| e.cost).collect();
        assert_eq!(av, bv, "same seed must reproduce the same front");
        assert_eq!(a.stats.considered_plans, b.stats.considered_plans);
    }

    #[test]
    fn rmq_front_is_identical_across_thread_counts() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let base = RmqConfig::new(400, 21);
        let reference = rmq(&model, &pref(), &base, &Deadline::unlimited());
        for threads in [2usize, 3, 4, 0] {
            let out = rmq(
                &model,
                &pref(),
                &base.with_threads(threads),
                &Deadline::unlimited(),
            );
            assert_eq!(out.iterations, reference.iterations);
            assert_eq!(
                out.stats.considered_plans, reference.stats.considered_plans,
                "threads = {threads}"
            );
            assert_eq!(
                out.final_plans.len(),
                reference.final_plans.len(),
                "threads = {threads}"
            );
            for (a, b) in out.final_plans.iter().zip(&reference.final_plans) {
                assert_eq!(a.cost, b.cost, "threads = {threads}");
                assert_eq!(
                    out.arena.extract_tree(a.plan),
                    reference.arena.extract_tree(b.plan),
                    "threads = {threads}: plans must be structurally identical"
                );
            }
            // The whole trace is reproduced too, not just the final front.
            assert_eq!(out.convergence.len(), reference.convergence.len());
            for (a, b) in out.convergence.iter().zip(&reference.convergence) {
                assert_eq!(a.iteration, b.iteration);
                assert_eq!(a.front_size, b.front_size);
                assert_eq!(a.best_weighted, b.best_weighted);
            }
        }
    }

    #[test]
    fn rmq_front_is_an_antichain() {
        // Default params enable sampling and the preference omits
        // TupleLoss, so the front is props-aware: a member may be
        // cost-dominated only by members that do NOT cover its props
        // (fewer rows / an interesting order are legitimate reasons to
        // survive).
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let preference = pref();
        let out = rmq(
            &model,
            &preference,
            &RmqConfig::new(500, 3),
            &Deadline::unlimited(),
        );
        for (i, a) in out.final_plans.iter().enumerate() {
            for (j, b) in out.final_plans.iter().enumerate() {
                if i != j {
                    assert!(
                        !(crate::pareto::props_key(&a.props)
                            .covers(&crate::pareto::props_key(&b.props))
                            && moqo_cost::dominance::strictly_dominates(
                                &a.cost,
                                &b.cost,
                                preference.objectives
                            )),
                        "front must be a props-aware antichain"
                    );
                }
            }
        }

        // With sampling disabled the mode auto-selects cost-only and the
        // plain antichain property holds.
        let no_sampling = CostModelParams {
            enable_sampling: false,
            ..CostModelParams::default()
        };
        let model = CostModel::new(&no_sampling, &cat, &g);
        let out = rmq(
            &model,
            &preference,
            &RmqConfig::new(500, 3),
            &Deadline::unlimited(),
        );
        let vectors: Vec<CostVector> = out.final_plans.iter().map(|e| e.cost).collect();
        for (i, a) in vectors.iter().enumerate() {
            for (j, b) in vectors.iter().enumerate() {
                if i != j {
                    assert!(
                        !moqo_cost::dominance::strictly_dominates(a, b, preference.objectives),
                        "cost-only front must be a plain antichain"
                    );
                }
            }
        }
    }

    #[test]
    fn rmq_zero_budget_still_returns_a_plan() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(0, 1),
            &Deadline::unlimited(),
        );
        assert_eq!(out.final_plans.len(), out.stats.pareto_last_complete);
        assert!(!out.final_plans.is_empty());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn rmq_respects_deadline() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(u64::MAX, 5),
            &Deadline::new(Some(std::time::Duration::from_millis(20))),
        );
        assert!(out.stats.timed_out);
        assert!(!out.final_plans.is_empty());
        assert!(out.iterations < u64::MAX);
    }

    #[test]
    fn rmq_result_arena_holds_only_the_final_front() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(300, 11),
            &Deadline::unlimited(),
        );
        // The merge adopts survivors only, after cross-walker domination is
        // resolved: every arena node belongs to exactly one front plan.
        let front_nodes: usize = out
            .final_plans
            .iter()
            .map(|e| 2 * out.arena.leaf_count(e.plan) - 1)
            .sum();
        assert_eq!(out.arena.len(), front_nodes);
    }

    #[test]
    fn rmq_huge_budget_with_explicit_stride_stays_bounded() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        // Anytime usage: a nominal budget of u64::MAX bounded by the clock,
        // with an explicit convergence stride. The snapshot schedule must
        // be capped, not proportional to the nominal budget.
        let cfg = RmqConfig {
            convergence_stride: 10_000,
            ..RmqConfig::new(u64::MAX, 3)
        };
        let out = rmq(
            &model,
            &pref(),
            &cfg,
            &Deadline::new(Some(std::time::Duration::from_millis(10))),
        );
        assert!(out.stats.timed_out);
        assert!(!out.final_plans.is_empty());
        assert!(out.convergence.len() <= 4097);
    }

    #[test]
    fn rmq_deadline_applies_across_threads() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(u64::MAX, 5).with_threads(4),
            &Deadline::new(Some(std::time::Duration::from_millis(20))),
        );
        assert!(out.stats.timed_out);
        assert!(!out.final_plans.is_empty());
    }

    #[test]
    fn rmq_single_relation_block() {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("t", 1000.0, 100.0)
                .with_column(ColumnStats::new("id", 1000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat).rel("t", 1.0).build();
        let model = CostModel::new(&params, &cat, &graph);
        let out = rmq(
            &model,
            &pref(),
            &RmqConfig::new(50, 9),
            &Deadline::unlimited(),
        );
        assert!(!out.final_plans.is_empty());
        for e in &out.final_plans {
            assert_eq!(e.props.rels, 0b1);
        }
    }

    #[test]
    fn walker_seeds_are_decorrelated() {
        let a = walker_seed(42, 0);
        let b = walker_seed(42, 1);
        let c = walker_seed(43, 0);
        assert!(a != b && a != c && b != c);
        assert_eq!(a, walker_seed(42, 0), "pure function of (seed, index)");
    }

    #[test]
    fn cost_tree_matches_direct_costing() {
        let (p, cat, g) = setup3();
        let model = CostModel::new(&p, &cat, &g);
        // Build (customer ⋈ orders) ⋈ lineitem with hash joins and compare
        // against the incremental costs the walk would produce.
        let tree = JoinTree::join(
            JoinOp::HashJoin { dop: 1 },
            JoinTree::join(
                JoinOp::HashJoin { dop: 1 },
                JoinTree::scan(0, ScanOp::SeqScan),
                JoinTree::scan(1, ScanOp::SeqScan),
            ),
            JoinTree::scan(2, ScanOp::SeqScan),
        );
        let (cost, props) = cost_tree(&model, &tree).expect("hash joins apply on join edges");
        assert_eq!(props.rels, 0b111);
        assert!(cost.get(Objective::TotalTime) > 0.0);
        // An index-nested-loop join over a non-canonical inner child must
        // fail to cost.
        let bad = JoinTree::join(
            JoinOp::IndexNestedLoop,
            JoinTree::scan(0, ScanOp::SeqScan),
            JoinTree::scan(1, ScanOp::SeqScan),
        );
        assert!(cost_tree(&model, &bad).is_none());
    }
}
