//! Asymptotic complexity formulas (paper §5.2, §6.3, Figure 7).
//!
//! Everything is computed in log10 space: the quantities explode (the EXA's
//! plan counts exceed 10^50 for ten tables, exactly as Figure 7 shows), so
//! the figure regeneration works with exponents.

/// `ln(n!)` by direct summation (n is small in all uses).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// log10 of the number of bushy plans for joining `n` tables with `j`
/// scan/join operators: `N_bushy(j, n) = j^(2n−1) · (2(n−1))!/(n−1)!`
/// (paper §5.2).
///
/// # Panics
///
/// Panics if `n == 0` or `j == 0`.
#[must_use]
pub fn log10_n_bushy(j: u64, n: u64) -> f64 {
    assert!(n >= 1 && j >= 1);
    let ln = (2 * n - 1) as f64 * (j as f64).ln() + ln_factorial(2 * (n - 1)) - ln_factorial(n - 1);
    ln / std::f64::consts::LN_10
}

/// log10 of the EXA's worst-case time `O(N_bushy(j, n)²)` (Theorem 2).
#[must_use]
pub fn log10_exa_time(j: u64, n: u64) -> f64 {
    2.0 * log10_n_bushy(j, n)
}

/// log10 of the RTA's per-table-set storage bound
/// `N_stored(m, n) = (n·log_{α_i}(m))^(l−1)` (Lemma 2), with the internal
/// precision `α_i = α^(1/n)`, so `log_{α_i} m = n·ln m / ln α`.
///
/// # Panics
///
/// Panics if `alpha <= 1` (the bound degenerates for exact pruning).
#[must_use]
pub fn log10_n_stored(m: f64, n: u64, l: u64, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "N_stored requires α > 1");
    assert!(m > 1.0 && n >= 1 && l >= 1);
    let log_alpha_i_m = (n as f64) * m.ln() / alpha.ln();
    ((n as f64) * log_alpha_i_m).ln() * ((l - 1) as f64) / std::f64::consts::LN_10
}

/// log10 of the RTA's worst-case time `O(j·3^n·N_stored³)` (Theorem 5).
#[must_use]
pub fn log10_rta_time(j: u64, n: u64, l: u64, m: f64, alpha: f64) -> f64 {
    (j as f64).log10() + (n as f64) * 3f64.log10() + 3.0 * log10_n_stored(m, n, l, alpha)
}

/// log10 of the bushy Selinger algorithm's time `O(j·3^n)` (§6.3).
#[must_use]
pub fn log10_selinger_time(j: u64, n: u64) -> f64 {
    (j as f64).log10() + (n as f64) * 3f64.log10()
}

/// log10 of the IRA's worst-case time for iteration `i`
/// `O(j·3^n·2^i·(n²·log m / log α_U)^(3l−3))` (Theorem 7).
#[must_use]
pub fn log10_ira_iteration_time(
    j: u64,
    n: u64,
    l: u64,
    m: f64,
    alpha_u: f64,
    iteration: u32,
) -> f64 {
    assert!(alpha_u > 1.0);
    let base = (j as f64).log10() + (n as f64) * 3f64.log10() + f64::from(iteration) * 2f64.log10();
    let poly = ((n as f64).powi(2) * m.ln() / alpha_u.ln()).ln() * ((3 * l - 3) as f64)
        / std::f64::consts::LN_10;
    base + poly
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bushy_count_small_cases() {
        // n = 1: j^1 · 0!/0! = j.
        assert!((log10_n_bushy(6, 1) - 6f64.log10()).abs() < 1e-9);
        // n = 2: j^3 · 2!/1! = 2·j³ = 432 for j = 6.
        assert!((log10_n_bushy(6, 2) - 432f64.log10()).abs() < 1e-9);
        // n = 3: j^5 · 4!/2! = 12·j^5.
        let expect = (12.0 * 6f64.powi(5)).log10();
        assert!((log10_n_bushy(6, 3) - expect).abs() < 1e-9);
    }

    #[test]
    fn figure7_ordering_holds() {
        // Figure 7 (j = 6, l = 3, m = 1e5): the RTA bounds always sit between
        // Selinger and the fine-precision variant, and the factorial EXA
        // eventually crosses above both RTA curves (by n = 10 in the figure).
        for n in 2..=10 {
            let rta_fine = log10_rta_time(6, n, 3, 1e5, 1.05);
            let rta_coarse = log10_rta_time(6, n, 3, 1e5, 1.5);
            let sel = log10_selinger_time(6, n);
            assert!(rta_fine > rta_coarse, "n = {n}");
            assert!(rta_coarse > sel, "n = {n}");
        }
        let exa10 = log10_exa_time(6, 10);
        assert!(exa10 > log10_rta_time(6, 10, 3, 1e5, 1.05));
        assert!(exa10 > log10_rta_time(6, 10, 3, 1e5, 1.5));
        // The crossover exists: for small n the fine RTA bound exceeds EXA.
        assert!(log10_rta_time(6, 2, 3, 1e5, 1.05) > log10_exa_time(6, 2));
    }

    #[test]
    fn exa_explodes_beyond_1e50() {
        // The paper's Figure 7 y-axis reaches 10^53 at n = 10.
        assert!(log10_exa_time(6, 10) > 45.0);
    }

    #[test]
    fn rta_gap_to_selinger_is_polynomial() {
        // Theorem 5 remark: RTA differs from Selinger only by N_stored³.
        for n in 2..=10 {
            let gap = log10_rta_time(6, n, 3, 1e5, 1.5) - log10_selinger_time(6, n);
            assert!((gap - 3.0 * log10_n_stored(1e5, n, 3, 1.5)).abs() < 1e-9);
        }
    }

    #[test]
    fn ira_iteration_time_doubles() {
        let a = log10_ira_iteration_time(6, 5, 9, 1e5, 1.5, 3);
        let b = log10_ira_iteration_time(6, 5, 9, 1e5, 1.5, 4);
        assert!((b - a - 2f64.log10()).abs() < 1e-9);
    }
}
