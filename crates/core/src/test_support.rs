//! Hidden test support: the **no-pruning reference DP** that the
//! props-aware soundness tests (`crates/core/tests/props_pruning_properties.rs`
//! and the workspace-level `tests/props_pruning.rs`) measure pruning
//! against. One shared implementation, so a cost-model change (new scan
//! operator, changed IdxNL precondition, new join configuration) cannot
//! silently leave one copy testing a stale plan space.
//!
//! Not part of the public API — the module is `#[doc(hidden)]` and its
//! behaviour may change without notice.

use moqo_cost::{CostVector, ObjectiveSet};
use moqo_costmodel::{CostModel, JoinKey};
use moqo_plan::{JoinOp, PlanId, PlanProps, ScanOp, SortOrder};

use crate::pareto::{PlanEntry, PlanSet, PruneStrategy};

/// The cost-Pareto frontier over **every** plan of a block, computed with
/// no pruning at all: the DP table stores every `(cost, props)` pair ever
/// generated per table set, and only the *complete* plans are reduced to
/// their frontier at the end (sound — nothing is downstream of a complete
/// plan). Exponential in the block size, hence the 3-relation cap.
///
/// # Panics
///
/// Panics if the block has more than 3 relations.
#[must_use]
pub fn reference_frontier(model: &CostModel<'_>, objectives: ObjectiveSet) -> Vec<CostVector> {
    let graph = model.graph;
    let n = graph.n_rels();
    assert!(n <= 3, "the no-pruning oracle explodes beyond 3 relations");
    let full = graph.full_mask() as usize;
    // The `bool` marks canonical index scans (IdxNL precondition).
    let mut table: Vec<Vec<(CostVector, PlanProps, bool)>> = vec![Vec::new(); 1 << n];

    // Phase 1: every applicable scan.
    for rel in 0..n {
        let t = model.catalog.table(graph.rels[rel].table);
        let mut ops = vec![ScanOp::SeqScan];
        for (ordinal, col) in t.columns.iter().enumerate() {
            if col.indexed {
                ops.push(ScanOp::IndexScan {
                    column: ordinal as u16,
                });
            }
        }
        if model.params.enable_sampling {
            for rate_pct in moqo_plan::SAMPLING_RATES_PCT {
                ops.push(ScanOp::SamplingScan { rate_pct });
            }
        }
        for op in ops {
            if let Some((cost, props)) = model.scan_cost(rel, op) {
                table[1 << rel].push((cost, props, matches!(op, ScanOp::IndexScan { .. })));
            }
        }
    }

    // Phase 2: every split, every operand pair, every join operator —
    // honouring the same Cartesian-product heuristic as the real DP.
    let mut masks: Vec<u32> = (1..(1u32 << n)).filter(|m| m.count_ones() >= 2).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        let mut splits = Vec::new();
        let mut connected = Vec::new();
        let mut m1 = (mask - 1) & mask;
        while m1 != 0 {
            let m2 = mask ^ m1;
            splits.push((m1, m2));
            if graph.connects(m1, m2) {
                connected.push((m1, m2));
            }
            m1 = (m1 - 1) & mask;
        }
        let splits = if connected.is_empty() {
            splits
        } else {
            connected
        };
        let mut out = Vec::new();
        for (m1, m2) in splits {
            let key = graph.edges.iter().find(|e| e.crosses(m1, m2)).map(|e| {
                let left_in_m1 = m1 & (1u32 << e.left_rel) != 0;
                let (lr, lc, rr, rc) = if left_in_m1 {
                    (e.left_rel, e.left_col, e.right_rel, e.right_col)
                } else {
                    (e.right_rel, e.right_col, e.left_rel, e.left_col)
                };
                JoinKey {
                    left_rel: lr,
                    left_col: lc,
                    right_rel: rr,
                    right_col: rc,
                    inner_indexed: model.catalog.table(graph.rels[rr].table).column(rc).indexed,
                }
            });
            for left in &table[m1 as usize] {
                for right in &table[m2 as usize] {
                    let right_canonical = right.2
                        && key.as_ref().is_some_and(|k| {
                            right.1.rels == 1u32 << k.right_rel
                                && right.1.order == SortOrder::on(k.right_rel, k.right_col)
                        });
                    for op in JoinOp::all_configurations() {
                        if let Some((cost, props)) = model.join_cost(
                            op,
                            (&left.0, &left.1),
                            (&right.0, &right.1),
                            key.as_ref(),
                            right_canonical,
                        ) {
                            out.push((cost, props, false));
                        }
                    }
                }
            }
        }
        table[mask as usize] = out;
    }

    // Every complete plan was generated without any pruning decision; for
    // complete plans the cost vector is all that matters, so extracting
    // the frontier incrementally with exact cost-only pruning is sound —
    // and far cheaper than a quadratic scan over the final candidates.
    let mut frontier = PlanSet::new();
    let strategy = PruneStrategy::exact();
    for (i, (cost, props, _)) in table[full].iter().enumerate() {
        frontier.prune_insert(
            PlanEntry {
                cost: *cost,
                props: *props,
                plan: PlanId(i as u32),
            },
            &strategy,
            objectives,
        );
    }
    frontier.iter().map(|e| e.cost).collect()
}
