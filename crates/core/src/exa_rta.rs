//! The exact algorithm (EXA, Algorithm 1) and the representative-tradeoffs
//! algorithm (RTA, Algorithm 2) for one query block.
//!
//! Both share `FindParetoPlans` ([`crate::dp`]); they differ only in the
//! pruning precision: EXA prunes with exact dominance, the RTA with
//! approximate dominance at internal precision `α_i = α_U^(1/|Q|)`, chosen
//! so that the recursive error accumulation over at most `|Q|` combination
//! levels stays within `α_U` (Theorem 3's induction).
//!
//! Both entry points derive their [`PruneMode`] through [`PruneMode::auto`]:
//! props-aware pruning exactly when sampling scans are enabled and
//! `TupleLoss` is unselected — the regime in which plan cardinality leaks
//! past the cost vector and cost-only pruning would void Lemma 2 /
//! Theorem 3 — and the paper's cost-only rule everywhere else.

use moqo_cost::{ObjectiveSet, Preference};
use moqo_costmodel::CostModel;

use crate::budget::Deadline;
use crate::dp::{find_pareto_plans, DpConfig, DpResult};
use crate::pareto::PruneMode;

/// The internal pruning precision the RTA derives from the user precision:
/// `α_i = α_U^(1/n)` for a block of `n` tables (Algorithm 2,
/// `FindParetoPlans`).
///
/// # Panics
///
/// Debug-asserts `α_U ≥ 1` and `n ≥ 1`.
#[must_use]
pub fn rta_internal_precision(alpha_u: f64, n_tables: usize) -> f64 {
    debug_assert!(alpha_u >= 1.0 && n_tables >= 1);
    alpha_u.powf(1.0 / n_tables as f64)
}

/// Runs the exact algorithm on one query block, returning the full Pareto
/// plan set for the block (select a plan with
/// [`crate::select_best`]).
#[must_use]
pub fn exa(model: &CostModel<'_>, preference: &Preference, deadline: &Deadline) -> DpResult {
    run(model, preference.objectives, preference, 1.0, deadline)
}

/// Runs the representative-tradeoffs algorithm with user precision
/// `alpha_u ≥ 1` on one query block, returning an `α_U`-approximate Pareto
/// plan set (Theorem 3).
///
/// # Panics
///
/// Panics if `alpha_u < 1`.
#[must_use]
pub fn rta(
    model: &CostModel<'_>,
    preference: &Preference,
    alpha_u: f64,
    deadline: &Deadline,
) -> DpResult {
    assert!(alpha_u >= 1.0, "the user precision must satisfy α_U ≥ 1");
    let alpha_i = rta_internal_precision(alpha_u, model.graph.n_rels());
    run(model, preference.objectives, preference, alpha_i, deadline)
}

/// Shared driver: `FindParetoPlans` with a given internal precision and
/// the auto-selected pruning mode.
pub(crate) fn run(
    model: &CostModel<'_>,
    objectives: ObjectiveSet,
    preference: &Preference,
    alpha_internal: f64,
    deadline: &Deadline,
) -> DpResult {
    let config = DpConfig::approximate(alpha_internal)
        .with_prune_mode(PruneMode::auto(model.params.enable_sampling, objectives));
    find_pareto_plans(model, objectives, &config, &preference.weights, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_best;
    use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
    use moqo_cost::{Objective, Preference};
    use moqo_costmodel::CostModelParams;

    fn setup() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("orders", 30_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 30_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 120_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 30_000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat)
            .rel("orders", 1.0)
            .rel("lineitem", 0.5)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (params, cat, graph)
    }

    fn pref() -> Preference {
        Preference::over(moqo_cost::ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
            Objective::TupleLoss,
        ]))
        .weight(Objective::TotalTime, 1.0)
        .weight(Objective::BufferFootprint, 1e-6)
        .weight(Objective::TupleLoss, 100.0)
    }

    #[test]
    fn internal_precision_is_nth_root() {
        assert!((rta_internal_precision(2.0, 1) - 2.0).abs() < 1e-12);
        let a = rta_internal_precision(2.0, 4);
        assert!((a.powi(4) - 2.0).abs() < 1e-9);
        assert_eq!(rta_internal_precision(1.0, 7), 1.0);
    }

    #[test]
    fn rta_weighted_cost_within_alpha_of_exa() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let preference = pref();
        let deadline = Deadline::unlimited();
        let exact = exa(&model, &preference, &deadline);
        let opt = select_best(&exact.final_plans, &preference).unwrap();
        for alpha_u in [1.05, 1.5, 2.0, 4.0] {
            let approx = rta(&model, &preference, alpha_u, &Deadline::unlimited());
            let best = select_best(&approx.final_plans, &preference).unwrap();
            let rho = preference.weighted_cost(&best.cost) / preference.weighted_cost(&opt.cost);
            assert!(
                rho <= alpha_u + 1e-9,
                "α_U = {alpha_u}: relative cost {rho} exceeds the guarantee"
            );
        }
    }

    #[test]
    fn rta_produces_approximate_pareto_set() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let preference = pref();
        let alpha_u = 1.5;
        let exact = exa(&model, &preference, &Deadline::unlimited());
        let approx = rta(&model, &preference, alpha_u, &Deadline::unlimited());
        let exact_vectors: Vec<_> = exact.final_plans.iter().map(|e| e.cost).collect();
        let approx_vectors: Vec<_> = approx.final_plans.iter().map(|e| e.cost).collect();
        assert!(
            moqo_cost::pareto_front::is_approx_pareto_set(
                &approx_vectors,
                &exact_vectors,
                alpha_u + 1e-9,
                preference.objectives
            ),
            "RTA set must α_U-cover the exact frontier"
        );
    }

    #[test]
    fn exa_equals_rta_with_alpha_one() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let preference = pref();
        let exact = exa(&model, &preference, &Deadline::unlimited());
        let rta1 = rta(&model, &preference, 1.0, &Deadline::unlimited());
        assert_eq!(exact.final_plans.len(), rta1.final_plans.len());
    }

    #[test]
    #[should_panic(expected = "α_U ≥ 1")]
    fn alpha_below_one_rejected() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let _ = rta(&model, &pref(), 0.5, &Deadline::unlimited());
    }
}
