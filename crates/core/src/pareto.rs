//! The `Prune` procedure of Algorithms 1 and 2: incremental (approximate)
//! Pareto plan sets.
//!
//! A [`PlanSet`] holds the plans generated so far for one `(table set,
//! output order)` group. Insertion follows the paper exactly:
//!
//! * **EXA** (Algorithm 1): insert unless an existing plan *dominates* the
//!   new one; then delete stored plans the new plan dominates.
//! * **RTA** (Algorithm 2): insert unless an existing plan *approximately
//!   dominates* the new one with internal precision `α_i`; deletions still
//!   use exact dominance. The paper's §6.2 remark explains that also
//!   deleting approximately dominated plans would let the stored set drift
//!   arbitrarily far from the frontier — that unsound variant is available
//!   behind [`PruneStrategy::approx_deletion`] purely as an ablation.
//!
//! Orthogonally to the precision, a [`PruneMode`] selects the dominance
//! relation: cost-only (the paper's rule) or props-aware, which refuses to
//! discard a plan whose physical properties (row count, sort order) are
//! better than its dominator's. Props-aware mode is what keeps pruning
//! sound when sampling scans let cardinality leak past the cost vector;
//! see [`PruneMode::auto`] for the selection rule every caller shares.

use std::cell::Cell;
use std::collections::HashMap;

use moqo_cost::dominance::{
    approx_dominates, approx_dominates_with_props, dominates, dominates_with_props,
    grid_cell_coord, grid_cell_key, grid_cell_ratio, grid_cell_shift, PropsClassId, PropsKey,
};
use moqo_cost::{CostVector, Objective, ObjectiveSet, NUM_OBJECTIVES};
use moqo_plan::{PlanId, PlanProps, SortOrder};

/// One stored plan: its cost vector, physical properties and arena id.
/// Equality is bitwise over cost, props and id — two entries are equal only
/// when they are the same plan in the same arena layout, which is exactly
/// the "byte-identical fronts" property the deterministic tests assert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Full nine-dimensional cost vector.
    pub cost: CostVector,
    /// Physical properties (rows, width, order, sampling factor).
    pub props: PlanProps,
    /// Plan node in the arena.
    pub plan: PlanId,
}

/// Which dominance relation `Prune` discards plans under.
///
/// Cost-only pruning is the paper's original rule; it is sound exactly when
/// the selected cost components determine every downstream cost. Sampling
/// scans break that: plan cardinality then varies within a table set, feeds
/// every parent operator's formula, and — when [`Objective::TupleLoss`] is
/// not selected — is invisible to the cost vector, so a cost-dominated plan
/// with fewer rows may still lead to the cheapest complete plan.
/// Props-aware pruning additionally requires the dominator's [`PropsKey`]
/// (row count, interest properties) to cover the discarded plan's, which
/// restores Lemma 2 / Theorem 3 in that regime at the price of larger
/// stored sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PruneMode {
    /// Discard on (approximate) cost dominance alone.
    #[default]
    CostOnly,
    /// Discard only when dominated in cost *and* covered in physical
    /// properties.
    PropsAware,
}

impl PruneMode {
    /// The mode under which pruning is sound for a given configuration:
    /// props-aware exactly when sampling scans are in the plan space and
    /// `TupleLoss` is not among the selected objectives (the only regime in
    /// which cardinality leaks past the cost vector), cost-only otherwise.
    /// Every algorithm entry point and the serving layer derive their mode
    /// through this one function so all pruning sites agree.
    #[must_use]
    pub fn auto(sampling_enabled: bool, objectives: ObjectiveSet) -> Self {
        if sampling_enabled && !objectives.contains(Objective::TupleLoss) {
            PruneMode::PropsAware
        } else {
            PruneMode::CostOnly
        }
    }
}

/// The [`PropsKey`] of a plan's physical properties: output rows plus the
/// sort order encoded as the opaque interest tag ([`SortOrder::None`] maps
/// to [`PropsKey::NO_INTEREST`], so any sorted plan covers an unsorted one
/// at equal-or-fewer rows).
#[must_use]
pub fn props_key(props: &PlanProps) -> PropsKey {
    let interest = match props.order {
        SortOrder::None => PropsKey::NO_INTEREST,
        // 1 + packed (rel, col): never collides with NO_INTEREST.
        SortOrder::Col { rel, col } => 1 + ((rel as u64) << 16 | u64::from(col)),
    };
    PropsKey {
        rows: props.rows,
        interest,
    }
}

/// Pruning configuration shared by one dynamic-programming run.
#[derive(Debug, Clone, Copy)]
pub struct PruneStrategy {
    /// Internal approximation precision `α_i ≥ 1`; `1.0` yields the exact
    /// algorithm's pruning.
    pub alpha_internal: f64,
    /// Unsound ablation: also delete stored plans that the new plan merely
    /// *approximately* dominates (destroys the near-optimality guarantee,
    /// §6.2 remark).
    pub approx_deletion: bool,
    /// Dominance relation plans are discarded under.
    pub mode: PruneMode,
}

impl PruneStrategy {
    /// Exact cost-only pruning (EXA).
    #[must_use]
    pub fn exact() -> Self {
        PruneStrategy {
            alpha_internal: 1.0,
            approx_deletion: false,
            mode: PruneMode::CostOnly,
        }
    }

    /// Approximate cost-only pruning with internal precision
    /// `alpha_internal` (RTA).
    #[must_use]
    pub fn approximate(alpha_internal: f64) -> Self {
        debug_assert!(alpha_internal >= 1.0);
        PruneStrategy {
            alpha_internal,
            approx_deletion: false,
            mode: PruneMode::CostOnly,
        }
    }

    /// Replaces the pruning mode (builder style).
    #[must_use]
    pub fn with_mode(mut self, mode: PruneMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether `candidate` is discarded in favour of `incumbent` under this
    /// strategy's mode and precision.
    #[inline]
    fn rejects(
        &self,
        incumbent: &PlanEntry,
        cost: &CostVector,
        key: &PropsKey,
        objectives: ObjectiveSet,
    ) -> bool {
        match self.mode {
            PruneMode::CostOnly => {
                approx_dominates(&incumbent.cost, cost, self.alpha_internal, objectives)
            }
            PruneMode::PropsAware => approx_dominates_with_props(
                &incumbent.cost,
                &props_key(&incumbent.props),
                cost,
                key,
                self.alpha_internal,
                objectives,
            ),
        }
    }

    /// Whether a stored plan is deleted by an inserted one (exact dominance
    /// unless the `approx_deletion` ablation is on).
    #[inline]
    fn deletes(
        &self,
        inserted: &PlanEntry,
        key: &PropsKey,
        stored: &PlanEntry,
        objectives: ObjectiveSet,
    ) -> bool {
        match (self.mode, self.approx_deletion) {
            (PruneMode::CostOnly, false) => dominates(&inserted.cost, &stored.cost, objectives),
            (PruneMode::CostOnly, true) => approx_dominates(
                &inserted.cost,
                &stored.cost,
                self.alpha_internal,
                objectives,
            ),
            (PruneMode::PropsAware, false) => dominates_with_props(
                &inserted.cost,
                key,
                &stored.cost,
                &props_key(&stored.props),
                objectives,
            ),
            (PruneMode::PropsAware, true) => approx_dominates_with_props(
                &inserted.cost,
                key,
                &stored.cost,
                &props_key(&stored.props),
                self.alpha_internal,
                objectives,
            ),
        }
    }
}

/// Which physical layout a [`PlanSet`] keeps its frontier in.
///
/// All three layouts are observationally identical — same rejections, same
/// deletions, same canonical iteration order, bit for bit — because the
/// indexed engine evaluates exactly the same dominance predicates as the
/// plain scan and rejection/deletion are pure per-entry predicates (scan
/// order cannot change an existential result). The layout only moves the
/// constant factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontierStructure {
    /// Start on the plain sorted vector and engage the indexed engine once
    /// the set outgrows [`PlanSet::INDEX_ENGAGE_LEN`]. The default:
    /// 2–3-objective micro-fronts never pay for the index.
    #[default]
    Adaptive,
    /// The plain sorted vector only (the seed structure).
    Plain,
    /// Engage the indexed engine from the first insertion (bench and
    /// property-test knob; also what [`FrontierStructure::Adaptive`]
    /// becomes past the size cutoff).
    Indexed,
}

/// Probe-outcome counters of one [`PlanSet`] (or, summed, of a run): how
/// often `would_reject` was resolved by the grid-bucket fast path versus
/// falling through to a cutoff scan. The ratio is the index's
/// effectiveness measure reported by `bench_snapshot`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierProbes {
    /// Probes answered by a verified occupant of the candidate's own grid
    /// cell — O(bucket) work instead of a frontier scan.
    pub grid_hits: u64,
    /// Probes that fell through to a scan: the plain sorted-prefix scan,
    /// or (indexed mode) the class-filtered per-class cutoff scans.
    pub scan_probes: u64,
}

/// An incrementally pruned plan set for one `(table set, order)` group.
///
/// The canonical representation keeps entries sorted by the cost in the
/// *first* selected objective. Dominance is monotone per dimension, so the
/// sort order yields binary-search cutoffs for both `prune_insert` scans:
/// only a prefix of the set can (approximately) dominate a new plan, and
/// only a suffix can be dominated by it. The same set must always be probed
/// with the same objective set and precision (true for every
/// dynamic-programming run, which fixes both up front).
///
/// Small sets store exactly that sorted vector. Past
/// [`PlanSet::INDEX_ENGAGE_LEN`] (or immediately, with
/// [`FrontierStructure::Indexed`]) the set upgrades to a layered engine
/// behind the same API:
///
/// * **slot store + order vector** — entries live in insertion slots; the
///   canonical order is a parallel `u32` rank vector plus a dense key
///   vector, so a sorted insertion moves 12 bytes per displaced rank
///   instead of a full [`PlanEntry`];
/// * **dense cost rows** — the selected cost components of every slot,
///   projected into a flat `f64` row, so dominance checks run over
///   contiguous floats without per-check [`ObjectiveSet`] iteration;
/// * **two-level class fronts** (props-aware mode) — members partition
///   into [`PropsClassId`] classes, each a sub-front with its own sorted
///   first-objective cutoff; rejection scans only classes that cover the
///   candidate and deletion only classes the candidate covers, instead of
///   filtering every foreign cardinality class entry by entry;
/// * **grid-bucket index** — cost rows quantize into multiplicative
///   `α^(1/k)` cells (the ε-Pareto grid); `would_reject` first probes the
///   candidate's own cell and verifies any occupant against the exact
///   dominance predicate, resolving duplicate-heavy candidate streams in
///   O(1) without a scan.
///
/// Every accelerated path re-verifies with the same predicates the plain
/// scan uses, so fronts stay bit-identical across layouts — the engine is
/// provably a pure perf change (see `frontier_engine_properties` tests).
#[derive(Debug, Clone, Default)]
pub struct PlanSet {
    /// Plain layout: the sorted entries. Empty once `index` is engaged.
    entries: Vec<PlanEntry>,
    /// The layered engine; `None` while the set is small (plain layout).
    index: Option<Box<FrontierIndex>>,
    structure: FrontierStructure,
    grid_hits: Cell<u64>,
    scan_probes: Cell<u64>,
}

impl PlanSet {
    /// Set size at which [`FrontierStructure::Adaptive`] sets switch from
    /// the plain sorted vector to the indexed engine. Below this, the
    /// upgrade's bookkeeping costs more than the scans it saves: the DP
    /// chain workloads top out below ~90 entries per order group and
    /// measure fastest fully plain, while the high-objective insert
    /// streams (fronts of 400–1100) gain 2–4× from the engine — 128 keeps
    /// each regime on its better side.
    pub const INDEX_ENGAGE_LEN: usize = 128;

    /// An empty set with the [`FrontierStructure::Adaptive`] layout.
    #[must_use]
    pub fn new() -> Self {
        PlanSet::default()
    }

    /// An empty set with a forced layout (bench/property-test knob).
    #[must_use]
    pub fn with_structure(structure: FrontierStructure) -> Self {
        PlanSet {
            structure,
            ..PlanSet::default()
        }
    }

    /// Probe-outcome counters accumulated by this set's `would_reject`
    /// calls.
    #[must_use]
    pub fn probes(&self) -> FrontierProbes {
        FrontierProbes {
            grid_hits: self.grid_hits.get(),
            scan_probes: self.scan_probes.get(),
        }
    }

    /// Whether the indexed engine is currently engaged (test helper).
    #[must_use]
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// The rejection test of `prune_insert` alone: does some stored plan
    /// (approximately) dominate the candidate — in props-aware mode, while
    /// also covering its physical properties? Lets callers that must
    /// allocate per-candidate resources (e.g. arena nodes) skip doomed
    /// candidates without mutating the set. A dominating plan needs
    /// `e ≤ α·key` in the first objective regardless of mode (cost
    /// dominance stays necessary), so the sorted order keeps its
    /// binary-search cutoff; props-aware mode merely partitions what the
    /// scanned prefix may reject.
    #[must_use]
    pub fn would_reject(
        &self,
        cost: &CostVector,
        props: &PlanProps,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> bool {
        if let Some(ix) = self.index.as_deref() {
            if ix.matches(strategy, objectives) {
                return self.indexed_reject(ix, cost, props, strategy);
            }
            // Probe signature drift (an index keyed for other objectives or
            // precision): verified full scan. The algorithms never take
            // this path — each run fixes strategy and objectives — but
            // correctness must not depend on that.
            self.scan_probes.set(self.scan_probes.get() + 1);
            let candidate_key = props_key(props);
            return ix.order.iter().any(|&s| {
                strategy.rejects(&ix.slots[s as usize], cost, &candidate_key, objectives)
            });
        }
        self.scan_probes.set(self.scan_probes.get() + 1);
        let first = objectives.iter().next();
        let key_of = |e: &PlanEntry| first.map_or(0.0, |o| e.cost.get(o));
        let alpha = strategy.alpha_internal;
        let cutoff = alpha * first.map_or(0.0, |o| cost.get(o));
        let candidate_key = props_key(props);
        for e in &self.entries {
            if key_of(e) > cutoff {
                break;
            }
            if strategy.rejects(e, cost, &candidate_key, objectives) {
                return true;
            }
        }
        false
    }

    /// The indexed `would_reject`: grid-bucket fast path first, then the
    /// class-filtered (props-aware) or plain (cost-only) cutoff scan over
    /// the dense cost rows. Evaluates exactly the predicates of the plain
    /// scan — see the per-branch comments for why each shortcut preserves
    /// them bit for bit.
    fn indexed_reject(
        &self,
        ix: &FrontierIndex,
        cost: &CostVector,
        props: &PlanProps,
        strategy: &PruneStrategy,
    ) -> bool {
        let alpha = strategy.alpha_internal;
        let k = ix.sel.len();
        // `sc[i] = α · c^o` is the right-hand side `approx_dominates`
        // computes per check; hoisting it is the same multiplication once.
        let mut sc = [0.0f64; NUM_OBJECTIVES];
        for (i, &o) in ix.sel.iter().enumerate() {
            sc[i] = alpha * cost.get(o);
        }
        let candidate_key = props_key(props);

        // Grid fast path: with cell ratio α^(1/k) any occupant of the
        // candidate's own cell α-dominates it in cost; each occupant is
        // still verified against the exact rejection predicate, which keeps
        // the path sound for α = 1 (where occupancy alone proves nothing)
        // and makes hash collisions harmless. A hit equals "∃ stored plan
        // that rejects" — the same existential the scan decides.
        if !ix.grid.is_empty() {
            if let Some(bucket) = ix.grid.get(&ix.cell_of_cost(cost)) {
                for &slot in bucket {
                    if strategy.rejects(
                        &ix.slots[slot as usize],
                        cost,
                        &candidate_key,
                        ix.objectives,
                    ) {
                        self.grid_hits.set(self.grid_hits.get() + 1);
                        return true;
                    }
                }
            }
        }

        self.scan_probes.set(self.scan_probes.get() + 1);
        // The plain scan visits entries while `key ≤ α·c_first` — exactly
        // the sorted prefix below. Within it, each entry passes a
        // monotonicity-preserving `f32` pre-filter over the remaining
        // dimensions (`f64→f32` rounding keeps ≤, so no true dominator is
        // filtered out); survivors are decided by the very predicate the
        // plain scan runs, which is what keeps layouts bit-identical.
        let cutoff = if k > 0 { sc[0] } else { 0.0 };
        let t = ix.tail_dims;
        let mut sc32 = [0.0f32; NUM_OBJECTIVES];
        for i in 0..t {
            sc32[i] = sc[i + 1] as f32;
        }
        let sc32 = &sc32[..t];
        if ix.use_class_scan() {
            // Two-level scan: a class-level `covers` test (class keys are
            // bitwise equal across members, so one test decides for all)
            // gates each per-class sorted cutoff scan.
            ix.classes.iter().any(|class| {
                class.key.covers(&candidate_key) && {
                    let end = class.keys.partition_point(|&key| key <= cutoff);
                    (0..end).any(|j| {
                        tail_filter_le(&class.tail[j * t..j * t + t], sc32)
                            && strategy.rejects(
                                &ix.slots[class.slots[j] as usize],
                                cost,
                                &candidate_key,
                                ix.objectives,
                            )
                    })
                }
            })
        } else {
            // Global scan over the canonical order (all of cost-only mode,
            // and props-aware fronts whose classes are too fine to pay for
            // per-class walks — `rejects` enforces props coverage either
            // way, so routing never changes the answer).
            let end = ix.keys.partition_point(|&key| key <= cutoff);
            (0..end).any(|r| {
                tail_filter_le(&ix.tail[r * t..r * t + t], sc32)
                    && strategy.rejects(
                        &ix.slots[ix.order[r] as usize],
                        cost,
                        &candidate_key,
                        ix.objectives,
                    )
            })
        }
    }

    /// The `Prune(P, pN)` procedure. Returns `true` if the new plan was
    /// inserted, `false` if it was discarded. The net change in stored-entry
    /// count is `1 − deleted` on insertion and `0` otherwise; the caller
    /// tracks memory via [`PlanSet::len`].
    pub fn prune_insert(
        &mut self,
        entry: PlanEntry,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> bool {
        // "Check whether new plan useful": some stored plan (approximately)
        // dominates the new one?
        if self.would_reject(&entry.cost, &entry.props, strategy, objectives) {
            return false;
        }
        self.insert_unrejected(entry, strategy, objectives);
        true
    }

    /// The insertion half of [`PlanSet::prune_insert`], for callers that
    /// already ran [`PlanSet::would_reject`] on `entry.cost` (e.g. to skip
    /// arena allocation for doomed candidates) — probing twice would double
    /// the dominant cost of the insert path. Deletes the stored plans the
    /// new plan dominates and inserts it in sorted position, returning the
    /// number of deletions.
    ///
    /// Inserting an entry that *would* have been rejected breaks the set's
    /// antichain invariant; it is the caller's contract to probe first.
    pub fn insert_unrejected(
        &mut self,
        entry: PlanEntry,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> usize {
        debug_assert!(!self.would_reject(&entry.cost, &entry.props, strategy, objectives));
        if self.index.is_none() {
            let deleted = self.plain_insert(entry, strategy, objectives);
            let engage = match self.structure {
                FrontierStructure::Adaptive => self.entries.len() >= Self::INDEX_ENGAGE_LEN,
                FrontierStructure::Plain => false,
                FrontierStructure::Indexed => true,
            };
            if engage {
                let entries = std::mem::take(&mut self.entries);
                self.index = Some(Box::new(FrontierIndex::build(
                    entries, strategy, objectives,
                )));
            }
            return deleted;
        }
        if !self
            .index
            .as_deref()
            .expect("checked above")
            .matches(strategy, objectives)
        {
            // Re-key under the new probe signature (correctness fallback;
            // the algorithms fix strategy and objectives per run).
            let entries: Vec<PlanEntry> = self.iter().copied().collect();
            self.index = Some(Box::new(FrontierIndex::build(
                entries, strategy, objectives,
            )));
        }
        self.index
            .as_deref_mut()
            .expect("engaged above")
            .insert(entry, strategy)
    }

    /// The seed's insertion path on the plain sorted vector.
    fn plain_insert(
        &mut self,
        entry: PlanEntry,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> usize {
        let first = objectives.iter().next();
        let key_of = |e: &PlanEntry| first.map_or(0.0, |o| e.cost.get(o));
        let key = key_of(&entry);
        let alpha = strategy.alpha_internal;
        let inserted_key = props_key(&entry.props);

        // "Delete dominated plans". Exact dominance unless the unsound
        // ablation is requested; props-aware mode additionally requires the
        // new plan to cover the victim's props. A deletable plan needs a
        // first-objective cost of at least `key` (or `key/α` for the
        // ablation) in every mode, so only a sorted suffix qualifies;
        // compact it in place, preserving order.
        let delete_start = if strategy.approx_deletion {
            self.entries.partition_point(|e| key_of(e) < key / alpha)
        } else {
            self.entries.partition_point(|e| key_of(e) < key)
        };
        let mut kept = delete_start;
        for read in delete_start..self.entries.len() {
            let doomed = strategy.deletes(&entry, &inserted_key, &self.entries[read], objectives);
            if !doomed {
                self.entries.swap(kept, read);
                kept += 1;
            }
        }
        let deleted = self.entries.len() - kept;
        self.entries.truncate(kept);

        let pos = self.entries.partition_point(|e| key_of(e) <= key);
        self.entries.insert(pos, entry);
        deleted
    }

    /// Number of stored plans.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.index.as_deref() {
            Some(ix) => ix.order.len(),
            None => self.entries.len(),
        }
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the stored plans in canonical (first-objective sorted)
    /// order — identical across layouts.
    pub fn iter(&self) -> PlanSetIter<'_> {
        PlanSetIter { set: self, rank: 0 }
    }

    /// Invariant check (test helper): with exact pruning no entry may
    /// strictly dominate another.
    #[must_use]
    pub fn is_antichain(&self, objectives: ObjectiveSet) -> bool {
        let entries: Vec<&PlanEntry> = self.iter().collect();
        for (i, a) in entries.iter().enumerate() {
            for (j, b) in entries.iter().enumerate() {
                if i != j && moqo_cost::dominance::strictly_dominates(&a.cost, &b.cost, objectives)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Invariant check (test helper) for props-aware exact pruning: no
    /// entry may strictly dominate another in cost *while also covering*
    /// its props key — plain cost domination between entries of different
    /// props classes is expected and sound.
    #[must_use]
    pub fn is_props_antichain(&self, objectives: ObjectiveSet) -> bool {
        let entries: Vec<&PlanEntry> = self.iter().collect();
        for (i, a) in entries.iter().enumerate() {
            for (j, b) in entries.iter().enumerate() {
                if i != j
                    && props_key(&a.props).covers(&props_key(&b.props))
                    && moqo_cost::dominance::strictly_dominates(&a.cost, &b.cost, objectives)
                {
                    return false;
                }
            }
        }
        true
    }
}

/// Iterator over a [`PlanSet`] in canonical order, across both layouts.
#[derive(Debug)]
pub struct PlanSetIter<'a> {
    set: &'a PlanSet,
    rank: usize,
}

impl<'a> Iterator for PlanSetIter<'a> {
    type Item = &'a PlanEntry;

    fn next(&mut self) -> Option<&'a PlanEntry> {
        let r = self.rank;
        self.rank += 1;
        match self.set.index.as_deref() {
            Some(ix) => ix.order.get(r).map(|&s| &ix.slots[s as usize]),
            None => self.set.entries.get(r),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.set.len().saturating_sub(self.rank);
        (left, Some(left))
    }
}

impl ExactSizeIterator for PlanSetIter<'_> {}

/// Branchless `row ≤ bound` over parallel `f32` tails: the conservative
/// pre-filter of the reject scan. `f64→f32` rounding is monotone, so a
/// stored vector that truly dominates always passes; a pass is *not* a
/// dominance proof (rounding can create ties) — callers verify survivors
/// with the exact predicate. Trivially true for empty tails (`k ≤ 1`),
/// matching `approx_dominates` over zero remaining dimensions.
#[inline]
fn tail_filter_le(row: &[f32], bound: &[f32]) -> bool {
    debug_assert_eq!(row.len(), bound.len());
    row.iter()
        .zip(bound)
        .fold(true, |acc, (a, b)| acc & (a <= b))
}

/// Branchless `row ≥ bound`: the deletion-side mirror of
/// [`tail_filter_le`] (a victim's stored tail must weakly exceed the
/// inserted tail in every remaining dimension).
#[inline]
fn tail_filter_ge(row: &[f32], bound: &[f32]) -> bool {
    debug_assert_eq!(row.len(), bound.len());
    row.iter()
        .zip(bound)
        .fold(true, |acc, (a, b)| acc & (a >= b))
}

/// One per-[`PropsClassId`] sub-front of the two-level structure: the
/// members (slots) of one bitwise-exact props class, sorted by their
/// first-objective key so the class keeps its own binary-search cutoff,
/// with its own rank-major `f32` tail mirror for the pre-filter.
#[derive(Debug, Clone)]
struct ClassFront {
    /// The exact props key every member shares.
    key: PropsKey,
    /// Member slots, sorted by `keys`.
    slots: Vec<u32>,
    /// First-objective keys parallel to `slots`.
    keys: Vec<f64>,
    /// Rank-major `f32` tail rows parallel to `slots` (stride
    /// [`FrontierIndex::tail_dims`]).
    tail: Vec<f32>,
}

/// The indexed frontier engine (see [`PlanSet`] docs for the layout).
///
/// The accelerator caches are keyed to one probe signature `(objectives,
/// α, mode)` — the quantities every cutoff, dense row and grid cell was
/// derived from. Probes under a different signature fall back to verified
/// full scans; a mutation under a different signature rebuilds the engine.
#[derive(Debug, Clone)]
struct FrontierIndex {
    objectives: ObjectiveSet,
    alpha_bits: u64,
    mode: PruneMode,
    /// Selected objectives, in index order (`k = sel.len()`).
    sel: Vec<Objective>,
    /// `k − 1`: tail dimensions per pre-filter row (dimension 0 lives in
    /// `keys` as the binary-search axis).
    tail_dims: usize,
    /// Bit shift realizing the grid's α^(1/k) cell ratio.
    cell_shift: u32,
    /// Entries by slot (insertion order, holes on `free`).
    slots: Vec<PlanEntry>,
    /// Slot-ordered props keys.
    props: Vec<PropsKey>,
    /// Slot-ordered grid cell keys (cached so `detach` never re-projects).
    cells: Vec<u64>,
    /// Reusable slots freed by deletions.
    free: Vec<u32>,
    /// Canonical order: rank → slot.
    order: Vec<u32>,
    /// First-objective keys parallel to `order` (the binary-search axis).
    keys: Vec<f64>,
    /// Rank-major `f32` tail rows parallel to `order` (stride `tail_dims`):
    /// the contiguous pre-filter mirror the scans stream over.
    tail: Vec<f32>,
    /// Two-level class fronts, in class-creation order (props-aware only).
    classes: Vec<ClassFront>,
    /// Class lookup by exact identity (props-aware only).
    class_ids: HashMap<PropsClassId, u32>,
    /// Grid buckets: cell key → occupant slots.
    grid: HashMap<u64, Vec<u32>>,
    /// Scratch buffer for deletion victims (slots).
    victims: Vec<u32>,
}

impl FrontierIndex {
    /// Builds the engine over existing entries (normally already in
    /// canonical order; a stable re-sort makes the rebuild path safe too —
    /// and is the identity when the input is already sorted).
    fn build(entries: Vec<PlanEntry>, strategy: &PruneStrategy, objectives: ObjectiveSet) -> Self {
        let sel: Vec<Objective> = objectives.iter().collect();
        let k = sel.len();
        let ratio = grid_cell_ratio(strategy.alpha_internal, k.max(1));
        let mut ix = FrontierIndex {
            objectives,
            alpha_bits: strategy.alpha_internal.to_bits(),
            mode: strategy.mode,
            tail_dims: k.saturating_sub(1),
            cell_shift: grid_cell_shift(ratio),
            sel,
            slots: Vec::with_capacity(entries.len()),
            props: Vec::with_capacity(entries.len()),
            cells: Vec::with_capacity(entries.len()),
            free: Vec::new(),
            order: Vec::with_capacity(entries.len()),
            keys: Vec::with_capacity(entries.len()),
            tail: Vec::with_capacity(entries.len() * k.saturating_sub(1)),
            classes: Vec::new(),
            class_ids: HashMap::new(),
            grid: HashMap::new(),
            victims: Vec::new(),
        };
        let first = ix.sel.first().copied();
        let mut sorted = entries;
        sorted.sort_by(|a, b| {
            let ka = first.map_or(0.0, |o| a.cost.get(o));
            let kb = first.map_or(0.0, |o| b.cost.get(o));
            ka.partial_cmp(&kb).expect("keys are not NaN")
        });
        for entry in sorted {
            let key = first.map_or(0.0, |o| entry.cost.get(o));
            let row = ix.tail_row(&entry.cost);
            let slot = ix.attach(entry, key, &row[..ix.tail_dims]);
            ix.order.push(slot);
            ix.keys.push(key);
            ix.tail.extend_from_slice(&row[..ix.tail_dims]);
        }
        ix
    }

    fn matches(&self, strategy: &PruneStrategy, objectives: ObjectiveSet) -> bool {
        self.objectives == objectives
            && self.alpha_bits == strategy.alpha_internal.to_bits()
            && self.mode == strategy.mode
    }

    /// Whether props-aware scans should walk the per-class sub-fronts.
    /// Pays off only while classes stay coarse: each probe spends a few
    /// operations per class regardless of the cutoff, so once sampled
    /// cardinalities splinter the front into near-singleton classes
    /// (`#classes` comparable to the front itself) the globally sorted
    /// cutoff scan is cheaper. Routing never changes results — both scans
    /// decide via the same verified predicate.
    #[inline]
    fn use_class_scan(&self) -> bool {
        self.mode == PruneMode::PropsAware && self.classes.len() * 4 <= self.order.len()
    }

    /// The `f32` pre-filter row of a cost vector: its tail components
    /// (all selected objectives but the first), rounded to nearest.
    #[inline]
    fn tail_row(&self, cost: &CostVector) -> [f32; NUM_OBJECTIVES] {
        let mut row = [0.0f32; NUM_OBJECTIVES];
        for (i, &o) in self.sel.iter().skip(1).enumerate() {
            row[i] = cost.get(o) as f32;
        }
        row
    }

    /// Grid cell of a candidate cost vector — the same projection slots
    /// are attached under, so stored and probed cells agree.
    #[inline]
    fn cell_of_cost(&self, cost: &CostVector) -> u64 {
        grid_cell_key(
            self.sel
                .iter()
                .map(|&o| grid_cell_coord(cost.get(o), self.cell_shift)),
        )
    }

    /// Stores an entry in a slot (reusing freed slots) and links it into
    /// the grid and its class sub-front. Does not touch the global
    /// `order`/`keys`/`tail` rank arrays.
    fn attach(&mut self, entry: PlanEntry, key: f64, tail: &[f32]) -> u32 {
        let pkey = props_key(&entry.props);
        let cell = self.cell_of_cost(&entry.cost);
        let slot = if let Some(s) = self.free.pop() {
            self.props[s as usize] = pkey;
            self.cells[s as usize] = cell;
            self.slots[s as usize] = entry;
            s
        } else {
            let s = u32::try_from(self.slots.len()).expect("frontier fits in u32 slots");
            self.props.push(pkey);
            self.cells.push(cell);
            self.slots.push(entry);
            s
        };
        self.grid.entry(cell).or_default().push(slot);
        if self.mode == PruneMode::PropsAware {
            let id = pkey.class_id();
            let cid = match self.class_ids.get(&id) {
                Some(&c) => c,
                None => {
                    let c = u32::try_from(self.classes.len()).expect("class count fits in u32");
                    self.classes.push(ClassFront {
                        key: pkey,
                        slots: Vec::new(),
                        keys: Vec::new(),
                        tail: Vec::new(),
                    });
                    self.class_ids.insert(id, c);
                    c
                }
            };
            let t = self.tail_dims;
            let class = &mut self.classes[cid as usize];
            let pos = class.keys.partition_point(|&ck| ck <= key);
            class.slots.insert(pos, slot);
            class.keys.insert(pos, key);
            class.tail.splice(pos * t..pos * t, tail.iter().copied());
        }
        slot
    }

    /// Unlinks a slot from the grid and its class sub-front and frees it.
    /// The caller removes it from the global rank arrays.
    fn detach(&mut self, slot: u32) {
        let cell = self.cells[slot as usize];
        if let Some(bucket) = self.grid.get_mut(&cell) {
            if let Some(p) = bucket.iter().position(|&s| s == slot) {
                bucket.swap_remove(p);
            }
            if bucket.is_empty() {
                self.grid.remove(&cell);
            }
        }
        if self.mode == PruneMode::PropsAware {
            let id = self.props[slot as usize].class_id();
            if let Some(&cid) = self.class_ids.get(&id) {
                let t = self.tail_dims;
                let class = &mut self.classes[cid as usize];
                if let Some(p) = class.slots.iter().position(|&s| s == slot) {
                    class.slots.remove(p);
                    class.keys.remove(p);
                    class.tail.drain(p * t..p * t + t);
                }
            }
        }
        self.free.push(slot);
    }

    /// The indexed insertion: victim scan over the sorted suffix (cost-only)
    /// or the candidate-covered class sub-fronts (props-aware), order-
    /// preserving compaction of the qualifying suffix, then sorted
    /// insertion of the new entry. Victims pass the `f32` pre-filter and
    /// are confirmed by `PruneStrategy::deletes` — the plain path's
    /// predicate over the plain path's candidate subset, so deletions are
    /// bit-identical across layouts.
    fn insert(&mut self, entry: PlanEntry, strategy: &PruneStrategy) -> usize {
        let first = self.sel.first().copied();
        let key = first.map_or(0.0, |o| entry.cost.get(o));
        let inserted_key = props_key(&entry.props);
        let t = self.tail_dims;
        // The same suffix bound the plain path uses — including its exact
        // floating-point form (`key / α`), so the tested suffix is the
        // same entry subset.
        let threshold = if strategy.approx_deletion {
            key / strategy.alpha_internal
        } else {
            key
        };
        let ins_row = self.tail_row(&entry.cost);
        let ins32 = &ins_row[..t];
        // The `f32` filter mirrors exact deletion (`ins ≤ stored` per tail
        // dimension). The approximate-deletion ablation compares against
        // α-scaled stored costs, which have no stored `f32` image — its
        // suffix is evaluated by the exact predicate alone.
        let filtered = !strategy.approx_deletion;

        let mut victims = std::mem::take(&mut self.victims);
        victims.clear();
        let start = self.keys.partition_point(|&e| e < threshold);
        if self.use_class_scan() {
            // Deletion mirror of the two-level rejection scan: only
            // classes the inserted plan covers can lose members.
            for class in &self.classes {
                if !inserted_key.covers(&class.key) {
                    continue;
                }
                let cstart = class.keys.partition_point(|&e| e < threshold);
                for j in cstart..class.slots.len() {
                    if filtered && !tail_filter_ge(&class.tail[j * t..j * t + t], ins32) {
                        continue;
                    }
                    let slot = class.slots[j];
                    if strategy.deletes(
                        &entry,
                        &inserted_key,
                        &self.slots[slot as usize],
                        self.objectives,
                    ) {
                        victims.push(slot);
                    }
                }
            }
        } else {
            for r in start..self.order.len() {
                if filtered && !tail_filter_ge(&self.tail[r * t..r * t + t], ins32) {
                    continue;
                }
                let slot = self.order[r];
                if strategy.deletes(
                    &entry,
                    &inserted_key,
                    &self.slots[slot as usize],
                    self.objectives,
                ) {
                    victims.push(slot);
                }
            }
        }

        let deleted = victims.len();
        if deleted > 0 {
            victims.sort_unstable();
            // Order-preserving compaction over the qualifying suffix only:
            // every victim's first-objective key is at least `threshold`
            // in every mode, so ranks below `start` cannot be victims.
            let mut kept = start;
            for r in start..self.order.len() {
                let slot = self.order[r];
                if victims.binary_search(&slot).is_ok() {
                    continue;
                }
                if kept != r {
                    self.order[kept] = slot;
                    self.keys[kept] = self.keys[r];
                    self.tail.copy_within(r * t..r * t + t, kept * t);
                }
                kept += 1;
            }
            self.order.truncate(kept);
            self.keys.truncate(kept);
            self.tail.truncate(kept * t);
            for &slot in &victims {
                self.detach(slot);
            }
        }
        self.victims = victims;

        let pos = self.keys.partition_point(|&e| e <= key);
        let slot = self.attach(entry, key, ins32);
        self.order.insert(pos, slot);
        self.keys.insert(pos, key);
        self.tail.splice(pos * t..pos * t, ins32.iter().copied());
        deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::Objective;
    use moqo_plan::SortOrder;

    fn objs() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
    }

    fn entry(t: f64, b: f64) -> PlanEntry {
        PlanEntry {
            cost: CostVector::from_pairs(&[
                (Objective::TotalTime, t),
                (Objective::BufferFootprint, b),
            ]),
            props: PlanProps {
                rels: 1,
                rows: 1.0,
                width: 1.0,
                order: SortOrder::None,
                sampling_factor: 1.0,
            },
            plan: PlanId(0),
        }
    }

    #[test]
    fn exact_prune_keeps_incomparable_plans() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        assert!(set.prune_insert(entry(1.0, 3.0), &s, objs()));
        assert!(set.prune_insert(entry(3.0, 1.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.is_antichain(objs()));
    }

    #[test]
    fn exact_prune_rejects_dominated_insert() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        assert!(set.prune_insert(entry(1.0, 1.0), &s, objs()));
        assert!(!set.prune_insert(entry(2.0, 2.0), &s, objs()));
        assert!(!set.prune_insert(entry(1.0, 1.0), &s, objs())); // equal ⇒ dominated
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn exact_prune_deletes_newly_dominated() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        set.prune_insert(entry(2.0, 2.0), &s, objs());
        set.prune_insert(entry(3.0, 0.5), &s, objs());
        // (1,1) dominates (2,2) but not (3,0.5) — buffer 0.5 < 1.
        assert!(set.prune_insert(entry(1.0, 1.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.iter().all(|e| e.cost.get(Objective::TotalTime) != 2.0));
    }

    #[test]
    fn insert_unrejected_reports_deletions() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        set.prune_insert(entry(2.0, 2.0), &s, objs());
        set.prune_insert(entry(3.0, 1.5), &s, objs());
        set.prune_insert(entry(4.0, 0.5), &s, objs());
        // (1,1) dominates the first two entries but not (4, 0.5).
        let probe = entry(1.0, 1.0);
        assert!(!set.would_reject(&probe.cost, &probe.props, &s, objs()));
        assert_eq!(set.insert_unrejected(probe, &s, objs()), 2);
        assert_eq!(set.len(), 2);
        assert!(set.is_antichain(objs()));
    }

    #[test]
    fn approximate_prune_thins_the_set() {
        let mut exact = PlanSet::new();
        let mut approx = PlanSet::new();
        let se = PruneStrategy::exact();
        let sa = PruneStrategy::approximate(2.0);
        // A dense frontier: exact keeps all, 2-approximate keeps far fewer.
        for i in 0..32 {
            let t = 1.0 + f64::from(i) * 0.1;
            let b = 10.0 / t;
            exact.prune_insert(entry(t, b), &se, objs());
            approx.prune_insert(entry(t, b), &sa, objs());
        }
        assert_eq!(exact.len(), 32);
        assert!(
            approx.len() < exact.len() / 2,
            "approx kept {}",
            approx.len()
        );
    }

    #[test]
    fn approximate_prune_still_covers_frontier() {
        // Every exact-frontier point must be α-approximately dominated by a
        // kept representative (the invariant behind Theorem 3's base case).
        let alpha = 1.5;
        let mut approx = PlanSet::new();
        let sa = PruneStrategy::approximate(alpha);
        let mut all = Vec::new();
        for i in 0..64 {
            let t = 1.0 + f64::from(i) * 0.07;
            let b = 20.0 / t;
            let e = entry(t, b);
            all.push(e.cost);
            approx.prune_insert(e, &sa, objs());
        }
        let frontier = moqo_cost::pareto_front::pareto_frontier(&all, objs());
        let kept: Vec<CostVector> = approx.iter().map(|e| e.cost).collect();
        assert!(moqo_cost::pareto_front::is_approx_pareto_set(
            &kept,
            &frontier,
            alpha,
            objs()
        ));
    }

    #[test]
    fn approx_deletion_ablation_can_drift() {
        // Demonstrates the §6.2 remark: deleting approximately dominated
        // plans lets the stored set depart more and more from the frontier.
        // Chain construction: each new point is slightly worse in time
        // (×1.1 < α) and much better in buffer (÷1.3), so it is NOT rejected
        // (buffer improves beyond α) but it α-dominates and thus deletes its
        // predecessor. All chain points are mutually incomparable, hence all
        // lie on the true frontier; the single survivor ends up more than α
        // away from the early frontier points.
        let alpha = 1.2f64;
        let mut unsound = PlanSet::new();
        let s = PruneStrategy {
            alpha_internal: alpha,
            approx_deletion: true,
            mode: PruneMode::CostOnly,
        };
        let mut all = Vec::new();
        let (mut t, mut b) = (1.0f64, 1000.0f64);
        for _ in 0..12 {
            let e = entry(t, b);
            all.push(e.cost);
            unsound.prune_insert(e, &s, objs());
            t *= 1.1;
            b /= 1.3;
        }
        assert_eq!(unsound.len(), 1, "chain keeps replacing its predecessor");
        let kept: Vec<CostVector> = unsound.iter().map(|e| e.cost).collect();
        let factor = moqo_cost::pareto_front::approximation_factor(&kept, &all, objs()).unwrap();
        assert!(
            factor > alpha * 1.5,
            "unsound deletion drifted to factor {factor}, beyond α = {alpha}"
        );
        // The sound strategy on the same input keeps every chain point.
        let mut sound = PlanSet::new();
        let ss = PruneStrategy::approximate(alpha);
        let (mut t, mut b) = (1.0f64, 1000.0f64);
        let mut kept_count = 0;
        for _ in 0..12 {
            if sound.prune_insert(entry(t, b), &ss, objs()) {
                kept_count += 1;
            }
            t *= 1.1;
            b /= 1.3;
        }
        assert_eq!(kept_count, 12);
        let kept: Vec<CostVector> = sound.iter().map(|e| e.cost).collect();
        let factor = moqo_cost::pareto_front::approximation_factor(&kept, &all, objs()).unwrap();
        assert!(
            factor <= alpha,
            "sound pruning stays within α; got {factor}"
        );
    }

    fn entry_with_rows(t: f64, b: f64, rows: f64) -> PlanEntry {
        let mut e = entry(t, b);
        e.props.rows = rows;
        e
    }

    #[test]
    fn auto_mode_selects_props_aware_only_for_the_leak_regime() {
        let no_loss = objs();
        let with_loss =
            ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::TupleLoss]);
        assert_eq!(PruneMode::auto(true, no_loss), PruneMode::PropsAware);
        assert_eq!(PruneMode::auto(false, no_loss), PruneMode::CostOnly);
        assert_eq!(PruneMode::auto(true, with_loss), PruneMode::CostOnly);
        assert_eq!(PruneMode::auto(false, with_loss), PruneMode::CostOnly);
    }

    #[test]
    fn props_aware_keeps_cost_dominated_plan_with_fewer_rows() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        assert!(set.prune_insert(entry_with_rows(1.0, 1.0, 100.0), &s, objs()));
        // Cost-dominated, but only 10 output rows: must survive, because a
        // parent operator over it can be arbitrarily cheaper.
        assert!(set.prune_insert(entry_with_rows(2.0, 2.0, 10.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.is_props_antichain(objs()));
        // The same stream under cost-only pruning discards it.
        let mut cost_only = PlanSet::new();
        let c = PruneStrategy::exact();
        assert!(cost_only.prune_insert(entry_with_rows(1.0, 1.0, 100.0), &c, objs()));
        assert!(!cost_only.prune_insert(entry_with_rows(2.0, 2.0, 10.0), &c, objs()));
    }

    #[test]
    fn props_aware_still_prunes_within_a_props_class() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        assert!(set.prune_insert(entry_with_rows(1.0, 1.0, 50.0), &s, objs()));
        // Same rows, dominated cost: discarded exactly as in cost-only mode.
        assert!(!set.prune_insert(entry_with_rows(2.0, 2.0, 50.0), &s, objs()));
        // A dominator with *fewer* rows also prunes.
        assert!(!set.prune_insert(entry_with_rows(2.0, 2.0, 200.0), &s, objs()));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn props_aware_deletion_spares_fewer_row_incumbents() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        set.prune_insert(entry_with_rows(2.0, 2.0, 10.0), &s, objs());
        set.prune_insert(entry_with_rows(3.0, 3.0, 100.0), &s, objs());
        // (1,1,50) cost-dominates both, but covers only the 100-row entry.
        assert!(set.prune_insert(entry_with_rows(1.0, 1.0, 50.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set
            .iter()
            .any(|e| e.cost.get(Objective::TotalTime) == 2.0 && e.props.rows == 10.0));
        assert!(set.iter().all(|e| e.cost.get(Objective::TotalTime) != 3.0));
    }

    #[test]
    fn props_aware_interest_tags_partition_orders() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        let mut sorted = entry_with_rows(2.0, 2.0, 50.0);
        sorted.props.order = SortOrder::on(0, 1);
        let unsorted = entry_with_rows(1.0, 1.0, 50.0);
        // An unsorted dominator cannot discard a sorted plan…
        assert!(set.prune_insert(unsorted, &s, objs()));
        assert!(set.prune_insert(sorted, &s, objs()));
        assert_eq!(set.len(), 2);
        // …but a sorted dominator discards an unsorted one.
        let mut set2 = PlanSet::new();
        let mut sorted_cheap = entry_with_rows(1.0, 1.0, 50.0);
        sorted_cheap.props.order = SortOrder::on(0, 1);
        assert!(set2.prune_insert(sorted_cheap, &s, objs()));
        assert!(!set2.prune_insert(entry_with_rows(2.0, 2.0, 50.0), &s, objs()));
    }

    #[test]
    fn modes_agree_when_rows_and_orders_are_uniform() {
        // Without sampling every plan of a (table set, order) group has the
        // same rows and order, so the two modes are bit-identical.
        let cost_only = PruneStrategy::approximate(1.3);
        let props = PruneStrategy::approximate(1.3).with_mode(PruneMode::PropsAware);
        let mut a = PlanSet::new();
        let mut b = PlanSet::new();
        for i in 0..64u32 {
            let t = 1.0 + f64::from(i % 17) * 0.21;
            let bcost = 40.0 / t;
            let (ra, rb) = (
                a.prune_insert(entry(t, bcost), &cost_only, objs()),
                b.prune_insert(entry(t, bcost), &props, objs()),
            );
            assert_eq!(ra, rb, "insert {i}");
        }
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }
}
