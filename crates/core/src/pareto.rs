//! The `Prune` procedure of Algorithms 1 and 2: incremental (approximate)
//! Pareto plan sets.
//!
//! A [`PlanSet`] holds the plans generated so far for one `(table set,
//! output order)` group. Insertion follows the paper exactly:
//!
//! * **EXA** (Algorithm 1): insert unless an existing plan *dominates* the
//!   new one; then delete stored plans the new plan dominates.
//! * **RTA** (Algorithm 2): insert unless an existing plan *approximately
//!   dominates* the new one with internal precision `α_i`; deletions still
//!   use exact dominance. The paper's §6.2 remark explains that also
//!   deleting approximately dominated plans would let the stored set drift
//!   arbitrarily far from the frontier — that unsound variant is available
//!   behind [`PruneStrategy::approx_deletion`] purely as an ablation.
//!
//! Orthogonally to the precision, a [`PruneMode`] selects the dominance
//! relation: cost-only (the paper's rule) or props-aware, which refuses to
//! discard a plan whose physical properties (row count, sort order) are
//! better than its dominator's. Props-aware mode is what keeps pruning
//! sound when sampling scans let cardinality leak past the cost vector;
//! see [`PruneMode::auto`] for the selection rule every caller shares.

use moqo_cost::dominance::{
    approx_dominates, approx_dominates_with_props, dominates, dominates_with_props, PropsKey,
};
use moqo_cost::{CostVector, Objective, ObjectiveSet};
use moqo_plan::{PlanId, PlanProps, SortOrder};

/// One stored plan: its cost vector, physical properties and arena id.
/// Equality is bitwise over cost, props and id — two entries are equal only
/// when they are the same plan in the same arena layout, which is exactly
/// the "byte-identical fronts" property the deterministic tests assert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Full nine-dimensional cost vector.
    pub cost: CostVector,
    /// Physical properties (rows, width, order, sampling factor).
    pub props: PlanProps,
    /// Plan node in the arena.
    pub plan: PlanId,
}

/// Which dominance relation `Prune` discards plans under.
///
/// Cost-only pruning is the paper's original rule; it is sound exactly when
/// the selected cost components determine every downstream cost. Sampling
/// scans break that: plan cardinality then varies within a table set, feeds
/// every parent operator's formula, and — when [`Objective::TupleLoss`] is
/// not selected — is invisible to the cost vector, so a cost-dominated plan
/// with fewer rows may still lead to the cheapest complete plan.
/// Props-aware pruning additionally requires the dominator's [`PropsKey`]
/// (row count, interest properties) to cover the discarded plan's, which
/// restores Lemma 2 / Theorem 3 in that regime at the price of larger
/// stored sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PruneMode {
    /// Discard on (approximate) cost dominance alone.
    #[default]
    CostOnly,
    /// Discard only when dominated in cost *and* covered in physical
    /// properties.
    PropsAware,
}

impl PruneMode {
    /// The mode under which pruning is sound for a given configuration:
    /// props-aware exactly when sampling scans are in the plan space and
    /// `TupleLoss` is not among the selected objectives (the only regime in
    /// which cardinality leaks past the cost vector), cost-only otherwise.
    /// Every algorithm entry point and the serving layer derive their mode
    /// through this one function so all pruning sites agree.
    #[must_use]
    pub fn auto(sampling_enabled: bool, objectives: ObjectiveSet) -> Self {
        if sampling_enabled && !objectives.contains(Objective::TupleLoss) {
            PruneMode::PropsAware
        } else {
            PruneMode::CostOnly
        }
    }
}

/// The [`PropsKey`] of a plan's physical properties: output rows plus the
/// sort order encoded as the opaque interest tag ([`SortOrder::None`] maps
/// to [`PropsKey::NO_INTEREST`], so any sorted plan covers an unsorted one
/// at equal-or-fewer rows).
#[must_use]
pub fn props_key(props: &PlanProps) -> PropsKey {
    let interest = match props.order {
        SortOrder::None => PropsKey::NO_INTEREST,
        // 1 + packed (rel, col): never collides with NO_INTEREST.
        SortOrder::Col { rel, col } => 1 + ((rel as u64) << 16 | u64::from(col)),
    };
    PropsKey {
        rows: props.rows,
        interest,
    }
}

/// Pruning configuration shared by one dynamic-programming run.
#[derive(Debug, Clone, Copy)]
pub struct PruneStrategy {
    /// Internal approximation precision `α_i ≥ 1`; `1.0` yields the exact
    /// algorithm's pruning.
    pub alpha_internal: f64,
    /// Unsound ablation: also delete stored plans that the new plan merely
    /// *approximately* dominates (destroys the near-optimality guarantee,
    /// §6.2 remark).
    pub approx_deletion: bool,
    /// Dominance relation plans are discarded under.
    pub mode: PruneMode,
}

impl PruneStrategy {
    /// Exact cost-only pruning (EXA).
    #[must_use]
    pub fn exact() -> Self {
        PruneStrategy {
            alpha_internal: 1.0,
            approx_deletion: false,
            mode: PruneMode::CostOnly,
        }
    }

    /// Approximate cost-only pruning with internal precision
    /// `alpha_internal` (RTA).
    #[must_use]
    pub fn approximate(alpha_internal: f64) -> Self {
        debug_assert!(alpha_internal >= 1.0);
        PruneStrategy {
            alpha_internal,
            approx_deletion: false,
            mode: PruneMode::CostOnly,
        }
    }

    /// Replaces the pruning mode (builder style).
    #[must_use]
    pub fn with_mode(mut self, mode: PruneMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether `candidate` is discarded in favour of `incumbent` under this
    /// strategy's mode and precision.
    #[inline]
    fn rejects(
        &self,
        incumbent: &PlanEntry,
        cost: &CostVector,
        key: &PropsKey,
        objectives: ObjectiveSet,
    ) -> bool {
        match self.mode {
            PruneMode::CostOnly => {
                approx_dominates(&incumbent.cost, cost, self.alpha_internal, objectives)
            }
            PruneMode::PropsAware => approx_dominates_with_props(
                &incumbent.cost,
                &props_key(&incumbent.props),
                cost,
                key,
                self.alpha_internal,
                objectives,
            ),
        }
    }

    /// Whether a stored plan is deleted by an inserted one (exact dominance
    /// unless the `approx_deletion` ablation is on).
    #[inline]
    fn deletes(
        &self,
        inserted: &PlanEntry,
        key: &PropsKey,
        stored: &PlanEntry,
        objectives: ObjectiveSet,
    ) -> bool {
        match (self.mode, self.approx_deletion) {
            (PruneMode::CostOnly, false) => dominates(&inserted.cost, &stored.cost, objectives),
            (PruneMode::CostOnly, true) => approx_dominates(
                &inserted.cost,
                &stored.cost,
                self.alpha_internal,
                objectives,
            ),
            (PruneMode::PropsAware, false) => dominates_with_props(
                &inserted.cost,
                key,
                &stored.cost,
                &props_key(&stored.props),
                objectives,
            ),
            (PruneMode::PropsAware, true) => approx_dominates_with_props(
                &inserted.cost,
                key,
                &stored.cost,
                &props_key(&stored.props),
                self.alpha_internal,
                objectives,
            ),
        }
    }
}

/// An incrementally pruned plan set for one `(table set, order)` group.
///
/// Entries are kept sorted by the cost in the *first* selected objective.
/// Dominance is monotone per dimension, so the sort order yields binary-search
/// cutoffs for both `prune_insert` scans: only a prefix of the set can
/// (approximately) dominate a new plan, and only a suffix can be dominated by
/// it. The same set must always be probed with the same objective set (true
/// for every dynamic-programming run, which fixes its objectives up front).
#[derive(Debug, Clone, Default)]
pub struct PlanSet {
    entries: Vec<PlanEntry>,
}

impl PlanSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        PlanSet::default()
    }

    /// The rejection test of `prune_insert` alone: does some stored plan
    /// (approximately) dominate the candidate — in props-aware mode, while
    /// also covering its physical properties? Lets callers that must
    /// allocate per-candidate resources (e.g. arena nodes) skip doomed
    /// candidates without mutating the set. A dominating plan needs
    /// `e ≤ α·key` in the first objective regardless of mode (cost
    /// dominance stays necessary), so the sorted order keeps its
    /// binary-search cutoff; props-aware mode merely partitions what the
    /// scanned prefix may reject.
    #[must_use]
    pub fn would_reject(
        &self,
        cost: &CostVector,
        props: &PlanProps,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> bool {
        let first = objectives.iter().next();
        let key_of = |e: &PlanEntry| first.map_or(0.0, |o| e.cost.get(o));
        let alpha = strategy.alpha_internal;
        let cutoff = alpha * first.map_or(0.0, |o| cost.get(o));
        let candidate_key = props_key(props);
        for e in &self.entries {
            if key_of(e) > cutoff {
                break;
            }
            if strategy.rejects(e, cost, &candidate_key, objectives) {
                return true;
            }
        }
        false
    }

    /// The `Prune(P, pN)` procedure. Returns `true` if the new plan was
    /// inserted, `false` if it was discarded. The net change in stored-entry
    /// count is `1 − deleted` on insertion and `0` otherwise; the caller
    /// tracks memory via [`PlanSet::len`].
    pub fn prune_insert(
        &mut self,
        entry: PlanEntry,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> bool {
        // "Check whether new plan useful": some stored plan (approximately)
        // dominates the new one?
        if self.would_reject(&entry.cost, &entry.props, strategy, objectives) {
            return false;
        }
        self.insert_unrejected(entry, strategy, objectives);
        true
    }

    /// The insertion half of [`PlanSet::prune_insert`], for callers that
    /// already ran [`PlanSet::would_reject`] on `entry.cost` (e.g. to skip
    /// arena allocation for doomed candidates) — probing twice would double
    /// the dominant cost of the insert path. Deletes the stored plans the
    /// new plan dominates and inserts it in sorted position, returning the
    /// number of deletions.
    ///
    /// Inserting an entry that *would* have been rejected breaks the set's
    /// antichain invariant; it is the caller's contract to probe first.
    pub fn insert_unrejected(
        &mut self,
        entry: PlanEntry,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> usize {
        debug_assert!(!self.would_reject(&entry.cost, &entry.props, strategy, objectives));
        let first = objectives.iter().next();
        let key_of = |e: &PlanEntry| first.map_or(0.0, |o| e.cost.get(o));
        let key = key_of(&entry);
        let alpha = strategy.alpha_internal;
        let inserted_key = props_key(&entry.props);

        // "Delete dominated plans". Exact dominance unless the unsound
        // ablation is requested; props-aware mode additionally requires the
        // new plan to cover the victim's props. A deletable plan needs a
        // first-objective cost of at least `key` (or `key/α` for the
        // ablation) in every mode, so only a sorted suffix qualifies;
        // compact it in place, preserving order.
        let delete_start = if strategy.approx_deletion {
            self.entries.partition_point(|e| key_of(e) < key / alpha)
        } else {
            self.entries.partition_point(|e| key_of(e) < key)
        };
        let mut kept = delete_start;
        for read in delete_start..self.entries.len() {
            let doomed = strategy.deletes(&entry, &inserted_key, &self.entries[read], objectives);
            if !doomed {
                self.entries.swap(kept, read);
                kept += 1;
            }
        }
        let deleted = self.entries.len() - kept;
        self.entries.truncate(kept);

        let pos = self.entries.partition_point(|e| key_of(e) <= key);
        self.entries.insert(pos, entry);
        deleted
    }

    /// Number of stored plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the stored plans.
    pub fn iter(&self) -> impl Iterator<Item = &PlanEntry> {
        self.entries.iter()
    }

    /// The stored plans as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// Invariant check (test helper): with exact pruning no entry may
    /// strictly dominate another.
    #[must_use]
    pub fn is_antichain(&self, objectives: ObjectiveSet) -> bool {
        for (i, a) in self.entries.iter().enumerate() {
            for (j, b) in self.entries.iter().enumerate() {
                if i != j && moqo_cost::dominance::strictly_dominates(&a.cost, &b.cost, objectives)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Invariant check (test helper) for props-aware exact pruning: no
    /// entry may strictly dominate another in cost *while also covering*
    /// its props key — plain cost domination between entries of different
    /// props classes is expected and sound.
    #[must_use]
    pub fn is_props_antichain(&self, objectives: ObjectiveSet) -> bool {
        for (i, a) in self.entries.iter().enumerate() {
            for (j, b) in self.entries.iter().enumerate() {
                if i != j
                    && props_key(&a.props).covers(&props_key(&b.props))
                    && moqo_cost::dominance::strictly_dominates(&a.cost, &b.cost, objectives)
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::Objective;
    use moqo_plan::SortOrder;

    fn objs() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
    }

    fn entry(t: f64, b: f64) -> PlanEntry {
        PlanEntry {
            cost: CostVector::from_pairs(&[
                (Objective::TotalTime, t),
                (Objective::BufferFootprint, b),
            ]),
            props: PlanProps {
                rels: 1,
                rows: 1.0,
                width: 1.0,
                order: SortOrder::None,
                sampling_factor: 1.0,
            },
            plan: PlanId(0),
        }
    }

    #[test]
    fn exact_prune_keeps_incomparable_plans() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        assert!(set.prune_insert(entry(1.0, 3.0), &s, objs()));
        assert!(set.prune_insert(entry(3.0, 1.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.is_antichain(objs()));
    }

    #[test]
    fn exact_prune_rejects_dominated_insert() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        assert!(set.prune_insert(entry(1.0, 1.0), &s, objs()));
        assert!(!set.prune_insert(entry(2.0, 2.0), &s, objs()));
        assert!(!set.prune_insert(entry(1.0, 1.0), &s, objs())); // equal ⇒ dominated
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn exact_prune_deletes_newly_dominated() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        set.prune_insert(entry(2.0, 2.0), &s, objs());
        set.prune_insert(entry(3.0, 0.5), &s, objs());
        // (1,1) dominates (2,2) but not (3,0.5) — buffer 0.5 < 1.
        assert!(set.prune_insert(entry(1.0, 1.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.iter().all(|e| e.cost.get(Objective::TotalTime) != 2.0));
    }

    #[test]
    fn insert_unrejected_reports_deletions() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        set.prune_insert(entry(2.0, 2.0), &s, objs());
        set.prune_insert(entry(3.0, 1.5), &s, objs());
        set.prune_insert(entry(4.0, 0.5), &s, objs());
        // (1,1) dominates the first two entries but not (4, 0.5).
        let probe = entry(1.0, 1.0);
        assert!(!set.would_reject(&probe.cost, &probe.props, &s, objs()));
        assert_eq!(set.insert_unrejected(probe, &s, objs()), 2);
        assert_eq!(set.len(), 2);
        assert!(set.is_antichain(objs()));
    }

    #[test]
    fn approximate_prune_thins_the_set() {
        let mut exact = PlanSet::new();
        let mut approx = PlanSet::new();
        let se = PruneStrategy::exact();
        let sa = PruneStrategy::approximate(2.0);
        // A dense frontier: exact keeps all, 2-approximate keeps far fewer.
        for i in 0..32 {
            let t = 1.0 + f64::from(i) * 0.1;
            let b = 10.0 / t;
            exact.prune_insert(entry(t, b), &se, objs());
            approx.prune_insert(entry(t, b), &sa, objs());
        }
        assert_eq!(exact.len(), 32);
        assert!(
            approx.len() < exact.len() / 2,
            "approx kept {}",
            approx.len()
        );
    }

    #[test]
    fn approximate_prune_still_covers_frontier() {
        // Every exact-frontier point must be α-approximately dominated by a
        // kept representative (the invariant behind Theorem 3's base case).
        let alpha = 1.5;
        let mut approx = PlanSet::new();
        let sa = PruneStrategy::approximate(alpha);
        let mut all = Vec::new();
        for i in 0..64 {
            let t = 1.0 + f64::from(i) * 0.07;
            let b = 20.0 / t;
            let e = entry(t, b);
            all.push(e.cost);
            approx.prune_insert(e, &sa, objs());
        }
        let frontier = moqo_cost::pareto_front::pareto_frontier(&all, objs());
        let kept: Vec<CostVector> = approx.iter().map(|e| e.cost).collect();
        assert!(moqo_cost::pareto_front::is_approx_pareto_set(
            &kept,
            &frontier,
            alpha,
            objs()
        ));
    }

    #[test]
    fn approx_deletion_ablation_can_drift() {
        // Demonstrates the §6.2 remark: deleting approximately dominated
        // plans lets the stored set depart more and more from the frontier.
        // Chain construction: each new point is slightly worse in time
        // (×1.1 < α) and much better in buffer (÷1.3), so it is NOT rejected
        // (buffer improves beyond α) but it α-dominates and thus deletes its
        // predecessor. All chain points are mutually incomparable, hence all
        // lie on the true frontier; the single survivor ends up more than α
        // away from the early frontier points.
        let alpha = 1.2f64;
        let mut unsound = PlanSet::new();
        let s = PruneStrategy {
            alpha_internal: alpha,
            approx_deletion: true,
            mode: PruneMode::CostOnly,
        };
        let mut all = Vec::new();
        let (mut t, mut b) = (1.0f64, 1000.0f64);
        for _ in 0..12 {
            let e = entry(t, b);
            all.push(e.cost);
            unsound.prune_insert(e, &s, objs());
            t *= 1.1;
            b /= 1.3;
        }
        assert_eq!(unsound.len(), 1, "chain keeps replacing its predecessor");
        let kept: Vec<CostVector> = unsound.iter().map(|e| e.cost).collect();
        let factor = moqo_cost::pareto_front::approximation_factor(&kept, &all, objs()).unwrap();
        assert!(
            factor > alpha * 1.5,
            "unsound deletion drifted to factor {factor}, beyond α = {alpha}"
        );
        // The sound strategy on the same input keeps every chain point.
        let mut sound = PlanSet::new();
        let ss = PruneStrategy::approximate(alpha);
        let (mut t, mut b) = (1.0f64, 1000.0f64);
        let mut kept_count = 0;
        for _ in 0..12 {
            if sound.prune_insert(entry(t, b), &ss, objs()) {
                kept_count += 1;
            }
            t *= 1.1;
            b /= 1.3;
        }
        assert_eq!(kept_count, 12);
        let kept: Vec<CostVector> = sound.iter().map(|e| e.cost).collect();
        let factor = moqo_cost::pareto_front::approximation_factor(&kept, &all, objs()).unwrap();
        assert!(
            factor <= alpha,
            "sound pruning stays within α; got {factor}"
        );
    }

    fn entry_with_rows(t: f64, b: f64, rows: f64) -> PlanEntry {
        let mut e = entry(t, b);
        e.props.rows = rows;
        e
    }

    #[test]
    fn auto_mode_selects_props_aware_only_for_the_leak_regime() {
        let no_loss = objs();
        let with_loss =
            ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::TupleLoss]);
        assert_eq!(PruneMode::auto(true, no_loss), PruneMode::PropsAware);
        assert_eq!(PruneMode::auto(false, no_loss), PruneMode::CostOnly);
        assert_eq!(PruneMode::auto(true, with_loss), PruneMode::CostOnly);
        assert_eq!(PruneMode::auto(false, with_loss), PruneMode::CostOnly);
    }

    #[test]
    fn props_aware_keeps_cost_dominated_plan_with_fewer_rows() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        assert!(set.prune_insert(entry_with_rows(1.0, 1.0, 100.0), &s, objs()));
        // Cost-dominated, but only 10 output rows: must survive, because a
        // parent operator over it can be arbitrarily cheaper.
        assert!(set.prune_insert(entry_with_rows(2.0, 2.0, 10.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.is_props_antichain(objs()));
        // The same stream under cost-only pruning discards it.
        let mut cost_only = PlanSet::new();
        let c = PruneStrategy::exact();
        assert!(cost_only.prune_insert(entry_with_rows(1.0, 1.0, 100.0), &c, objs()));
        assert!(!cost_only.prune_insert(entry_with_rows(2.0, 2.0, 10.0), &c, objs()));
    }

    #[test]
    fn props_aware_still_prunes_within_a_props_class() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        assert!(set.prune_insert(entry_with_rows(1.0, 1.0, 50.0), &s, objs()));
        // Same rows, dominated cost: discarded exactly as in cost-only mode.
        assert!(!set.prune_insert(entry_with_rows(2.0, 2.0, 50.0), &s, objs()));
        // A dominator with *fewer* rows also prunes.
        assert!(!set.prune_insert(entry_with_rows(2.0, 2.0, 200.0), &s, objs()));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn props_aware_deletion_spares_fewer_row_incumbents() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        set.prune_insert(entry_with_rows(2.0, 2.0, 10.0), &s, objs());
        set.prune_insert(entry_with_rows(3.0, 3.0, 100.0), &s, objs());
        // (1,1,50) cost-dominates both, but covers only the 100-row entry.
        assert!(set.prune_insert(entry_with_rows(1.0, 1.0, 50.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set
            .iter()
            .any(|e| e.cost.get(Objective::TotalTime) == 2.0 && e.props.rows == 10.0));
        assert!(set.iter().all(|e| e.cost.get(Objective::TotalTime) != 3.0));
    }

    #[test]
    fn props_aware_interest_tags_partition_orders() {
        let s = PruneStrategy::exact().with_mode(PruneMode::PropsAware);
        let mut set = PlanSet::new();
        let mut sorted = entry_with_rows(2.0, 2.0, 50.0);
        sorted.props.order = SortOrder::on(0, 1);
        let unsorted = entry_with_rows(1.0, 1.0, 50.0);
        // An unsorted dominator cannot discard a sorted plan…
        assert!(set.prune_insert(unsorted, &s, objs()));
        assert!(set.prune_insert(sorted, &s, objs()));
        assert_eq!(set.len(), 2);
        // …but a sorted dominator discards an unsorted one.
        let mut set2 = PlanSet::new();
        let mut sorted_cheap = entry_with_rows(1.0, 1.0, 50.0);
        sorted_cheap.props.order = SortOrder::on(0, 1);
        assert!(set2.prune_insert(sorted_cheap, &s, objs()));
        assert!(!set2.prune_insert(entry_with_rows(2.0, 2.0, 50.0), &s, objs()));
    }

    #[test]
    fn modes_agree_when_rows_and_orders_are_uniform() {
        // Without sampling every plan of a (table set, order) group has the
        // same rows and order, so the two modes are bit-identical.
        let cost_only = PruneStrategy::approximate(1.3);
        let props = PruneStrategy::approximate(1.3).with_mode(PruneMode::PropsAware);
        let mut a = PlanSet::new();
        let mut b = PlanSet::new();
        for i in 0..64u32 {
            let t = 1.0 + f64::from(i % 17) * 0.21;
            let bcost = 40.0 / t;
            let (ra, rb) = (
                a.prune_insert(entry(t, bcost), &cost_only, objs()),
                b.prune_insert(entry(t, bcost), &props, objs()),
            );
            assert_eq!(ra, rb, "insert {i}");
        }
        assert_eq!(a.as_slice().len(), b.as_slice().len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }
}
