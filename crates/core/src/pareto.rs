//! The `Prune` procedure of Algorithms 1 and 2: incremental (approximate)
//! Pareto plan sets.
//!
//! A [`PlanSet`] holds the plans generated so far for one `(table set,
//! output order)` group. Insertion follows the paper exactly:
//!
//! * **EXA** (Algorithm 1): insert unless an existing plan *dominates* the
//!   new one; then delete stored plans the new plan dominates.
//! * **RTA** (Algorithm 2): insert unless an existing plan *approximately
//!   dominates* the new one with internal precision `α_i`; deletions still
//!   use exact dominance. The paper's §6.2 remark explains that also
//!   deleting approximately dominated plans would let the stored set drift
//!   arbitrarily far from the frontier — that unsound variant is available
//!   behind [`PruneStrategy::approx_deletion`] purely as an ablation.

use moqo_cost::dominance::{approx_dominates, dominates};
use moqo_cost::{CostVector, ObjectiveSet};
use moqo_plan::{PlanId, PlanProps};

/// One stored plan: its cost vector, physical properties and arena id.
/// Equality is bitwise over cost, props and id — two entries are equal only
/// when they are the same plan in the same arena layout, which is exactly
/// the "byte-identical fronts" property the deterministic tests assert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Full nine-dimensional cost vector.
    pub cost: CostVector,
    /// Physical properties (rows, width, order, sampling factor).
    pub props: PlanProps,
    /// Plan node in the arena.
    pub plan: PlanId,
}

/// Pruning configuration shared by one dynamic-programming run.
#[derive(Debug, Clone, Copy)]
pub struct PruneStrategy {
    /// Internal approximation precision `α_i ≥ 1`; `1.0` yields the exact
    /// algorithm's pruning.
    pub alpha_internal: f64,
    /// Unsound ablation: also delete stored plans that the new plan merely
    /// *approximately* dominates (destroys the near-optimality guarantee,
    /// §6.2 remark).
    pub approx_deletion: bool,
}

impl PruneStrategy {
    /// Exact pruning (EXA).
    #[must_use]
    pub fn exact() -> Self {
        PruneStrategy {
            alpha_internal: 1.0,
            approx_deletion: false,
        }
    }

    /// Approximate pruning with internal precision `alpha_internal` (RTA).
    #[must_use]
    pub fn approximate(alpha_internal: f64) -> Self {
        debug_assert!(alpha_internal >= 1.0);
        PruneStrategy {
            alpha_internal,
            approx_deletion: false,
        }
    }
}

/// An incrementally pruned plan set for one `(table set, order)` group.
///
/// Entries are kept sorted by the cost in the *first* selected objective.
/// Dominance is monotone per dimension, so the sort order yields binary-search
/// cutoffs for both `prune_insert` scans: only a prefix of the set can
/// (approximately) dominate a new plan, and only a suffix can be dominated by
/// it. The same set must always be probed with the same objective set (true
/// for every dynamic-programming run, which fixes its objectives up front).
#[derive(Debug, Clone, Default)]
pub struct PlanSet {
    entries: Vec<PlanEntry>,
}

impl PlanSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        PlanSet::default()
    }

    /// The rejection test of `prune_insert` alone: does some stored plan
    /// (approximately) dominate `cost`? Lets callers that must allocate
    /// per-candidate resources (e.g. arena nodes) skip doomed candidates
    /// without mutating the set. A dominating plan needs `e ≤ α·key` in the
    /// first objective, so the sorted order lets the scan stop at the first
    /// entry beyond that cutoff.
    #[must_use]
    pub fn would_reject(
        &self,
        cost: &CostVector,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> bool {
        let first = objectives.iter().next();
        let key_of = |e: &PlanEntry| first.map_or(0.0, |o| e.cost.get(o));
        let alpha = strategy.alpha_internal;
        let cutoff = alpha * first.map_or(0.0, |o| cost.get(o));
        for e in &self.entries {
            if key_of(e) > cutoff {
                break;
            }
            if approx_dominates(&e.cost, cost, alpha, objectives) {
                return true;
            }
        }
        false
    }

    /// The `Prune(P, pN)` procedure. Returns `true` if the new plan was
    /// inserted, `false` if it was discarded. The net change in stored-entry
    /// count is `1 − deleted` on insertion and `0` otherwise; the caller
    /// tracks memory via [`PlanSet::len`].
    pub fn prune_insert(
        &mut self,
        entry: PlanEntry,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> bool {
        // "Check whether new plan useful": some stored plan (approximately)
        // dominates the new one?
        if self.would_reject(&entry.cost, strategy, objectives) {
            return false;
        }
        self.insert_unrejected(entry, strategy, objectives);
        true
    }

    /// The insertion half of [`PlanSet::prune_insert`], for callers that
    /// already ran [`PlanSet::would_reject`] on `entry.cost` (e.g. to skip
    /// arena allocation for doomed candidates) — probing twice would double
    /// the dominant cost of the insert path. Deletes the stored plans the
    /// new plan dominates and inserts it in sorted position, returning the
    /// number of deletions.
    ///
    /// Inserting an entry that *would* have been rejected breaks the set's
    /// antichain invariant; it is the caller's contract to probe first.
    pub fn insert_unrejected(
        &mut self,
        entry: PlanEntry,
        strategy: &PruneStrategy,
        objectives: ObjectiveSet,
    ) -> usize {
        debug_assert!(!self.would_reject(&entry.cost, strategy, objectives));
        let first = objectives.iter().next();
        let key_of = |e: &PlanEntry| first.map_or(0.0, |o| e.cost.get(o));
        let key = key_of(&entry);
        let alpha = strategy.alpha_internal;

        // "Delete dominated plans". Exact dominance unless the unsound
        // ablation is requested. A deletable plan needs a first-objective
        // cost of at least `key` (or `key/α` for the ablation), so only a
        // sorted suffix qualifies; compact it in place, preserving order.
        let delete_start = if strategy.approx_deletion {
            self.entries.partition_point(|e| key_of(e) < key / alpha)
        } else {
            self.entries.partition_point(|e| key_of(e) < key)
        };
        let mut kept = delete_start;
        for read in delete_start..self.entries.len() {
            let doomed = if strategy.approx_deletion {
                approx_dominates(&entry.cost, &self.entries[read].cost, alpha, objectives)
            } else {
                dominates(&entry.cost, &self.entries[read].cost, objectives)
            };
            if !doomed {
                self.entries.swap(kept, read);
                kept += 1;
            }
        }
        let deleted = self.entries.len() - kept;
        self.entries.truncate(kept);

        let pos = self.entries.partition_point(|e| key_of(e) <= key);
        self.entries.insert(pos, entry);
        deleted
    }

    /// Number of stored plans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the stored plans.
    pub fn iter(&self) -> impl Iterator<Item = &PlanEntry> {
        self.entries.iter()
    }

    /// The stored plans as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// Invariant check (test helper): with exact pruning no entry may
    /// strictly dominate another.
    #[must_use]
    pub fn is_antichain(&self, objectives: ObjectiveSet) -> bool {
        for (i, a) in self.entries.iter().enumerate() {
            for (j, b) in self.entries.iter().enumerate() {
                if i != j && moqo_cost::dominance::strictly_dominates(&a.cost, &b.cost, objectives)
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::Objective;
    use moqo_plan::SortOrder;

    fn objs() -> ObjectiveSet {
        ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint])
    }

    fn entry(t: f64, b: f64) -> PlanEntry {
        PlanEntry {
            cost: CostVector::from_pairs(&[
                (Objective::TotalTime, t),
                (Objective::BufferFootprint, b),
            ]),
            props: PlanProps {
                rels: 1,
                rows: 1.0,
                width: 1.0,
                order: SortOrder::None,
                sampling_factor: 1.0,
            },
            plan: PlanId(0),
        }
    }

    #[test]
    fn exact_prune_keeps_incomparable_plans() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        assert!(set.prune_insert(entry(1.0, 3.0), &s, objs()));
        assert!(set.prune_insert(entry(3.0, 1.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.is_antichain(objs()));
    }

    #[test]
    fn exact_prune_rejects_dominated_insert() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        assert!(set.prune_insert(entry(1.0, 1.0), &s, objs()));
        assert!(!set.prune_insert(entry(2.0, 2.0), &s, objs()));
        assert!(!set.prune_insert(entry(1.0, 1.0), &s, objs())); // equal ⇒ dominated
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn exact_prune_deletes_newly_dominated() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        set.prune_insert(entry(2.0, 2.0), &s, objs());
        set.prune_insert(entry(3.0, 0.5), &s, objs());
        // (1,1) dominates (2,2) but not (3,0.5) — buffer 0.5 < 1.
        assert!(set.prune_insert(entry(1.0, 1.0), &s, objs()));
        assert_eq!(set.len(), 2);
        assert!(set.iter().all(|e| e.cost.get(Objective::TotalTime) != 2.0));
    }

    #[test]
    fn insert_unrejected_reports_deletions() {
        let mut set = PlanSet::new();
        let s = PruneStrategy::exact();
        set.prune_insert(entry(2.0, 2.0), &s, objs());
        set.prune_insert(entry(3.0, 1.5), &s, objs());
        set.prune_insert(entry(4.0, 0.5), &s, objs());
        // (1,1) dominates the first two entries but not (4, 0.5).
        let probe = entry(1.0, 1.0);
        assert!(!set.would_reject(&probe.cost, &s, objs()));
        assert_eq!(set.insert_unrejected(probe, &s, objs()), 2);
        assert_eq!(set.len(), 2);
        assert!(set.is_antichain(objs()));
    }

    #[test]
    fn approximate_prune_thins_the_set() {
        let mut exact = PlanSet::new();
        let mut approx = PlanSet::new();
        let se = PruneStrategy::exact();
        let sa = PruneStrategy::approximate(2.0);
        // A dense frontier: exact keeps all, 2-approximate keeps far fewer.
        for i in 0..32 {
            let t = 1.0 + f64::from(i) * 0.1;
            let b = 10.0 / t;
            exact.prune_insert(entry(t, b), &se, objs());
            approx.prune_insert(entry(t, b), &sa, objs());
        }
        assert_eq!(exact.len(), 32);
        assert!(
            approx.len() < exact.len() / 2,
            "approx kept {}",
            approx.len()
        );
    }

    #[test]
    fn approximate_prune_still_covers_frontier() {
        // Every exact-frontier point must be α-approximately dominated by a
        // kept representative (the invariant behind Theorem 3's base case).
        let alpha = 1.5;
        let mut approx = PlanSet::new();
        let sa = PruneStrategy::approximate(alpha);
        let mut all = Vec::new();
        for i in 0..64 {
            let t = 1.0 + f64::from(i) * 0.07;
            let b = 20.0 / t;
            let e = entry(t, b);
            all.push(e.cost);
            approx.prune_insert(e, &sa, objs());
        }
        let frontier = moqo_cost::pareto_front::pareto_frontier(&all, objs());
        let kept: Vec<CostVector> = approx.iter().map(|e| e.cost).collect();
        assert!(moqo_cost::pareto_front::is_approx_pareto_set(
            &kept,
            &frontier,
            alpha,
            objs()
        ));
    }

    #[test]
    fn approx_deletion_ablation_can_drift() {
        // Demonstrates the §6.2 remark: deleting approximately dominated
        // plans lets the stored set depart more and more from the frontier.
        // Chain construction: each new point is slightly worse in time
        // (×1.1 < α) and much better in buffer (÷1.3), so it is NOT rejected
        // (buffer improves beyond α) but it α-dominates and thus deletes its
        // predecessor. All chain points are mutually incomparable, hence all
        // lie on the true frontier; the single survivor ends up more than α
        // away from the early frontier points.
        let alpha = 1.2f64;
        let mut unsound = PlanSet::new();
        let s = PruneStrategy {
            alpha_internal: alpha,
            approx_deletion: true,
        };
        let mut all = Vec::new();
        let (mut t, mut b) = (1.0f64, 1000.0f64);
        for _ in 0..12 {
            let e = entry(t, b);
            all.push(e.cost);
            unsound.prune_insert(e, &s, objs());
            t *= 1.1;
            b /= 1.3;
        }
        assert_eq!(unsound.len(), 1, "chain keeps replacing its predecessor");
        let kept: Vec<CostVector> = unsound.iter().map(|e| e.cost).collect();
        let factor = moqo_cost::pareto_front::approximation_factor(&kept, &all, objs()).unwrap();
        assert!(
            factor > alpha * 1.5,
            "unsound deletion drifted to factor {factor}, beyond α = {alpha}"
        );
        // The sound strategy on the same input keeps every chain point.
        let mut sound = PlanSet::new();
        let ss = PruneStrategy::approximate(alpha);
        let (mut t, mut b) = (1.0f64, 1000.0f64);
        let mut kept_count = 0;
        for _ in 0..12 {
            if sound.prune_insert(entry(t, b), &ss, objs()) {
                kept_count += 1;
            }
            t *= 1.1;
            b /= 1.3;
        }
        assert_eq!(kept_count, 12);
        let kept: Vec<CostVector> = sound.iter().map(|e| e.cost).collect();
        let factor = moqo_cost::pareto_front::approximation_factor(&kept, &all, objs()).unwrap();
        assert!(
            factor <= alpha,
            "sound pruning stays within α; got {factor}"
        );
    }
}
