//! User-facing optimizer facade over multi-block queries.
//!
//! The paper keeps the Postgres heuristic of optimizing different subqueries
//! of the same query separately (§4). [`Optimizer::optimize`] therefore runs
//! the selected algorithm once per [`moqo_catalog::JoinGraph`] block and
//! combines the per-block costs into a query-level cost vector.

use std::time::{Duration, Instant};

use moqo_catalog::{Catalog, JoinGraph, Query};
use moqo_cost::{CostVector, Objective, Preference};
use moqo_costmodel::{CostModel, CostModelParams};
use moqo_plan::{JoinTree, PlanArena, PlanId};

use crate::budget::Deadline;
use crate::exa_rta::{exa, rta};
use crate::ira::ira;
use crate::metrics::{BlockReport, OptimizationReport};
use crate::pareto::{PlanEntry, PruneMode};
use crate::rmq::{rmq_warm, RmqConfig};
use crate::select::select_best;

/// The optimization algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// The exact algorithm (Ganguly et al.); optimal but expensive.
    Exhaustive,
    /// The representative-tradeoffs approximation scheme for weighted MOQO.
    Rta {
        /// User precision `α_U ≥ 1`.
        alpha: f64,
    },
    /// The iterative-refinement approximation scheme for bounded-weighted
    /// MOQO.
    Ira {
        /// User precision `α_U ≥ 1`.
        alpha: f64,
    },
    /// The anytime randomized optimizer: no formal guarantee, but scales to
    /// join graphs far beyond the dynamic-programming schemes. Fully
    /// deterministic per seed at any thread count. The per-block iteration
    /// budget combines with [`Optimizer::with_timeout`] (whichever stops
    /// first).
    Rmq {
        /// Iteration budget (sampled candidate plans) per query block.
        samples: u64,
        /// RNG seed.
        seed: u64,
        /// OS threads sharding the walker population (`0` = all cores);
        /// changes wall-clock time only, never the resulting front.
        threads: usize,
    },
}

/// The chosen plan for one query block, together with the (approximate)
/// Pareto frontier produced as a by-product ("All implemented MOQO
/// algorithms produce an (approximate) Pareto frontier as byproduct of
/// optimization", §4).
#[derive(Debug)]
pub struct BlockPlan {
    /// Arena owning the block's plans.
    pub arena: PlanArena,
    /// The selected plan.
    pub root: PlanId,
    /// Cost vector of the selected plan.
    pub cost: CostVector,
    /// The (approximate) Pareto frontier for the block: full entries whose
    /// plan ids resolve in [`BlockPlan::arena`], so callers (plan caches,
    /// alternative-plan UIs) can extract every frontier plan, not just its
    /// cost vector.
    pub frontier: Vec<PlanEntry>,
}

impl BlockPlan {
    /// The frontier's cost vectors, in frontier order.
    #[must_use]
    pub fn frontier_costs(&self) -> Vec<CostVector> {
        self.frontier.iter().map(|e| e.cost).collect()
    }

    /// Extracts the frontier's plans as owned join trees, in frontier order
    /// — the by-value form a cache or another thread can hold without
    /// keeping this block's arena alive.
    #[must_use]
    pub fn frontier_trees(&self) -> Vec<JoinTree> {
        self.frontier
            .iter()
            .map(|e| self.arena.extract_tree(e.plan))
            .collect()
    }
}

/// The result of optimizing a (possibly multi-block) query.
#[derive(Debug)]
pub struct OptimizationResult {
    /// Per-block plans, in query block order.
    pub block_plans: Vec<BlockPlan>,
    /// Combined cost vector over all blocks (see [`combine_block_costs`]).
    pub total_cost: CostVector,
    /// Weighted cost of [`OptimizationResult::total_cost`].
    pub weighted_cost: f64,
    /// Whether the combined cost respects the preference's bounds.
    pub respects_bounds: bool,
    /// Metrics per block plus aggregates.
    pub report: OptimizationReport,
}

/// Combines per-block cost vectors into a query-level vector. Blocks execute
/// sequentially, so additive objectives sum; the cores footprint is the
/// maximum over blocks; tuple loss composes like a join of the block
/// results.
#[must_use]
pub fn combine_block_costs(blocks: &[CostVector]) -> CostVector {
    let mut total = CostVector::zero();
    let mut survival = 1.0f64;
    for c in blocks {
        for o in Objective::ALL {
            match o {
                Objective::UsedCores => {
                    total.set(o, total.get(o).max(c.get(o)));
                }
                Objective::TupleLoss => {
                    survival *= 1.0 - c.get(o).clamp(0.0, 1.0);
                }
                _ => total.set(o, total.get(o) + c.get(o)),
            }
        }
    }
    total.set(Objective::TupleLoss, (1.0 - survival).clamp(0.0, 1.0));
    total
}

/// The optimizer facade: binds a catalog, cost-model parameters and an
/// optional per-block timeout.
#[derive(Debug, Clone)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    params: CostModelParams,
    timeout: Option<Duration>,
}

impl<'a> Optimizer<'a> {
    /// An optimizer over `catalog` with default cost-model parameters and no
    /// timeout.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer {
            catalog,
            params: CostModelParams::default(),
            timeout: None,
        }
    }

    /// Replaces the cost-model parameters (builder style).
    #[must_use]
    pub fn with_params(mut self, params: CostModelParams) -> Self {
        self.params = params;
        self
    }

    /// Sets a per-block optimization timeout (builder style). On expiry the
    /// dynamic programming finishes quickly with a single plan per
    /// remaining table set (§5.1).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Access to the configured cost-model parameters.
    #[must_use]
    pub fn params(&self) -> &CostModelParams {
        &self.params
    }

    /// Optimizes `query` under `preference` with `algorithm`.
    ///
    /// # Panics
    ///
    /// Panics if the query has no blocks, a block is empty, or the
    /// preference selects no objectives.
    #[must_use]
    pub fn optimize(
        &self,
        query: &Query,
        preference: &Preference,
        algorithm: Algorithm,
    ) -> OptimizationResult {
        assert!(
            !query.blocks.is_empty(),
            "query must have at least one block"
        );

        let mut block_plans = Vec::with_capacity(query.blocks.len());
        let mut reports = Vec::with_capacity(query.blocks.len());
        let mut block_costs = Vec::with_capacity(query.blocks.len());

        for graph in &query.blocks {
            let (block, report) = self.optimize_block(graph, preference, algorithm);
            block_costs.push(block.cost);
            block_plans.push(block);
            reports.push(report);
        }

        let total_cost = combine_block_costs(&block_costs);
        OptimizationResult {
            weighted_cost: preference.weighted_cost(&total_cost),
            respects_bounds: preference.respects_bounds(&total_cost),
            block_plans,
            total_cost,
            report: OptimizationReport { blocks: reports },
        }
    }

    /// Optimizes a single query block — the per-block entry point a serving
    /// layer schedules and caches on ([`Optimizer::optimize`] is this in a
    /// loop plus [`combine_block_costs`]).
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or the preference selects no objectives.
    #[must_use]
    pub fn optimize_block(
        &self,
        graph: &JoinGraph,
        preference: &Preference,
        algorithm: Algorithm,
    ) -> (BlockPlan, BlockReport) {
        self.optimize_block_warm(graph, preference, algorithm, &[])
    }

    /// [`Optimizer::optimize_block`] with warm-start plans: for
    /// [`Algorithm::Rmq`] the trees seed the walker population (see
    /// [`rmq_warm`]); the dynamic-programming schemes enumerate
    /// exhaustively by construction and ignore them.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or the preference selects no objectives.
    #[must_use]
    pub fn optimize_block_warm(
        &self,
        graph: &JoinGraph,
        preference: &Preference,
        algorithm: Algorithm,
        warm_start: &[JoinTree],
    ) -> (BlockPlan, BlockReport) {
        assert!(
            !preference.objectives.is_empty(),
            "preference must select at least one objective"
        );
        let model = CostModel::new(&self.params, self.catalog, graph);
        let deadline = Deadline::new(self.timeout);
        // The mode every algorithm's pruning sites run under — recorded in
        // the report so serving layers can refuse to mix fronts certified
        // under different modes. The inner algorithms derive the same value
        // through the same function; this is the single selection rule.
        let prune_mode = PruneMode::auto(self.params.enable_sampling, preference.objectives);
        let started = Instant::now();
        let (arena, final_plans, stats, iterations, alpha_final) = match algorithm {
            Algorithm::Exhaustive => {
                let result = exa(&model, preference, &deadline);
                (result.arena, result.final_plans, result.stats, 1, 1.0)
            }
            Algorithm::Rta { alpha } => {
                let result = rta(&model, preference, alpha, &deadline);
                (result.arena, result.final_plans, result.stats, 1, alpha)
            }
            Algorithm::Ira { alpha } => {
                let out = ira(&model, preference, alpha, &deadline);
                let mut stats = out.result.stats;
                stats.considered_plans = out.total_considered;
                (
                    out.result.arena,
                    out.result.final_plans,
                    stats,
                    out.iterations,
                    out.alpha_last,
                )
            }
            Algorithm::Rmq {
                samples,
                seed,
                threads,
            } => {
                let out = rmq_warm(
                    &model,
                    preference,
                    &RmqConfig::new(samples, seed).with_threads(threads),
                    &deadline,
                    warm_start,
                );
                (
                    out.arena,
                    out.final_plans,
                    out.stats,
                    u32::try_from(out.iterations).unwrap_or(u32::MAX),
                    // Randomized search carries no precision guarantee.
                    f64::NAN,
                )
            }
        };
        let best: PlanEntry =
            select_best(&final_plans, preference).expect("optimizers return at least one plan");
        let report = BlockReport::from_stats(
            &stats,
            started.elapsed(),
            iterations,
            alpha_final,
            prune_mode,
        );
        (
            BlockPlan {
                arena,
                root: best.plan,
                cost: best.cost,
                frontier: final_plans,
            },
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::{ColumnStats, JoinGraphBuilder, TableStats};
    use moqo_cost::ObjectiveSet;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("orders", 20_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 20_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 80_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 20_000.0).indexed()),
        );
        cat
    }

    fn query(cat: &Catalog) -> Query {
        let block = JoinGraphBuilder::new(cat)
            .rel("orders", 1.0)
            .rel("lineitem", 0.5)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        Query::single_block("test", block)
    }

    fn pref() -> Preference {
        Preference::over(ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::TupleLoss,
        ]))
        .weight(Objective::TotalTime, 1.0)
        .bound(Objective::TupleLoss, 0.0)
    }

    #[test]
    fn all_algorithms_produce_plans() {
        let cat = catalog();
        let q = query(&cat);
        let p = pref();
        let optimizer = Optimizer::new(&cat);
        for algo in [
            Algorithm::Exhaustive,
            Algorithm::Rta { alpha: 1.5 },
            Algorithm::Ira { alpha: 1.5 },
            Algorithm::Rmq {
                samples: 200,
                seed: 11,
                threads: 1,
            },
        ] {
            let result = optimizer.optimize(&q, &p, algo);
            assert_eq!(result.block_plans.len(), 1);
            assert!(result.weighted_cost > 0.0);
            assert!(result.respects_bounds, "tuple-loss-0 plans exist");
            assert!(!result.block_plans[0].frontier.is_empty());
            assert!(result.report.total_elapsed() > Duration::ZERO);
        }
    }

    #[test]
    fn rta_within_alpha_of_exhaustive() {
        let cat = catalog();
        let q = query(&cat);
        let p = pref();
        let optimizer = Optimizer::new(&cat);
        let exact = optimizer.optimize(&q, &p, Algorithm::Exhaustive);
        let approx = optimizer.optimize(&q, &p, Algorithm::Rta { alpha: 2.0 });
        assert!(approx.weighted_cost <= 2.0 * exact.weighted_cost + 1e-9);
    }

    #[test]
    fn multi_block_queries_combine_costs() {
        let cat = catalog();
        let block = JoinGraphBuilder::new(&cat)
            .rel("orders", 1.0)
            .rel("lineitem", 0.5)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        let q = Query {
            name: "two-block".into(),
            blocks: vec![block.clone(), block],
        };
        let p = pref();
        let optimizer = Optimizer::new(&cat);
        let result = optimizer.optimize(&q, &p, Algorithm::Rta { alpha: 1.5 });
        assert_eq!(result.block_plans.len(), 2);
        assert_eq!(result.report.blocks.len(), 2);
        // Additive objective: total time is the sum of the block times.
        let sum: f64 = result
            .block_plans
            .iter()
            .map(|b| b.cost.get(Objective::TotalTime))
            .sum();
        assert!((result.total_cost.get(Objective::TotalTime) - sum).abs() < 1e-9);
    }

    #[test]
    fn combine_block_costs_rules() {
        let a = CostVector::from_pairs(&[
            (Objective::TotalTime, 10.0),
            (Objective::UsedCores, 2.0),
            (Objective::TupleLoss, 0.5),
        ]);
        let b = CostVector::from_pairs(&[
            (Objective::TotalTime, 5.0),
            (Objective::UsedCores, 4.0),
            (Objective::TupleLoss, 0.5),
        ]);
        let c = combine_block_costs(&[a, b]);
        assert_eq!(c.get(Objective::TotalTime), 15.0);
        assert_eq!(c.get(Objective::UsedCores), 4.0);
        assert!((c.get(Objective::TupleLoss) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn timeout_is_reported() {
        let cat = catalog();
        let q = query(&cat);
        let p = pref();
        let optimizer = Optimizer::new(&cat).with_timeout(Duration::ZERO);
        let result = optimizer.optimize(&q, &p, Algorithm::Exhaustive);
        assert!(result.report.timed_out());
        assert_eq!(result.block_plans.len(), 1);
    }
}
