//! Single-objective query optimization: the Selinger baseline (bushy
//! variant) realized through the shared dynamic programming.
//!
//! With a single objective every `(table set, order)` group keeps exactly
//! one plan, so `FindParetoPlans` degenerates to the classic Selinger
//! algorithm with path-key groups — the same specialization the paper uses
//! as its "1 objective" measurement in Figure 5 and as the complexity
//! reference in Figure 7.

use moqo_cost::{Objective, Preference};
use moqo_costmodel::CostModel;

use crate::budget::Deadline;
use crate::dp::DpResult;
use crate::exa_rta::exa;
use crate::pareto::PlanEntry;
use crate::select::select_best;

/// Runs single-objective (Selinger-style) optimization for `objective` on
/// one query block and returns the optimal plan and the DP result.
#[must_use]
pub fn selinger(
    model: &CostModel<'_>,
    objective: Objective,
    deadline: &Deadline,
) -> (PlanEntry, DpResult) {
    let preference = Preference::minimize(objective);
    let result = exa(model, &preference, deadline);
    let best =
        select_best(&result.final_plans, &preference).expect("the DP returns at least one plan");
    (best, result)
}

/// Minimal achievable cost for one objective over the block's plan space —
/// used by the paper's test-case generator, which draws bounds for
/// unbounded-domain objectives "by multiplying the minimal possible value
/// for the given objective and query by a factor chosen from [1, 2]" (§8).
#[must_use]
pub fn min_cost_for_objective(
    model: &CostModel<'_>,
    objective: Objective,
    deadline: &Deadline,
) -> f64 {
    let (best, _) = selinger(model, objective, deadline);
    best.cost.get(objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
    use moqo_cost::ObjectiveSet;
    use moqo_costmodel::CostModelParams;

    fn setup() -> (CostModelParams, Catalog, JoinGraph) {
        let params = CostModelParams::default();
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("orders", 50_000.0, 121.0)
                .with_column(ColumnStats::new("o_orderkey", 50_000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 200_000.0, 129.0)
                .with_column(ColumnStats::new("l_orderkey", 50_000.0).indexed()),
        );
        let graph = JoinGraphBuilder::new(&cat)
            .rel("orders", 1.0)
            .rel("lineitem", 1.0)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (params, cat, graph)
    }

    #[test]
    fn selinger_minimizes_the_requested_objective() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let deadline = Deadline::unlimited();
        let (best_time, result) = selinger(&model, Objective::TotalTime, &deadline);
        // The selected plan matches the minimum over the returned set.
        let min = result
            .final_plans
            .iter()
            .map(|e| e.cost.get(Objective::TotalTime))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best_time.cost.get(Objective::TotalTime), min);
    }

    #[test]
    fn selinger_agrees_with_exa_on_single_objective() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let deadline = Deadline::unlimited();
        let (best, _) = selinger(&model, Objective::Energy, &deadline);
        // Multi-objective EXA over a superset of objectives must find a plan
        // at least as good on energy in its Pareto set.
        let pref = Preference::over(ObjectiveSet::from_objectives(&[
            Objective::Energy,
            Objective::TotalTime,
        ]))
        .weight(Objective::Energy, 1.0);
        let exact = exa(&model, &pref, &deadline);
        let exa_min_energy = exact
            .final_plans
            .iter()
            .map(|e| e.cost.get(Objective::Energy))
            .fold(f64::INFINITY, f64::min);
        assert!((exa_min_energy - best.cost.get(Objective::Energy)).abs() < 1e-9);
    }

    #[test]
    fn min_cost_is_consistent_across_objectives() {
        let (p, cat, g) = setup();
        let model = CostModel::new(&p, &cat, &g);
        let deadline = Deadline::unlimited();
        for objective in [
            Objective::TotalTime,
            Objective::StartupTime,
            Objective::BufferFootprint,
            Objective::TupleLoss,
        ] {
            let min = min_cost_for_objective(&model, objective, &deadline);
            assert!(min.is_finite());
            assert!(min >= 0.0);
        }
        // Tuple loss can be driven to zero by avoiding sampling.
        assert_eq!(
            min_cost_for_objective(&model, Objective::TupleLoss, &deadline),
            0.0
        );
    }
}
