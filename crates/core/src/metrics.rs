//! Optimization reports: the metrics the paper's evaluation plots
//! (optimization time, memory, Pareto-plan counts, iterations, timeouts),
//! plus the per-iteration convergence trace of the randomized optimizer.

use std::time::Duration;

use moqo_cost::CostVector;

use crate::dp::DpStats;
use crate::pareto::PruneMode;

/// One sampled point of an anytime optimizer's convergence trace: the state
/// of the incumbent Pareto front after `iteration` samples.
#[derive(Debug, Clone, Default)]
pub struct ConvergencePoint {
    /// Number of candidate plans sampled so far.
    pub iteration: u64,
    /// Size of the incumbent Pareto front.
    pub front_size: usize,
    /// Weighted cost of the best incumbent under the run's preference
    /// (bound-respecting plans first, per `SelectBest`).
    pub best_weighted: f64,
    /// Snapshot of the incumbent front's cost vectors; populated only when
    /// the run records fronts (`RmqConfig::record_fronts`), otherwise empty.
    pub front: Vec<CostVector>,
}

/// Metrics for optimizing one query block.
#[derive(Debug, Clone, Default)]
pub struct BlockReport {
    /// Wall-clock optimization time for the block.
    pub elapsed: Duration,
    /// Whether the block's optimization hit the deadline.
    pub timed_out: bool,
    /// Peak deterministic memory (bytes of stored plans; see DESIGN.md).
    pub peak_memory_bytes: usize,
    /// Plans stored for the last table set treated completely.
    pub pareto_last_complete: usize,
    /// Maximum plan-set size over all (table set, order) groups.
    pub max_group_size: usize,
    /// Plans constructed and offered to `Prune`.
    pub considered_plans: u64,
    /// Frontier probes resolved by the grid-bucket fast path.
    pub frontier_grid_hits: u64,
    /// Frontier probes that fell through to a cutoff scan.
    pub frontier_scan_probes: u64,
    /// IRA iterations executed (1 for EXA/RTA, sampled candidates for RMQ).
    pub iterations: u32,
    /// Final per-iteration precision used (IRA), or the configured internal
    /// precision (RTA), or 1.0 (EXA), or NaN (RMQ — no guarantee).
    pub alpha_final: f64,
    /// Dominance relation every pruning site of the run discarded plans
    /// under (see [`PruneMode::auto`]). A guarantee — and with it any
    /// α-certificate derived from the block's front — is only meaningful
    /// together with the mode that produced it: a cost-only front computed
    /// while sampling leaks cardinality past the cost vector covers less
    /// than its α claims.
    pub prune_mode: PruneMode,
    /// Whether a serving layer degraded this block under load pressure
    /// (brownout: the admission controller forced the anytime search
    /// and/or shrank its sample budget instead of running the scheme the
    /// request preferred). The optimizer itself never sets this; the
    /// service stamps it so α-accounting downstream of the report stays
    /// honest about *why* the guarantee is weaker than requested.
    pub degraded_by_pressure: bool,
}

impl BlockReport {
    /// Builds a report from DP statistics plus timing.
    #[must_use]
    pub fn from_stats(
        stats: &DpStats,
        elapsed: Duration,
        iterations: u32,
        alpha: f64,
        prune_mode: PruneMode,
    ) -> Self {
        BlockReport {
            elapsed,
            timed_out: stats.timed_out,
            peak_memory_bytes: stats.peak_memory_bytes,
            pareto_last_complete: stats.pareto_last_complete,
            max_group_size: stats.max_group_size,
            considered_plans: stats.considered_plans,
            frontier_grid_hits: stats.frontier_grid_hits,
            frontier_scan_probes: stats.frontier_scan_probes,
            iterations,
            alpha_final: alpha,
            prune_mode,
            degraded_by_pressure: false,
        }
    }
}

/// Aggregated metrics over all blocks of one query.
#[derive(Debug, Clone, Default)]
pub struct OptimizationReport {
    /// Per-block reports in block order.
    pub blocks: Vec<BlockReport>,
}

impl OptimizationReport {
    /// Total optimization time across blocks.
    #[must_use]
    pub fn total_elapsed(&self) -> Duration {
        self.blocks.iter().map(|b| b.elapsed).sum()
    }

    /// Whether any block timed out.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.blocks.iter().any(|b| b.timed_out)
    }

    /// Sum of per-block peak memory (blocks are optimized sequentially but
    /// their results all stay resident, mirroring the paper's "allocated
    /// memory during optimization").
    #[must_use]
    pub fn peak_memory_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.peak_memory_bytes).sum()
    }

    /// Largest "Pareto plans for the last completely treated table set"
    /// value over the blocks (the figure metric for multi-block queries).
    #[must_use]
    pub fn pareto_last_complete(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.pareto_last_complete)
            .max()
            .unwrap_or(0)
    }

    /// Maximum iteration count over blocks (IRA).
    #[must_use]
    pub fn iterations(&self) -> u32 {
        self.blocks.iter().map(|b| b.iterations).max().unwrap_or(0)
    }

    /// Total number of considered plans over blocks.
    #[must_use]
    pub fn considered_plans(&self) -> u64 {
        self.blocks.iter().map(|b| b.considered_plans).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ms: u64, mem: usize, pareto: usize, iters: u32, timed_out: bool) -> BlockReport {
        BlockReport {
            elapsed: Duration::from_millis(ms),
            timed_out,
            peak_memory_bytes: mem,
            pareto_last_complete: pareto,
            max_group_size: pareto,
            considered_plans: 10,
            frontier_grid_hits: 0,
            frontier_scan_probes: 10,
            iterations: iters,
            alpha_final: 1.0,
            prune_mode: PruneMode::CostOnly,
            degraded_by_pressure: false,
        }
    }

    #[test]
    fn aggregates_over_blocks() {
        let report = OptimizationReport {
            blocks: vec![block(5, 100, 3, 1, false), block(7, 200, 8, 4, true)],
        };
        assert_eq!(report.total_elapsed(), Duration::from_millis(12));
        assert!(report.timed_out());
        assert_eq!(report.peak_memory_bytes(), 300);
        assert_eq!(report.pareto_last_complete(), 8);
        assert_eq!(report.iterations(), 4);
        assert_eq!(report.considered_plans(), 20);
    }

    #[test]
    fn empty_report_defaults() {
        let report = OptimizationReport::default();
        assert_eq!(report.total_elapsed(), Duration::ZERO);
        assert!(!report.timed_out());
        assert_eq!(report.pareto_last_complete(), 0);
    }
}
