//! Optimization reports: the metrics the paper's evaluation plots
//! (optimization time, memory, Pareto-plan counts, iterations, timeouts),
//! plus the per-iteration convergence trace of the randomized optimizer.

use std::time::Duration;

use moqo_cost::CostVector;

use crate::dp::DpStats;
use crate::pareto::PruneMode;

/// One sampled point of an anytime optimizer's convergence trace: the state
/// of the incumbent Pareto front after `iteration` samples.
#[derive(Debug, Clone, Default)]
pub struct ConvergencePoint {
    /// Number of candidate plans sampled so far.
    pub iteration: u64,
    /// Size of the incumbent Pareto front.
    pub front_size: usize,
    /// Weighted cost of the best incumbent under the run's preference
    /// (bound-respecting plans first, per `SelectBest`).
    pub best_weighted: f64,
    /// Snapshot of the incumbent front's cost vectors; populated only when
    /// the run records fronts (`RmqConfig::record_fronts`), otherwise empty.
    pub front: Vec<CostVector>,
}

/// Metrics for optimizing one query block.
#[derive(Debug, Clone, Default)]
pub struct BlockReport {
    /// Wall-clock optimization time for the block.
    pub elapsed: Duration,
    /// Whether the block's optimization hit the deadline.
    pub timed_out: bool,
    /// Peak deterministic memory (bytes of stored plans; see DESIGN.md).
    pub peak_memory_bytes: usize,
    /// Plans stored for the last table set treated completely.
    pub pareto_last_complete: usize,
    /// Maximum plan-set size over all (table set, order) groups.
    pub max_group_size: usize,
    /// Plans constructed and offered to `Prune`.
    pub considered_plans: u64,
    /// Frontier probes resolved by the grid-bucket fast path.
    pub frontier_grid_hits: u64,
    /// Frontier probes that fell through to a cutoff scan.
    pub frontier_scan_probes: u64,
    /// IRA iterations executed (1 for EXA/RTA, sampled candidates for RMQ).
    pub iterations: u32,
    /// Final per-iteration precision used (IRA), or the configured internal
    /// precision (RTA), or 1.0 (EXA), or NaN (RMQ — no guarantee).
    pub alpha_final: f64,
    /// Dominance relation every pruning site of the run discarded plans
    /// under (see [`PruneMode::auto`]). A guarantee — and with it any
    /// α-certificate derived from the block's front — is only meaningful
    /// together with the mode that produced it: a cost-only front computed
    /// while sampling leaks cardinality past the cost vector covers less
    /// than its α claims.
    pub prune_mode: PruneMode,
    /// Whether a serving layer degraded this block under load pressure
    /// (brownout: the admission controller forced the anytime search
    /// and/or shrank its sample budget instead of running the scheme the
    /// request preferred). The optimizer itself never sets this; the
    /// service stamps it so α-accounting downstream of the report stays
    /// honest about *why* the guarantee is weaker than requested.
    pub degraded_by_pressure: bool,
}

impl BlockReport {
    /// A deterministic FNV-1a digest over the report's *reproducible*
    /// fields — everything except `elapsed`, which is wall-clock noise.
    /// Two runs of the same block under the same algorithm, seed and
    /// pruning mode produce the same digest, so a serving layer can embed
    /// it in replay-checksummed trace events as a compact `DpStats`
    /// summary.
    #[must_use]
    pub fn trace_digest(&self) -> u64 {
        let mut acc = 0xCBF2_9CE4_8422_2325u64;
        let mut fold = |value: u64| {
            for byte in value.to_le_bytes() {
                acc ^= u64::from(byte);
                acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(u64::from(self.timed_out));
        fold(self.peak_memory_bytes as u64);
        fold(self.pareto_last_complete as u64);
        fold(self.max_group_size as u64);
        fold(self.considered_plans);
        fold(self.frontier_grid_hits);
        fold(self.frontier_scan_probes);
        fold(u64::from(self.iterations));
        fold(self.alpha_final.to_bits());
        fold(match self.prune_mode {
            PruneMode::CostOnly => 0,
            PruneMode::PropsAware => 1,
        });
        fold(u64::from(self.degraded_by_pressure));
        acc
    }

    /// Builds a report from DP statistics plus timing.
    #[must_use]
    pub fn from_stats(
        stats: &DpStats,
        elapsed: Duration,
        iterations: u32,
        alpha: f64,
        prune_mode: PruneMode,
    ) -> Self {
        BlockReport {
            elapsed,
            timed_out: stats.timed_out,
            peak_memory_bytes: stats.peak_memory_bytes,
            pareto_last_complete: stats.pareto_last_complete,
            max_group_size: stats.max_group_size,
            considered_plans: stats.considered_plans,
            frontier_grid_hits: stats.frontier_grid_hits,
            frontier_scan_probes: stats.frontier_scan_probes,
            iterations,
            alpha_final: alpha,
            prune_mode,
            degraded_by_pressure: false,
        }
    }
}

/// Aggregated metrics over all blocks of one query.
#[derive(Debug, Clone, Default)]
pub struct OptimizationReport {
    /// Per-block reports in block order.
    pub blocks: Vec<BlockReport>,
}

impl OptimizationReport {
    /// Total optimization time across blocks.
    #[must_use]
    pub fn total_elapsed(&self) -> Duration {
        self.blocks.iter().map(|b| b.elapsed).sum()
    }

    /// Whether any block timed out.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.blocks.iter().any(|b| b.timed_out)
    }

    /// Sum of per-block peak memory (blocks are optimized sequentially but
    /// their results all stay resident, mirroring the paper's "allocated
    /// memory during optimization").
    #[must_use]
    pub fn peak_memory_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.peak_memory_bytes).sum()
    }

    /// Largest "Pareto plans for the last completely treated table set"
    /// value over the blocks (the figure metric for multi-block queries).
    #[must_use]
    pub fn pareto_last_complete(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.pareto_last_complete)
            .max()
            .unwrap_or(0)
    }

    /// Maximum iteration count over blocks (IRA).
    #[must_use]
    pub fn iterations(&self) -> u32 {
        self.blocks.iter().map(|b| b.iterations).max().unwrap_or(0)
    }

    /// Total number of considered plans over blocks.
    #[must_use]
    pub fn considered_plans(&self) -> u64 {
        self.blocks.iter().map(|b| b.considered_plans).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ms: u64, mem: usize, pareto: usize, iters: u32, timed_out: bool) -> BlockReport {
        BlockReport {
            elapsed: Duration::from_millis(ms),
            timed_out,
            peak_memory_bytes: mem,
            pareto_last_complete: pareto,
            max_group_size: pareto,
            considered_plans: 10,
            frontier_grid_hits: 0,
            frontier_scan_probes: 10,
            iterations: iters,
            alpha_final: 1.0,
            prune_mode: PruneMode::CostOnly,
            degraded_by_pressure: false,
        }
    }

    #[test]
    fn aggregates_over_blocks() {
        let report = OptimizationReport {
            blocks: vec![block(5, 100, 3, 1, false), block(7, 200, 8, 4, true)],
        };
        assert_eq!(report.total_elapsed(), Duration::from_millis(12));
        assert!(report.timed_out());
        assert_eq!(report.peak_memory_bytes(), 300);
        assert_eq!(report.pareto_last_complete(), 8);
        assert_eq!(report.iterations(), 4);
        assert_eq!(report.considered_plans(), 20);
    }

    #[test]
    fn trace_digest_ignores_elapsed_only() {
        let a = block(5, 100, 3, 1, false);
        let slower = BlockReport {
            elapsed: Duration::from_secs(9),
            ..a.clone()
        };
        assert_eq!(a.trace_digest(), slower.trace_digest());
        let different = BlockReport {
            considered_plans: 11,
            ..a.clone()
        };
        assert_ne!(a.trace_digest(), different.trace_digest());
        let degraded = BlockReport {
            degraded_by_pressure: true,
            ..a
        };
        assert_ne!(a.trace_digest(), degraded.trace_digest());
    }

    #[test]
    fn empty_report_defaults() {
        let report = OptimizationReport::default();
        assert_eq!(report.total_elapsed(), Duration::ZERO);
        assert!(!report.timed_out());
        assert_eq!(report.pareto_last_complete(), 0);
    }
}
