//! Integration tests for two further formal properties:
//!
//! * **Lemma 2's grid invariant**: the RTA never stores two plans whose
//!   cost vectors map to the same `δ` cell (the discretization argument
//!   bounding plan-set cardinality by `O((n·log_{α_i} m)^{l−1})`).
//! * **Tree shapes**: left-deep enumeration (the original Ganguly et al.
//!   formulation) explores a strict subset of the bushy plan space, so the
//!   bushy optimum is at least as good.

use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
use moqo_core::{find_pareto_plans, select_best, Deadline, DpConfig, TreeShape};
use moqo_cost::{grid, Objective, ObjectiveSet, Preference, Weights};
use moqo_costmodel::{CostModel, CostModelParams};
use moqo_plan::PlanNode;

fn setup4() -> (CostModelParams, Catalog, JoinGraph) {
    let params = CostModelParams::default();
    let mut cat = Catalog::new();
    cat.add_table(
        TableStats::new("customer", 15_000.0, 179.0)
            .with_column(ColumnStats::new("c_custkey", 15_000.0).indexed()),
    );
    cat.add_table(
        TableStats::new("orders", 150_000.0, 121.0)
            .with_column(ColumnStats::new("o_orderkey", 150_000.0).indexed())
            .with_column(ColumnStats::new("o_custkey", 15_000.0).indexed()),
    );
    cat.add_table(
        TableStats::new("lineitem", 600_000.0, 129.0)
            .with_column(ColumnStats::new("l_orderkey", 150_000.0).indexed())
            .with_column(ColumnStats::new("l_partkey", 20_000.0).indexed()),
    );
    cat.add_table(
        TableStats::new("part", 20_000.0, 155.0)
            .with_column(ColumnStats::new("p_partkey", 20_000.0).indexed()),
    );
    let graph = JoinGraphBuilder::new(&cat)
        .rel("customer", 0.25)
        .rel("orders", 0.5)
        .rel("lineitem", 0.75)
        .rel("part", 1.0)
        .join(("customer", "c_custkey"), ("orders", "o_custkey"))
        .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
        .join(("lineitem", "l_partkey"), ("part", "p_partkey"))
        .build();
    (params, cat, graph)
}

fn objs() -> ObjectiveSet {
    ObjectiveSet::from_objectives(&[
        Objective::TotalTime,
        Objective::BufferFootprint,
        Objective::Energy,
    ])
}

#[test]
fn rta_never_stores_two_plans_in_the_same_delta_cell() {
    let (params, cat, graph) = setup4();
    let model = CostModel::new(&params, &cat, &graph);
    for alpha_u in [1.5f64, 2.0, 4.0] {
        let alpha_i = alpha_u.powf(1.0 / graph.n_rels() as f64);
        let result = find_pareto_plans(
            &model,
            objs(),
            &DpConfig::approximate(alpha_i),
            &Weights::single(Objective::TotalTime),
            &Deadline::unlimited(),
        );
        // Lemma 2's invariant, checked per (order, zero-pattern) group on
        // the final plan set: two stored plans of the same group never share
        // a δ cell.
        let entries = &result.final_plans;
        for (i, a) in entries.iter().enumerate() {
            for b in entries.iter().skip(i + 1) {
                if a.props.order != b.props.order {
                    continue; // different Postgres path-key groups
                }
                assert!(
                    !grid::same_cell(&a.cost, &b.cost, alpha_i, objs()),
                    "α_i = {alpha_i}: two stored plans share a δ cell:\n{:?}\n{:?}",
                    a.cost,
                    b.cost
                );
            }
        }
    }
}

#[test]
fn left_deep_plans_have_base_relation_inners() {
    let (params, cat, graph) = setup4();
    let model = CostModel::new(&params, &cat, &graph);
    let config = DpConfig {
        tree_shape: TreeShape::LeftDeep,
        ..DpConfig::exact()
    };
    let result = find_pareto_plans(
        &model,
        objs(),
        &config,
        &Weights::single(Objective::TotalTime),
        &Deadline::unlimited(),
    );
    assert!(!result.final_plans.is_empty());
    for entry in &result.final_plans {
        result.arena.visit_postorder(entry.plan, &mut |_, node| {
            if let PlanNode::Join { right, .. } = node {
                assert!(
                    matches!(result.arena.node(right), PlanNode::Scan { .. }),
                    "left-deep inner inputs must be base-relation scans"
                );
            }
        });
    }
}

#[test]
fn bushy_space_is_at_least_as_good_as_left_deep() {
    let (params, cat, graph) = setup4();
    let model = CostModel::new(&params, &cat, &graph);
    let pref = Preference::over(objs()).weight(Objective::TotalTime, 1.0);
    let deadline = Deadline::unlimited();

    let bushy = find_pareto_plans(&model, objs(), &DpConfig::exact(), &pref.weights, &deadline);
    let left_deep = find_pareto_plans(
        &model,
        objs(),
        &DpConfig {
            tree_shape: TreeShape::LeftDeep,
            ..DpConfig::exact()
        },
        &pref.weights,
        &deadline,
    );
    let best_bushy = select_best(&bushy.final_plans, &pref).unwrap();
    let best_ld = select_best(&left_deep.final_plans, &pref).unwrap();
    assert!(
        pref.weighted_cost(&best_bushy.cost) <= pref.weighted_cost(&best_ld.cost) + 1e-9,
        "bushy optimum must be at least as good as the left-deep one"
    );
    // Left-deep explores strictly fewer plans on a 4-way chain.
    assert!(left_deep.stats.considered_plans < bushy.stats.considered_plans);
}

#[test]
fn left_deep_exa_matches_bushy_on_two_tables() {
    // With two relations, every bushy tree is left-deep; the two
    // enumerations must coincide exactly.
    let params = CostModelParams::default();
    let mut cat = Catalog::new();
    cat.add_table(
        TableStats::new("a", 5_000.0, 100.0).with_column(ColumnStats::new("id", 5_000.0).indexed()),
    );
    cat.add_table(
        TableStats::new("b", 20_000.0, 100.0)
            .with_column(ColumnStats::new("id", 5_000.0).indexed()),
    );
    let graph = JoinGraphBuilder::new(&cat)
        .rel("a", 1.0)
        .rel("b", 1.0)
        .join(("a", "id"), ("b", "id"))
        .build();
    let model = CostModel::new(&params, &cat, &graph);
    let deadline = Deadline::unlimited();
    let w = Weights::single(Objective::TotalTime);
    let bushy = find_pareto_plans(&model, objs(), &DpConfig::exact(), &w, &deadline);
    let ld_cfg = DpConfig {
        tree_shape: TreeShape::LeftDeep,
        ..DpConfig::exact()
    };
    let left_deep = find_pareto_plans(&model, objs(), &ld_cfg, &w, &deadline);
    assert_eq!(bushy.final_plans.len(), left_deep.final_plans.len());
    assert_eq!(
        bushy.stats.considered_plans,
        left_deep.stats.considered_plans
    );
}
