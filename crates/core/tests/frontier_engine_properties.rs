//! Property tests for the layered frontier engine behind `PlanSet`: the
//! grid-bucket dominance index and the two-level props-class sub-fronts
//! must be *pure* accelerations of the plain sorted-vector `Prune`.
//!
//! 1. For every insertion order, prune mode (cost-only / props-aware) and
//!    α ∈ {1, 1.5, 2}, the indexed structures keep exactly the same plans
//!    (bitwise: cost vectors, props and plan ids) as the plain layout —
//!    including under the unsound approx-deletion ablation.
//! 2. At α = 1 under cost-only pruning the surviving vectors equal the
//!    oracle Pareto frontier of everything offered, for every structure
//!    and insertion order; props-aware survivors form a props-antichain.

use moqo_core::pareto::{FrontierStructure, PlanEntry, PlanSet, PruneMode, PruneStrategy};
use moqo_cost::{pareto_front, CostVector, Objective, ObjectiveSet};
use moqo_plan::{PlanId, PlanProps, SortOrder};
use proptest::prelude::*;

fn objs3() -> ObjectiveSet {
    ObjectiveSet::from_objectives(&[
        Objective::TotalTime,
        Objective::BufferFootprint,
        Objective::IoLoad,
    ])
}

/// Builds an entry whose physical properties vary over a few cardinality
/// classes and sort orders, so props-aware mode exercises the two-level
/// class sub-fronts instead of collapsing to a single class.
fn entry(t: f64, b: f64, io: f64, rows_class: u8, order_class: u8, id: u32) -> PlanEntry {
    let rows = [1.0, 10.0, 100.0][usize::from(rows_class) % 3];
    let order = match order_class % 3 {
        0 => SortOrder::None,
        1 => SortOrder::Col { rel: 0, col: 1 },
        _ => SortOrder::Col { rel: 1, col: 0 },
    };
    PlanEntry {
        cost: CostVector::from_pairs(&[
            (Objective::TotalTime, t),
            (Objective::BufferFootprint, b),
            (Objective::IoLoad, io),
        ]),
        props: PlanProps {
            rels: 1,
            rows,
            width: 1.0,
            order,
            sampling_factor: 1.0,
        },
        plan: PlanId(id),
    }
}

fn run_stream(
    entries: &[PlanEntry],
    structure: FrontierStructure,
    strategy: &PruneStrategy,
) -> PlanSet {
    let mut set = PlanSet::with_structure(structure);
    for e in entries {
        set.prune_insert(*e, strategy, objs3());
    }
    set
}

/// Bit-exact sorted fingerprint of the surviving plans: cost bits over the
/// active objectives, props identity and plan id. Two sets with equal
/// fingerprints hold byte-identical plans (iteration order aside — the
/// indexed layout iterates in first-objective order, the plain one in
/// insertion order).
fn fingerprint(set: &PlanSet) -> Vec<(u64, u64, u64, u64, u32)> {
    let mut v: Vec<(u64, u64, u64, u64, u32)> = set
        .iter()
        .map(|e| {
            let order_tag = match e.props.order {
                SortOrder::None => 0u64,
                SortOrder::Col { rel, col } => 1 + ((rel as u64) << 16 | u64::from(col)),
            };
            (
                e.cost.get(Objective::TotalTime).to_bits(),
                e.cost.get(Objective::BufferFootprint).to_bits(),
                e.cost.get(Objective::IoLoad).to_bits(),
                e.props.rows.to_bits() ^ order_tag.rotate_left(17),
                e.plan.0,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// Dedup'd sorted cost triples, for comparison against the vector oracle.
fn surviving_vectors(set: &PlanSet) -> Vec<(f64, f64, f64)> {
    let mut v: Vec<(f64, f64, f64)> = set
        .iter()
        .map(|e| {
            (
                e.cost.get(Objective::TotalTime),
                e.cost.get(Objective::BufferFootprint),
                e.cost.get(Objective::IoLoad),
            )
        })
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.dedup();
    v
}

type RawPoint = (f64, f64, f64, u8, u8);

fn arb_stream() -> impl Strategy<Value = Vec<RawPoint>> {
    prop::collection::vec(
        (0.1f64..100.0, 0.1f64..100.0, 0.1f64..100.0, 0u8..3, 0u8..3),
        1..=64,
    )
}

fn build(points: &[RawPoint]) -> Vec<PlanEntry> {
    points
        .iter()
        .enumerate()
        .map(|(i, &(t, b, io, rc, oc))| entry(t, b, io, rc, oc, i as u32))
        .collect()
}

proptest! {
    /// The indexed structures are observationally identical to the plain
    /// layout across both prune modes, the α grid {1, 1.5, 2}, and
    /// arbitrary insertion orders.
    #[test]
    fn indexed_structures_match_plain_prune(
        points in arb_stream(),
        rotation in 0usize..64,
    ) {
        let entries = build(&points);
        let mut permuted = entries.clone();
        permuted.reverse();
        let pivot = rotation % permuted.len();
        permuted.rotate_left(pivot);

        for &alpha in &[1.0f64, 1.5, 2.0] {
            for &mode in &[PruneMode::CostOnly, PruneMode::PropsAware] {
                let strategy = PruneStrategy::approximate(alpha).with_mode(mode);
                for stream in [&entries, &permuted] {
                    let reference = run_stream(stream, FrontierStructure::Plain, &strategy);
                    for structure in [FrontierStructure::Indexed, FrontierStructure::Adaptive] {
                        let got = run_stream(stream, structure, &strategy);
                        prop_assert_eq!(
                            fingerprint(&got),
                            fingerprint(&reference),
                            "alpha {} mode {:?} structure {:?}",
                            alpha, mode, structure
                        );
                    }
                    match mode {
                        PruneMode::CostOnly => prop_assert!(reference.is_antichain(objs3())),
                        PruneMode::PropsAware => {
                            prop_assert!(reference.is_props_antichain(objs3()));
                        }
                    }
                }
            }
        }
    }

    /// At α = 1 under cost-only pruning, every structure's surviving
    /// vector set is exactly the oracle Pareto frontier of everything
    /// offered — hence order-invariant.
    #[test]
    fn exact_cost_only_fronts_equal_the_oracle_for_every_structure(
        points in arb_stream(),
        rotation in 0usize..64,
    ) {
        let entries = build(&points);
        let all: Vec<CostVector> = entries.iter().map(|e| e.cost).collect();
        let mut oracle: Vec<(f64, f64, f64)> = pareto_front::pareto_frontier(&all, objs3())
            .iter()
            .map(|c| {
                (
                    c.get(Objective::TotalTime),
                    c.get(Objective::BufferFootprint),
                    c.get(Objective::IoLoad),
                )
            })
            .collect();
        oracle.sort_by(|a, b| a.partial_cmp(b).unwrap());
        oracle.dedup();

        let mut permuted = entries.clone();
        permuted.reverse();
        let pivot = rotation % permuted.len();
        permuted.rotate_left(pivot);

        let strategy = PruneStrategy::exact();
        for stream in [&entries, &permuted] {
            for structure in [
                FrontierStructure::Plain,
                FrontierStructure::Indexed,
                FrontierStructure::Adaptive,
            ] {
                let set = run_stream(stream, structure, &strategy);
                prop_assert_eq!(surviving_vectors(&set), oracle.clone(), "{:?}", structure);
            }
        }
    }

    /// The approx-deletion ablation (unsound per the §6.2 remark, kept for
    /// experiments) also routes through the indexed insert path — and must
    /// likewise be bit-identical to the plain layout.
    #[test]
    fn approx_deletion_ablation_matches_plain(
        points in arb_stream(),
        alpha in 1.0f64..2.5,
    ) {
        let entries = build(&points);
        for &mode in &[PruneMode::CostOnly, PruneMode::PropsAware] {
            let strategy = PruneStrategy {
                alpha_internal: alpha,
                approx_deletion: true,
                mode,
            };
            let reference = run_stream(&entries, FrontierStructure::Plain, &strategy);
            let indexed = run_stream(&entries, FrontierStructure::Indexed, &strategy);
            prop_assert_eq!(fingerprint(&indexed), fingerprint(&reference));
        }
    }
}
