//! Property tests for the props-aware pruning mode:
//!
//! 1. **Soundness** (the property that motivated the mode): on random
//!    small blocks with sampling scans enabled and `TupleLoss` unselected,
//!    the props-aware EXA front 1-covers a *no-pruning* reference DP's
//!    frontier — props-aware pruning never discards a plan that leads to a
//!    cheaper complete plan.
//! 2. **Conservativity, sampling off**: without sampling scans the two
//!    modes are bit-identical on any objective set (rows are constant per
//!    table set and order groups fix the interest tag, so the props side
//!    condition never bites).
//! 3. **Never-worse, `TupleLoss` selected**: cost-only stays the
//!    auto-selected paper baseline, and the opt-in props-aware front
//!    1-covers everything the cost-only run achieved (the frontiers are
//!    not always *equal* — see the ROADMAP residual on cost-only discards
//!    under sampling even with the loss dimension selected).

use moqo_catalog::{Catalog, ColumnStats, JoinGraph, JoinGraphBuilder, TableStats};
use moqo_core::pareto::PruneMode;
use moqo_core::test_support::reference_frontier;
use moqo_core::{find_pareto_plans, Deadline, DpConfig};
use moqo_cost::{pareto_front, CostVector, Objective, ObjectiveSet, Weights};
use moqo_costmodel::{CostModel, CostModelParams};
use proptest::prelude::*;

/// A random 3-relation chain `r0 – r1 – r2` parameterized by per-table
/// cardinality/width/filter draws. Every table indexes its first column
/// (join keys land on it), so all join operators are reachable.
fn build_graph(card: [u32; 3], width: [u32; 3], filt: [u32; 3]) -> (Catalog, JoinGraph) {
    let mut cat = Catalog::new();
    for (i, ((c, w), _)) in card.iter().zip(&width).zip(&filt).enumerate() {
        let rows = f64::from(*c);
        cat.add_table(
            TableStats::new(format!("r{i}"), rows, f64::from(*w))
                .with_column(ColumnStats::new("id", rows).indexed())
                .with_column(ColumnStats::new("fk", (rows / 4.0).max(2.0))),
        );
    }
    let mut b = JoinGraphBuilder::new(&cat);
    for (i, f) in filt.iter().enumerate() {
        b = b.rel(&format!("r{i}"), 0.25 + f64::from(*f) * 0.25);
    }
    let g = b
        .join(("r0", "fk"), ("r1", "id"))
        .join(("r1", "fk"), ("r2", "id"))
        .build();
    (cat, g)
}

fn run_mode(
    model: &CostModel<'_>,
    objectives: ObjectiveSet,
    mode: PruneMode,
) -> moqo_core::DpResult {
    let config = DpConfig::exact().with_prune_mode(mode);
    find_pareto_plans(
        model,
        objectives,
        &config,
        &Weights::single(Objective::TotalTime),
        &Deadline::unlimited(),
    )
}

fn sorted_frontier(result: &moqo_core::DpResult, objectives: ObjectiveSet) -> Vec<CostVector> {
    let costs: Vec<CostVector> = result.final_plans.iter().map(|e| e.cost).collect();
    let mut frontier = pareto_front::pareto_frontier(&costs, objectives);
    frontier.sort_by(|a, b| {
        for o in Objective::ALL {
            match a.get(o).partial_cmp(&b.get(o)) {
                Some(std::cmp::Ordering::Equal) | None => continue,
                Some(ord) => return ord,
            }
        }
        std::cmp::Ordering::Equal
    });
    frontier.dedup_by(|a, b| a == b);
    frontier
}

fn arb_card() -> impl Strategy<Value = [u32; 3]> {
    (100u32..40_000, 100u32..40_000, 100u32..40_000).prop_map(|(a, b, c)| [a, b, c])
}

fn arb_width() -> impl Strategy<Value = [u32; 3]> {
    (8u32..300, 8u32..300, 8u32..300).prop_map(|(a, b, c)| [a, b, c])
}

fn arb_filt() -> impl Strategy<Value = [u32; 3]> {
    (0u32..=3, 0u32..=3, 0u32..=3).prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Props-aware pruning never discards a plan that leads to a cheaper
    /// complete plan: its EXA front 1-covers the no-pruning reference
    /// frontier, with sampling on and `TupleLoss` unselected — the regime
    /// where cost-only pruning is unsound.
    #[test]
    fn props_aware_exa_covers_the_reference_frontier(
        card in arb_card(),
        width in arb_width(),
        filt in arb_filt(),
    ) {
        let (cat, graph) = build_graph(card, width, filt);
        let params = CostModelParams::default();
        let model = CostModel::new(&params, &cat, &graph);
        let objectives =
            ObjectiveSet::from_objectives(&[Objective::TotalTime, Objective::BufferFootprint]);
        let reference = reference_frontier(&model, objectives);
        let result = run_mode(&model, objectives, PruneMode::PropsAware);
        let costs: Vec<CostVector> = result.final_plans.iter().map(|e| e.cost).collect();
        prop_assert!(pareto_front::is_approx_pareto_set(
            &costs,
            &reference,
            1.0 + 1e-9,
            objectives,
        ));
    }

    /// With sampling off, the modes are bit-identical — same entries, same
    /// candidate stream — for any non-empty objective subset.
    #[test]
    fn modes_are_bit_identical_without_sampling(
        card in arb_card(),
        width in arb_width(),
        filt in arb_filt(),
        obj_bits in 1u16..512,
    ) {
        let (cat, graph) = build_graph(card, width, filt);
        let params = CostModelParams {
            enable_sampling: false,
            ..CostModelParams::default()
        };
        let model = CostModel::new(&params, &cat, &graph);
        let objectives: ObjectiveSet = Objective::ALL
            .into_iter()
            .filter(|o| obj_bits & (1 << o.index()) != 0)
            .collect();
        let cost_only = run_mode(&model, objectives, PruneMode::CostOnly);
        let props_aware = run_mode(&model, objectives, PruneMode::PropsAware);
        prop_assert_eq!(
            cost_only.stats.considered_plans,
            props_aware.stats.considered_plans
        );
        prop_assert_eq!(cost_only.final_plans, props_aware.final_plans);
    }

    /// With `TupleLoss` selected, cost-only pruning stays the
    /// auto-selected paper baseline, and the opt-in props-aware mode is
    /// never worse: its front 1-covers every point the cost-only run
    /// achieved. (The two frontiers are *not* always equal — the loss
    /// dimension forces a dominator to carry at least as many rows, so
    /// cost-only discards can still lose buffer-corner plans that only
    /// tiny sampled cardinalities reach; the ROADMAP tracks that residual.)
    #[test]
    fn props_aware_covers_cost_only_with_tuple_loss_selected(
        card in arb_card(),
        width in arb_width(),
        filt in arb_filt(),
    ) {
        let (cat, graph) = build_graph(card, width, filt);
        let params = CostModelParams::default();
        let model = CostModel::new(&params, &cat, &graph);
        let objectives = ObjectiveSet::from_objectives(&[
            Objective::TotalTime,
            Objective::BufferFootprint,
            Objective::TupleLoss,
        ]);
        prop_assert_eq!(
            PruneMode::auto(params.enable_sampling, objectives),
            PruneMode::CostOnly
        );
        let cost_only = run_mode(&model, objectives, PruneMode::CostOnly);
        let props_aware = run_mode(&model, objectives, PruneMode::PropsAware);
        prop_assert!(pareto_front::is_approx_pareto_set(
            &sorted_frontier(&props_aware, objectives),
            &sorted_frontier(&cost_only, objectives),
            1.0 + 1e-9,
            objectives,
        ));
    }
}
