//! Property tests of the optimizer algorithms over *random* catalogs and
//! join graphs — not just TPC-H. Sampling scans are disabled so that plan
//! cardinalities are deterministic per table set; in this plan space the
//! RTA/IRA guarantees are exact theorems, and we check them verbatim.

use moqo_catalog::{Catalog, ColumnStats, JoinEdge, JoinGraph, TableStats};
use moqo_core::{exa, ira, rta, select_best, Deadline};
use moqo_cost::{dominates, Objective, ObjectiveSet, Preference};
use moqo_costmodel::{CostModel, CostModelParams};
use proptest::prelude::*;

/// Random catalog with `n` tables and a random connected join graph
/// (spanning tree plus optional extra edges).
#[derive(Debug, Clone)]
struct RandomInstance {
    catalog: Catalog,
    graph: JoinGraph,
    objectives: ObjectiveSet,
    weights: Vec<(Objective, f64)>,
}

fn arb_instance(max_rels: usize) -> impl Strategy<Value = RandomInstance> {
    (
        2..=max_rels,
        prop::collection::vec(100.0f64..200_000.0, max_rels),
        prop::collection::vec(any::<bool>(), max_rels),
        prop::collection::vec(0.05f64..1.0, max_rels),
        prop::collection::vec(0usize..usize::MAX, max_rels),
        prop::collection::vec(0.0f64..1.0, 9),
        2u16..((1 << 9) - 1),
    )
        .prop_map(
            |(n, cards, indexed, filters, parents, weight_vals, obj_bits)| {
                let mut catalog = Catalog::new();
                let mut rels = Vec::new();
                for i in 0..n {
                    let mut col = ColumnStats::new("k", cards[i].max(2.0));
                    if indexed[i] {
                        col = col.indexed();
                    }
                    catalog.add_table(
                        TableStats::new(format!("t{i}"), cards[i], 80.0).with_column(col),
                    );
                    rels.push(moqo_catalog::BaseRel {
                        table: moqo_catalog::TableId(i as u32),
                        alias: format!("t{i}"),
                        filter_selectivity: filters[i],
                    });
                }
                // Spanning tree: node i > 0 connects to a random earlier node.
                let mut edges = Vec::new();
                for i in 1..n {
                    let parent = parents[i] % i;
                    let sel = 1.0 / cards[i].max(cards[parent]).max(2.0);
                    edges.push(JoinEdge {
                        left_rel: parent,
                        left_col: 0,
                        right_rel: i,
                        right_col: 0,
                        selectivity: sel,
                    });
                }
                let graph = JoinGraph { rels, edges };
                // Random non-empty objective subset with random weights.
                let mut objectives = ObjectiveSet::empty();
                let mut weights = Vec::new();
                for o in Objective::ALL {
                    if obj_bits & (1 << o.index()) != 0 {
                        objectives.insert(o);
                        weights.push((o, weight_vals[o.index()]));
                    }
                }
                RandomInstance {
                    catalog,
                    graph,
                    objectives,
                    weights,
                }
            },
        )
}

fn sampling_free_params() -> CostModelParams {
    CostModelParams {
        enable_sampling: false,
        ..CostModelParams::default()
    }
}

fn preference(inst: &RandomInstance) -> Preference {
    let mut pref = Preference::over(inst.objectives);
    for &(o, w) in &inst.weights {
        pref.weights.set(o, w);
    }
    pref
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corollary 1, exact form: on a sampling-free plan space the RTA's
    /// weighted cost is within α_U of the exact optimum — always.
    #[test]
    fn rta_guarantee_is_exact_without_sampling(
        inst in arb_instance(4),
        alpha in 1.0f64..3.0,
    ) {
        let params = sampling_free_params();
        let model = CostModel::new(&params, &inst.catalog, &inst.graph);
        let pref = preference(&inst);
        let deadline = Deadline::unlimited();
        let exact = exa(&model, &pref, &deadline);
        let opt = select_best(&exact.final_plans, &pref).unwrap();
        let approx = rta(&model, &pref, alpha, &deadline);
        let best = select_best(&approx.final_plans, &pref).unwrap();
        let (got, want) = (pref.weighted_cost(&best.cost), pref.weighted_cost(&opt.cost));
        prop_assert!(
            got <= alpha * want + 1e-6,
            "ρ = {} exceeds α = {alpha}",
            got / want.max(1e-12)
        );
    }

    /// Theorem 3, exact form: the RTA's final plan set α_U-covers the exact
    /// Pareto frontier.
    #[test]
    fn rta_frontier_coverage_without_sampling(
        inst in arb_instance(3),
        alpha in 1.0f64..2.5,
    ) {
        let params = sampling_free_params();
        let model = CostModel::new(&params, &inst.catalog, &inst.graph);
        let pref = preference(&inst);
        let deadline = Deadline::unlimited();
        let exact = exa(&model, &pref, &deadline);
        let approx = rta(&model, &pref, alpha, &deadline);
        let exact_vectors: Vec<_> = exact.final_plans.iter().map(|e| e.cost).collect();
        let approx_vectors: Vec<_> = approx.final_plans.iter().map(|e| e.cost).collect();
        prop_assert!(moqo_cost::pareto_front::is_approx_pareto_set(
            &approx_vectors,
            &exact_vectors,
            alpha + 1e-9,
            inst.objectives,
        ));
    }

    /// The EXA's final plan set never contains a plan strictly dominated by
    /// another plan of the same output order (per-group antichain).
    #[test]
    fn exa_final_plans_are_per_order_antichains(inst in arb_instance(4)) {
        let params = sampling_free_params();
        let model = CostModel::new(&params, &inst.catalog, &inst.graph);
        let pref = preference(&inst);
        let exact = exa(&model, &pref, &Deadline::unlimited());
        for a in &exact.final_plans {
            for b in &exact.final_plans {
                if a.plan != b.plan && a.props.order == b.props.order {
                    prop_assert!(
                        !moqo_cost::strictly_dominates(&a.cost, &b.cost, inst.objectives),
                        "stored plan strictly dominated within its order group"
                    );
                }
            }
        }
    }

    /// Theorem 6, exact form: on bounded instances with a feasible plan the
    /// IRA returns a feasible plan within α_U of the bounded optimum.
    #[test]
    fn ira_guarantee_without_sampling(
        inst in arb_instance(3),
        alpha in 1.05f64..2.5,
        bound_slack in 1.05f64..3.0,
    ) {
        let params = sampling_free_params();
        let model = CostModel::new(&params, &inst.catalog, &inst.graph);
        let mut pref = preference(&inst);
        // Bound the first selected objective at slack × its minimum: always
        // feasible by construction.
        let bounded_obj = inst.objectives.iter().next().unwrap();
        let min = moqo_core::min_cost_for_objective(&model, bounded_obj, &Deadline::unlimited());
        pref.bounds.set(bounded_obj, min * bound_slack + 1e-9);

        let deadline = Deadline::unlimited();
        let exact = exa(&model, &pref, &deadline);
        let opt = select_best(&exact.final_plans, &pref).unwrap();
        prop_assert!(pref.respects_bounds(&opt.cost), "instance must be feasible");

        let out = ira(&model, &pref, alpha, &deadline);
        prop_assert!(
            pref.respects_bounds(&out.best.cost),
            "IRA must return a feasible plan when one exists"
        );
        let (got, want) = (
            pref.weighted_cost(&out.best.cost),
            pref.weighted_cost(&opt.cost),
        );
        prop_assert!(got <= alpha * want + 1e-6, "ρ = {}", got / want.max(1e-12));
    }

    /// Every plan dominated on *all nine* objectives is also dominated on
    /// any subset — so optimizing over subsets never invents new plans
    /// (consistency of the projection).
    #[test]
    fn full_frontier_projects_onto_subset_frontiers(inst in arb_instance(3)) {
        let params = sampling_free_params();
        let model = CostModel::new(&params, &inst.catalog, &inst.graph);
        let all = Preference::over(ObjectiveSet::all()).weight(Objective::TotalTime, 1.0);
        let sub = preference(&inst);
        let deadline = Deadline::unlimited();
        let full = exa(&model, &all, &deadline);
        let subset = exa(&model, &sub, &deadline);
        // Every subset-frontier cost vector is matched (dominated-or-equal
        // on the subset) by some member of the full nine-dimensional set.
        for e in &subset.final_plans {
            prop_assert!(
                full.final_plans
                    .iter()
                    .any(|f| dominates(&f.cost, &e.cost, inst.objectives)),
                "subset frontier must be covered by the full frontier"
            );
        }
    }
}
