//! Property tests for `PlanSet::prune_insert` (the `Prune` procedure of
//! Algorithms 1 and 2), checked against the oracle frontier utilities of
//! `moqo_cost::pareto_front`:
//!
//! 1. the stored set is always an antichain under strict dominance,
//! 2. under exact pruning the surviving cost-vector set equals the true
//!    Pareto frontier of everything inserted — hence insertion order never
//!    changes it,
//! 3. under approximate pruning every vector ever offered stays
//!    α-dominated by some survivor (the invariant behind Lemma 2 /
//!    Theorem 3's base case).

use moqo_core::pareto::{PlanEntry, PlanSet, PruneStrategy};
use moqo_cost::{pareto_front, CostVector, Objective, ObjectiveSet};
use moqo_plan::{PlanId, PlanProps, SortOrder};
use proptest::prelude::*;

fn objs3() -> ObjectiveSet {
    ObjectiveSet::from_objectives(&[
        Objective::TotalTime,
        Objective::BufferFootprint,
        Objective::IoLoad,
    ])
}

fn entry(t: f64, b: f64, io: f64, id: u32) -> PlanEntry {
    PlanEntry {
        cost: CostVector::from_pairs(&[
            (Objective::TotalTime, t),
            (Objective::BufferFootprint, b),
            (Objective::IoLoad, io),
        ]),
        props: PlanProps {
            rels: 1,
            rows: 1.0,
            width: 1.0,
            order: SortOrder::None,
            sampling_factor: 1.0,
        },
        plan: PlanId(id),
    }
}

fn insert_all(entries: &[PlanEntry], strategy: &PruneStrategy) -> PlanSet {
    let mut set = PlanSet::new();
    for e in entries {
        set.prune_insert(*e, strategy, objs3());
    }
    set
}

/// Projects the stored vectors to sortable triples for set comparison.
fn surviving_vectors(set: &PlanSet) -> Vec<(f64, f64, f64)> {
    let mut v: Vec<(f64, f64, f64)> = set
        .iter()
        .map(|e| {
            (
                e.cost.get(Objective::TotalTime),
                e.cost.get(Objective::BufferFootprint),
                e.cost.get(Objective::IoLoad),
            )
        })
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.dedup();
    v
}

fn arb_points() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((0.1f64..100.0, 0.1f64..100.0, 0.1f64..100.0), 1..=48)
}

proptest! {
    /// Exact pruning always leaves an antichain, and the surviving
    /// cost-vector set is exactly the Pareto frontier of every vector ever
    /// offered — in particular it is invariant under insertion order.
    #[test]
    fn exact_prune_matches_oracle_frontier_in_any_order(
        points in arb_points(),
        rotation in 0usize..48,
    ) {
        let entries: Vec<PlanEntry> = points
            .iter()
            .enumerate()
            .map(|(i, &(t, b, io))| entry(t, b, io, i as u32))
            .collect();
        let strategy = PruneStrategy::exact();

        let in_order = insert_all(&entries, &strategy);
        prop_assert!(in_order.is_antichain(objs3()));

        // Oracle: frontier of the full vector list.
        let all: Vec<CostVector> = entries.iter().map(|e| e.cost).collect();
        let mut oracle: Vec<(f64, f64, f64)> =
            pareto_front::pareto_frontier(&all, objs3())
                .iter()
                .map(|c| {
                    (
                        c.get(Objective::TotalTime),
                        c.get(Objective::BufferFootprint),
                        c.get(Objective::IoLoad),
                    )
                })
                .collect();
        oracle.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(surviving_vectors(&in_order), oracle.clone());

        // Any permutation (here: rotation of the reversal) yields the same
        // surviving cost-vector set.
        let mut permuted = entries.clone();
        permuted.reverse();
        let pivot = rotation % permuted.len();
        permuted.rotate_left(pivot);
        let shuffled = insert_all(&permuted, &strategy);
        prop_assert!(shuffled.is_antichain(objs3()));
        prop_assert_eq!(surviving_vectors(&shuffled), oracle);
    }

    /// Approximate pruning keeps the α-dominance guarantee of Lemma 2:
    /// every vector ever offered to the set is α-dominated by a survivor
    /// (deletions stay exact, so coverage cannot drift).
    #[test]
    fn approximate_prune_preserves_alpha_coverage(
        points in arb_points(),
        alpha in 1.0f64..3.0,
    ) {
        let entries: Vec<PlanEntry> = points
            .iter()
            .enumerate()
            .map(|(i, &(t, b, io))| entry(t, b, io, i as u32))
            .collect();
        let set = insert_all(&entries, &PruneStrategy::approximate(alpha));
        prop_assert!(set.is_antichain(objs3()));

        let all: Vec<CostVector> = entries.iter().map(|e| e.cost).collect();
        let kept: Vec<CostVector> = set.iter().map(|e| e.cost).collect();
        prop_assert!(kept.len() <= all.len());
        prop_assert!(
            pareto_front::is_approx_pareto_set(&kept, &all, alpha + 1e-9, objs3()),
            "α = {} must cover every inserted vector",
            alpha
        );
    }

    /// Every plan the approximate strategy rejects would also be rejected
    /// (or deleted later) under exact pruning of the same stream: an
    /// approx-accepted plan is never exactly dominated by a *current*
    /// approx-set member.
    ///
    /// (Note the set *cardinalities* are incomparable in general: an
    /// α-rejected plan may fail to perform deletions the exact strategy
    /// performs, so the approximate set can end up larger than the exact
    /// one on adversarial streams.)
    #[test]
    fn approx_accept_implies_not_dominated(
        points in arb_points(),
        alpha in 1.0f64..3.0,
    ) {
        let entries: Vec<PlanEntry> = points
            .iter()
            .enumerate()
            .map(|(i, &(t, b, io))| entry(t, b, io, i as u32))
            .collect();
        let mut set = PlanSet::new();
        let strategy = PruneStrategy::approximate(alpha);
        for e in &entries {
            let inserted = set.prune_insert(*e, &strategy, objs3());
            if inserted {
                // The new plan must actually be in the set and no member
                // may strictly dominate another (antichain at every step).
                prop_assert!(set
                    .iter()
                    .any(|s| objs3().iter().all(|o| s.cost.get(o) == e.cost.get(o))));
                prop_assert!(set.is_antichain(objs3()));
            }
        }
    }
}
