//! The TPC-H schema with scale-factor-dependent statistics.
//!
//! The paper evaluates all algorithms on TPC-H queries (§5.1, §8); only the
//! *statistics* matter for optimization, so this module builds a [`Catalog`]
//! with the standard TPC-H cardinalities, average tuple widths, and indexes
//! on the primary/foreign key columns used by the 22 queries' join
//! predicates. The query definitions themselves live in the `moqo-tpch`
//! crate.

use crate::table::{Catalog, ColumnStats, TableStats};

/// Builds the TPC-H catalog at the given scale factor (SF 1 ≈ 1 GB).
///
/// Row counts follow the TPC-H specification; `region` and `nation` are
/// fixed-size. Average tuple widths are the commonly cited per-table values.
#[must_use]
pub fn catalog(scale_factor: f64) -> Catalog {
    assert!(scale_factor > 0.0, "scale factor must be positive");
    let sf = scale_factor;
    let mut cat = Catalog::new();

    cat.add_table(
        TableStats::new("region", 5.0, 124.0)
            .with_column(ColumnStats::new("r_regionkey", 5.0).indexed()),
    );
    cat.add_table(
        TableStats::new("nation", 25.0, 118.0)
            .with_column(ColumnStats::new("n_nationkey", 25.0).indexed())
            .with_column(ColumnStats::new("n_regionkey", 5.0)),
    );
    cat.add_table(
        TableStats::new("supplier", 10_000.0 * sf, 159.0)
            .with_column(ColumnStats::new("s_suppkey", 10_000.0 * sf).indexed())
            .with_column(ColumnStats::new("s_nationkey", 25.0)),
    );
    cat.add_table(
        TableStats::new("customer", 150_000.0 * sf, 179.0)
            .with_column(ColumnStats::new("c_custkey", 150_000.0 * sf).indexed())
            .with_column(ColumnStats::new("c_nationkey", 25.0)),
    );
    cat.add_table(
        TableStats::new("part", 200_000.0 * sf, 155.0)
            .with_column(ColumnStats::new("p_partkey", 200_000.0 * sf).indexed()),
    );
    cat.add_table(
        TableStats::new("partsupp", 800_000.0 * sf, 144.0)
            .with_column(ColumnStats::new("ps_partkey", 200_000.0 * sf).indexed())
            .with_column(ColumnStats::new("ps_suppkey", 10_000.0 * sf).indexed()),
    );
    cat.add_table(
        TableStats::new("orders", 1_500_000.0 * sf, 121.0)
            .with_column(ColumnStats::new("o_orderkey", 1_500_000.0 * sf).indexed())
            .with_column(ColumnStats::new("o_custkey", 150_000.0 * sf).indexed()),
    );
    cat.add_table(
        TableStats::new("lineitem", 6_000_000.0 * sf, 129.0)
            .with_column(ColumnStats::new("l_orderkey", 1_500_000.0 * sf).indexed())
            .with_column(ColumnStats::new("l_partkey", 200_000.0 * sf).indexed())
            .with_column(ColumnStats::new("l_suppkey", 10_000.0 * sf).indexed()),
    );
    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf1_cardinalities_match_spec() {
        let cat = catalog(1.0);
        let expect = [
            ("region", 5.0),
            ("nation", 25.0),
            ("supplier", 10_000.0),
            ("customer", 150_000.0),
            ("part", 200_000.0),
            ("partsupp", 800_000.0),
            ("orders", 1_500_000.0),
            ("lineitem", 6_000_000.0),
        ];
        assert_eq!(cat.len(), expect.len());
        for (name, rows) in expect {
            let id = cat.table_by_name(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(cat.table(id).cardinality, rows, "{name}");
        }
    }

    #[test]
    fn scale_factor_scales_variable_tables_only() {
        let cat = catalog(10.0);
        let nation = cat.table_by_name("nation").unwrap();
        let lineitem = cat.table_by_name("lineitem").unwrap();
        assert_eq!(cat.table(nation).cardinality, 25.0);
        assert_eq!(cat.table(lineitem).cardinality, 60_000_000.0);
    }

    #[test]
    fn key_columns_are_indexed() {
        let cat = catalog(1.0);
        for (table, col) in [
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("lineitem", "l_orderkey"),
            ("customer", "c_custkey"),
            ("partsupp", "ps_partkey"),
        ] {
            let cid = cat.column_by_name(table, col).unwrap();
            assert!(
                cat.table(cid.table).column(cid.column).indexed,
                "{table}.{col} must be indexed"
            );
        }
    }

    #[test]
    fn m_is_lineitem_cardinality() {
        assert_eq!(catalog(1.0).max_cardinality(), 6_000_000.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_factor_rejected() {
        let _ = catalog(0.0);
    }
}
