//! Join-graph query blocks (the paper's query model `Q` plus predicates).

use crate::table::{Catalog, TableId};

/// A bitmask over the base relations of one [`JoinGraph`]; bit `i` set means
/// relation index `i` participates. Supports blocks of up to 32 relations
/// (TPC-H needs at most 8).
pub type RelMask = u32;

/// One base relation occurrence inside a query block. The same catalog table
/// may occur multiple times under different aliases (e.g. `nation n1`,
/// `nation n2` in TPC-H Q7).
#[derive(Debug, Clone, PartialEq)]
pub struct BaseRel {
    /// The catalog table scanned by this relation.
    pub table: TableId,
    /// Alias, unique within the block.
    pub alias: String,
    /// Combined selectivity of the local filter predicates on this relation
    /// (1.0 = no filter).
    pub filter_selectivity: f64,
}

/// An equi-join edge between two base relations of a block.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// Relation index of the left side.
    pub left_rel: usize,
    /// Column ordinal (within the left relation's table) of the join key.
    pub left_col: u16,
    /// Relation index of the right side.
    pub right_rel: usize,
    /// Column ordinal of the right join key.
    pub right_col: u16,
    /// Join-predicate selectivity applied to the Cartesian product.
    pub selectivity: f64,
}

impl JoinEdge {
    /// Whether this edge connects `a`-side relations with `b`-side relations
    /// (in either direction).
    #[must_use]
    pub fn crosses(&self, a: RelMask, b: RelMask) -> bool {
        let (l, r) = (1u32 << self.left_rel, 1u32 << self.right_rel);
        (a & l != 0 && b & r != 0) || (a & r != 0 && b & l != 0)
    }

    /// Whether both endpoints lie inside `mask`.
    #[must_use]
    pub fn within(&self, mask: RelMask) -> bool {
        let (l, r) = (1u32 << self.left_rel, 1u32 << self.right_rel);
        mask & l != 0 && mask & r != 0
    }
}

/// One query block: a set of base relations plus equi-join edges. This is
/// the unit the dynamic-programming optimizers work on.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinGraph {
    /// Base relations, indexed by position.
    pub rels: Vec<BaseRel>,
    /// Equi-join edges.
    pub edges: Vec<JoinEdge>,
}

impl JoinGraph {
    /// Number of base relations (`n = |Q|`).
    #[must_use]
    pub fn n_rels(&self) -> usize {
        self.rels.len()
    }

    /// Bitmask with all relations set.
    #[must_use]
    pub fn full_mask(&self) -> RelMask {
        if self.rels.is_empty() {
            0
        } else {
            (1u32 << self.rels.len()) - 1
        }
    }

    /// Filtered row count of one base relation.
    #[must_use]
    pub fn filtered_rows(&self, rel_idx: usize, catalog: &Catalog) -> f64 {
        let rel = &self.rels[rel_idx];
        (catalog.table(rel.table).cardinality * rel.filter_selectivity).max(1.0)
    }

    /// Product of the selectivities of all edges crossing between the two
    /// disjoint relation sets (1.0 when no edge crosses, i.e. a Cartesian
    /// product).
    #[must_use]
    pub fn crossing_selectivity(&self, a: RelMask, b: RelMask) -> f64 {
        debug_assert_eq!(a & b, 0, "operand masks must be disjoint");
        self.edges
            .iter()
            .filter(|e| e.crosses(a, b))
            .map(|e| e.selectivity)
            .product()
    }

    /// Whether at least one join edge connects the two disjoint sets
    /// (used for the Postgres heuristic of avoiding Cartesian products).
    #[must_use]
    pub fn connects(&self, a: RelMask, b: RelMask) -> bool {
        self.edges.iter().any(|e| e.crosses(a, b))
    }

    /// Whether the relations in `mask` form a connected subgraph.
    #[must_use]
    pub fn is_connected(&self, mask: RelMask) -> bool {
        if mask == 0 {
            return false;
        }
        let first = mask.trailing_zeros();
        let mut reached: RelMask = 1 << first;
        loop {
            let mut grew = false;
            for e in &self.edges {
                let (l, r) = (1u32 << e.left_rel, 1u32 << e.right_rel);
                if mask & l != 0 && mask & r != 0 {
                    if reached & l != 0 && reached & r == 0 {
                        reached |= r;
                        grew = true;
                    } else if reached & r != 0 && reached & l == 0 {
                        reached |= l;
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        reached == mask
    }

    /// Whether the whole block is connected (no forced Cartesian products).
    #[must_use]
    pub fn fully_connected(&self) -> bool {
        self.is_connected(self.full_mask())
    }

    /// Edges whose endpoints both lie in `mask`.
    pub fn edges_within(&self, mask: RelMask) -> impl Iterator<Item = &JoinEdge> {
        self.edges.iter().filter(move |e| e.within(mask))
    }

    /// Validates internal consistency against a catalog (indices in range).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), String> {
        for (i, rel) in self.rels.iter().enumerate() {
            if rel.table.0 as usize >= catalog.len() {
                return Err(format!("relation {i} references unknown table"));
            }
            if !(0.0..=1.0).contains(&rel.filter_selectivity) {
                return Err(format!(
                    "relation {i} has filter selectivity {} outside [0,1]",
                    rel.filter_selectivity
                ));
            }
        }
        if self.rels.len() > 32 {
            return Err("blocks of more than 32 relations are unsupported".into());
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.left_rel >= self.rels.len() || e.right_rel >= self.rels.len() {
                return Err(format!("edge {i} references unknown relation"));
            }
            if e.left_rel == e.right_rel {
                return Err(format!("edge {i} is a self-join edge"));
            }
            let lt = catalog.table(self.rels[e.left_rel].table);
            let rt = catalog.table(self.rels[e.right_rel].table);
            if e.left_col as usize >= lt.columns.len() || e.right_col as usize >= rt.columns.len() {
                return Err(format!("edge {i} references unknown column"));
            }
            if !(0.0..=1.0).contains(&e.selectivity) {
                return Err(format!(
                    "edge {i} has selectivity {} outside [0,1]",
                    e.selectivity
                ));
            }
        }
        Ok(())
    }
}

/// Convenience builder resolving table/column names against a catalog.
#[derive(Debug)]
pub struct JoinGraphBuilder<'a> {
    catalog: &'a Catalog,
    graph: JoinGraph,
}

impl<'a> JoinGraphBuilder<'a> {
    /// Starts building a block against `catalog`.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        JoinGraphBuilder {
            catalog,
            graph: JoinGraph {
                rels: Vec::new(),
                edges: Vec::new(),
            },
        }
    }

    /// Adds a base relation by table name; the alias defaults to the table
    /// name.
    ///
    /// # Panics
    ///
    /// Panics if the table is unknown.
    #[must_use]
    pub fn rel(self, table: &str, filter_selectivity: f64) -> Self {
        let alias = table.to_owned();
        self.rel_aliased(table, &alias, filter_selectivity)
    }

    /// Adds a base relation with an explicit alias.
    ///
    /// # Panics
    ///
    /// Panics if the table is unknown or the alias is duplicated.
    #[must_use]
    pub fn rel_aliased(mut self, table: &str, alias: &str, filter_selectivity: f64) -> Self {
        let table_id = self
            .catalog
            .table_by_name(table)
            .unwrap_or_else(|| panic!("unknown table {table}"));
        assert!(
            !self.graph.rels.iter().any(|r| r.alias == alias),
            "duplicate alias {alias}"
        );
        self.graph.rels.push(BaseRel {
            table: table_id,
            alias: alias.to_owned(),
            filter_selectivity,
        });
        self
    }

    /// Adds an equi-join edge `left_alias.left_col = right_alias.right_col`
    /// with selectivity `1 / max(distinct_left, distinct_right)` (System-R).
    ///
    /// # Panics
    ///
    /// Panics if an alias or column name is unknown.
    #[must_use]
    pub fn join(self, left: (&str, &str), right: (&str, &str)) -> Self {
        let sel = {
            let (l_rel, l_col) = self.resolve(left.0, left.1);
            let (r_rel, r_col) = self.resolve(right.0, right.1);
            let ld = self.column_distinct(l_rel, l_col);
            let rd = self.column_distinct(r_rel, r_col);
            1.0 / ld.max(rd).max(1.0)
        };
        self.join_with_selectivity(left, right, sel)
    }

    /// Adds an equi-join edge with an explicit selectivity.
    ///
    /// # Panics
    ///
    /// Panics if an alias or column name is unknown.
    #[must_use]
    pub fn join_with_selectivity(
        mut self,
        left: (&str, &str),
        right: (&str, &str),
        selectivity: f64,
    ) -> Self {
        let (left_rel, left_col) = self.resolve(left.0, left.1);
        let (right_rel, right_col) = self.resolve(right.0, right.1);
        self.graph.edges.push(JoinEdge {
            left_rel,
            left_col,
            right_rel,
            right_col,
            selectivity,
        });
        self
    }

    /// Finishes the block, validating it against the catalog.
    ///
    /// # Panics
    ///
    /// Panics if validation fails (builder misuse is a programming error).
    #[must_use]
    pub fn build(self) -> JoinGraph {
        self.graph
            .validate(self.catalog)
            .expect("join graph must be valid");
        self.graph
    }

    fn resolve(&self, alias: &str, column: &str) -> (usize, u16) {
        let rel_idx = self
            .graph
            .rels
            .iter()
            .position(|r| r.alias == alias)
            .unwrap_or_else(|| panic!("unknown alias {alias}"));
        let table = self.catalog.table(self.graph.rels[rel_idx].table);
        let col = table
            .column_by_name(column)
            .unwrap_or_else(|| panic!("unknown column {alias}.{column}"));
        (rel_idx, col)
    }

    fn column_distinct(&self, rel_idx: usize, col: u16) -> f64 {
        self.catalog
            .table(self.graph.rels[rel_idx].table)
            .column(col)
            .distinct
    }
}

/// A named query consisting of one or more blocks that are optimized
/// separately (the Postgres subquery heuristic the paper keeps in place, §4).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Query name, e.g. `"Q3"`.
    pub name: String,
    /// Query blocks in optimization order; the first block is the outermost.
    pub blocks: Vec<JoinGraph>,
}

impl Query {
    /// A single-block query.
    #[must_use]
    pub fn single_block(name: impl Into<String>, block: JoinGraph) -> Self {
        Query {
            name: name.into(),
            blocks: vec![block],
        }
    }

    /// Maximal number of tables in any from-clause — the paper's x-axis
    /// ordering key for Figures 5, 9 and 10.
    #[must_use]
    pub fn max_block_size(&self) -> usize {
        self.blocks.iter().map(JoinGraph::n_rels).max().unwrap_or(0)
    }

    /// Total number of base-relation occurrences across all blocks.
    #[must_use]
    pub fn total_rels(&self) -> usize {
        self.blocks.iter().map(JoinGraph::n_rels).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnStats, TableStats};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("a", 1000.0, 50.0)
                .with_column(ColumnStats::new("id", 1000.0).indexed())
                .with_column(ColumnStats::new("b_id", 100.0)),
        );
        cat.add_table(
            TableStats::new("b", 100.0, 50.0).with_column(ColumnStats::new("id", 100.0).indexed()),
        );
        cat.add_table(TableStats::new("c", 10.0, 50.0).with_column(ColumnStats::new("id", 10.0)));
        cat
    }

    fn two_rel_graph() -> (Catalog, JoinGraph) {
        let cat = catalog();
        let g = JoinGraphBuilder::new(&cat)
            .rel("a", 1.0)
            .rel("b", 0.5)
            .join(("a", "b_id"), ("b", "id"))
            .build();
        (cat, g)
    }

    #[test]
    fn builder_resolves_names() {
        let (_, g) = two_rel_graph();
        assert_eq!(g.n_rels(), 2);
        assert_eq!(g.edges.len(), 1);
        let e = &g.edges[0];
        assert_eq!((e.left_rel, e.right_rel), (0, 1));
        // System-R selectivity: 1 / max(100, 100).
        assert!((e.selectivity - 0.01).abs() < 1e-12);
    }

    #[test]
    fn filtered_rows_apply_selectivity() {
        let (cat, g) = two_rel_graph();
        assert_eq!(g.filtered_rows(0, &cat), 1000.0);
        assert_eq!(g.filtered_rows(1, &cat), 50.0);
    }

    #[test]
    fn connectivity_and_crossing() {
        let (_, g) = two_rel_graph();
        assert!(g.connects(0b01, 0b10));
        assert!(g.is_connected(0b11));
        assert!(g.is_connected(0b01));
        assert!(g.fully_connected());
        assert!((g.crossing_selectivity(0b01, 0b10) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_detected() {
        let cat = catalog();
        let g = JoinGraphBuilder::new(&cat)
            .rel("a", 1.0)
            .rel("c", 1.0)
            .build();
        assert!(!g.fully_connected());
        assert!(!g.connects(0b01, 0b10));
        assert_eq!(g.crossing_selectivity(0b01, 0b10), 1.0);
    }

    #[test]
    fn self_alias_duplicates_allowed_for_same_table() {
        let cat = catalog();
        let g = JoinGraphBuilder::new(&cat)
            .rel_aliased("b", "b1", 1.0)
            .rel_aliased("b", "b2", 1.0)
            .join(("b1", "id"), ("b2", "id"))
            .build();
        assert_eq!(g.n_rels(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate alias")]
    fn duplicate_alias_panics() {
        let cat = catalog();
        let _ = JoinGraphBuilder::new(&cat).rel("a", 1.0).rel("a", 1.0);
    }

    #[test]
    fn validation_catches_bad_selectivity() {
        let (cat, mut g) = two_rel_graph();
        g.edges[0].selectivity = 1.5;
        assert!(g.validate(&cat).is_err());
    }

    #[test]
    fn query_block_sizes() {
        let (_, g) = two_rel_graph();
        let q = Query {
            name: "test".into(),
            blocks: vec![g.clone(), g],
        };
        assert_eq!(q.max_block_size(), 2);
        assert_eq!(q.total_rels(), 4);
    }

    #[test]
    fn full_mask_matches_rel_count() {
        let (_, g) = two_rel_graph();
        assert_eq!(g.full_mask(), 0b11);
    }
}
