//! System-R style cardinality estimation over relation subsets.
//!
//! The estimated output cardinality of joining the relations in `mask` is
//!
//! ```text
//! |⋈ mask| = Π_{r ∈ mask} |σ(r)|  ×  Π_{e ⊆ mask} sel(e)
//! ```
//!
//! i.e. the product of filtered base cardinalities times the selectivities of
//! all join edges whose endpoints both lie in the subset. This estimate only
//! depends on the subset — not on the join order — which is exactly the
//! invariant the dynamic-programming optimizers rely on. Sampling scans
//! multiply the estimate by a plan-specific *sampling factor* that is tracked
//! as a plan property (see `moqo-plan`), not here.

use crate::query::{JoinGraph, RelMask};
use crate::table::Catalog;

/// Estimated row count of joining the relations in `mask` (no sampling).
///
/// Returns at least 1.0 — the optimizer's cost formulas assume non-degenerate
/// inputs, matching Postgres' `clamp_row_est`.
#[must_use]
pub fn subset_rows(graph: &JoinGraph, catalog: &Catalog, mask: RelMask) -> f64 {
    debug_assert!(mask != 0 && mask <= graph.full_mask());
    let mut rows = 1.0;
    for rel_idx in 0..graph.n_rels() {
        if mask & (1 << rel_idx) != 0 {
            rows *= graph.filtered_rows(rel_idx, catalog);
        }
    }
    for edge in graph.edges_within(mask) {
        rows *= edge.selectivity;
    }
    rows.max(1.0)
}

/// Combined tuple width (bytes) of the join result for `mask`: the sum of
/// the participating tables' tuple widths (joins concatenate tuples).
#[must_use]
pub fn subset_width(graph: &JoinGraph, catalog: &Catalog, mask: RelMask) -> f64 {
    let mut width = 0.0;
    for (rel_idx, rel) in graph.rels.iter().enumerate() {
        if mask & (1 << rel_idx) != 0 {
            width += catalog.table(rel.table).tuple_bytes;
        }
    }
    width.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinGraphBuilder;
    use crate::table::{Catalog, ColumnStats, TableStats};

    fn setup() -> (Catalog, JoinGraph) {
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("orders", 1000.0, 100.0)
                .with_column(ColumnStats::new("o_orderkey", 1000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("lineitem", 4000.0, 120.0)
                .with_column(ColumnStats::new("l_orderkey", 1000.0).indexed()),
        );
        cat.add_table(
            TableStats::new("customer", 100.0, 80.0)
                .with_column(ColumnStats::new("c_custkey", 100.0).indexed()),
        );
        let g = JoinGraphBuilder::new(&cat)
            .rel("orders", 0.5)
            .rel("lineitem", 1.0)
            .join(("orders", "o_orderkey"), ("lineitem", "l_orderkey"))
            .build();
        (cat, g)
    }

    #[test]
    fn singleton_rows_are_filtered_cardinality() {
        let (cat, g) = setup();
        assert_eq!(subset_rows(&g, &cat, 0b01), 500.0);
        assert_eq!(subset_rows(&g, &cat, 0b10), 4000.0);
    }

    #[test]
    fn join_rows_apply_edge_selectivity() {
        let (cat, g) = setup();
        // 500 × 4000 × (1/1000) = 2000.
        assert_eq!(subset_rows(&g, &cat, 0b11), 2000.0);
    }

    #[test]
    fn estimate_is_join_order_independent() {
        let (cat, g) = setup();
        // Whatever the split, the estimate for the full set is the same:
        // this is the invariant the DP relies on.
        let full = subset_rows(&g, &cat, 0b11);
        let l = subset_rows(&g, &cat, 0b01);
        let r = subset_rows(&g, &cat, 0b10);
        let sel = g.crossing_selectivity(0b01, 0b10);
        assert!((full - l * r * sel).abs() < 1e-9);
    }

    #[test]
    fn rows_clamped_to_one() {
        let mut cat = Catalog::new();
        cat.add_table(TableStats::new("t", 10.0, 10.0).with_column(ColumnStats::new("id", 10.0)));
        let g = JoinGraphBuilder::new(&cat).rel("t", 0.0001).build();
        assert_eq!(subset_rows(&g, &cat, 0b1), 1.0);
    }

    #[test]
    fn width_sums_participants() {
        let (cat, g) = setup();
        assert_eq!(subset_width(&g, &cat, 0b01), 100.0);
        assert_eq!(subset_width(&g, &cat, 0b11), 220.0);
    }
}
