//! Canonical join-graph signatures for plan caching.
//!
//! A serving layer wants to recognize that two [`JoinGraph`]s describe the
//! same optimization problem even when their relation and edge lists were
//! assembled in different orders. [`JoinGraph::signature`] produces a 64-bit
//! fingerprint that is invariant under
//!
//! * permutation of the relation list (indices are relabelled consistently),
//! * permutation of the edge list, and
//! * flipping the orientation of any edge (`a.x = b.y` vs `b.y = a.x`),
//!
//! while depending on everything that shapes the plan space: the multiset of
//! scanned tables, per-relation filter selectivities, and the join topology
//! with its key columns and selectivities. Aliases are deliberately ignored
//! — they name relations for humans but never influence costs.
//!
//! The construction is one-dimensional Weisfeiler–Lehman colour refinement:
//! every relation starts from a label hashing its local statistics, then a
//! few rounds fold in the sorted multiset of (edge descriptor, neighbour
//! label) pairs. Sorting makes every step order-free; the final signature
//! hashes the sorted relation labels together with the sorted canonical
//! edge descriptors. Distinct graphs may collide (it is a hash), so exact
//! cache serving additionally compares the stored graph for equality.

use crate::query::{JoinEdge, JoinGraph};

/// A 64-bit canonical fingerprint of one [`JoinGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphSignature(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — a stable, dependency-free hash whose value is
/// fixed by this crate (unlike `DefaultHasher`, whose algorithm is
/// unspecified across Rust versions).
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(value: u64, seed: u64) -> u64 {
    fnv1a(&value.to_le_bytes(), seed)
}

/// WL refinement rounds. Two rounds already separate every topology this
/// repository generates (chain/star/cycle/clique and the 22 TPC-H blocks);
/// a third adds margin for adversarial near-symmetric graphs.
const WL_ROUNDS: usize = 3;

impl JoinGraph {
    /// The canonical signature of this block; see the module docs for the
    /// invariances. `O(rounds · E log E)` time.
    #[must_use]
    pub fn signature(&self) -> GraphSignature {
        // Round 0: local relation statistics (table, filter selectivity).
        let mut labels: Vec<u64> = self
            .rels
            .iter()
            .map(|r| {
                let mut h = fnv_u64(u64::from(r.table.0), FNV_OFFSET);
                h = fnv_u64(r.filter_selectivity.to_bits(), h);
                h
            })
            .collect();

        // An edge as seen from one endpoint: (my key column, peer key
        // column, selectivity, peer label). Orientation-free by
        // construction — each endpoint describes the edge from its side.
        let view = |e: &JoinEdge, from_left: bool, labels: &[u64]| -> u64 {
            let (my_col, peer_col, peer) = if from_left {
                (e.left_col, e.right_col, e.right_rel)
            } else {
                (e.right_col, e.left_col, e.left_rel)
            };
            let mut h = fnv_u64(u64::from(my_col), FNV_OFFSET);
            h = fnv_u64(u64::from(peer_col), h);
            h = fnv_u64(e.selectivity.to_bits(), h);
            fnv_u64(labels[peer], h)
        };

        let mut incident: Vec<Vec<u64>> = vec![Vec::new(); self.rels.len()];
        for _ in 0..WL_ROUNDS {
            for views in &mut incident {
                views.clear();
            }
            for e in &self.edges {
                incident[e.left_rel].push(view(e, true, &labels));
                incident[e.right_rel].push(view(e, false, &labels));
            }
            labels = labels
                .iter()
                .zip(&mut incident)
                .map(|(&label, views)| {
                    views.sort_unstable();
                    let mut h = fnv_u64(label, FNV_OFFSET);
                    for &v in views.iter() {
                        h = fnv_u64(v, h);
                    }
                    h
                })
                .collect();
        }

        // Final fold: sorted relation labels, then sorted canonical edge
        // descriptors (symmetric over the two endpoint views).
        let mut sorted_labels = labels.clone();
        sorted_labels.sort_unstable();
        let mut edge_descriptors: Vec<u64> = self
            .edges
            .iter()
            .map(|e| {
                let a = fnv_u64(labels[e.left_rel], view(e, true, &labels));
                let b = fnv_u64(labels[e.right_rel], view(e, false, &labels));
                a.min(b) ^ a.max(b).rotate_left(17)
            })
            .collect();
        edge_descriptors.sort_unstable();

        let mut h = fnv_u64(self.rels.len() as u64, FNV_OFFSET);
        h = fnv_u64(self.edges.len() as u64, h);
        for l in sorted_labels {
            h = fnv_u64(l, h);
        }
        for d in edge_descriptors {
            h = fnv_u64(d, h);
        }
        GraphSignature(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{BaseRel, JoinGraphBuilder};
    use crate::table::{Catalog, ColumnStats, TableStats};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("a", 1000.0, 50.0)
                .with_column(ColumnStats::new("id", 1000.0).indexed())
                .with_column(ColumnStats::new("b_id", 100.0)),
        );
        cat.add_table(
            TableStats::new("b", 100.0, 50.0).with_column(ColumnStats::new("id", 100.0).indexed()),
        );
        cat.add_table(TableStats::new("c", 10.0, 50.0).with_column(ColumnStats::new("id", 10.0)));
        cat
    }

    fn chain(cat: &Catalog) -> JoinGraph {
        JoinGraphBuilder::new(cat)
            .rel("a", 0.5)
            .rel("b", 1.0)
            .rel("c", 1.0)
            .join(("a", "b_id"), ("b", "id"))
            .join_with_selectivity(("b", "id"), ("c", "id"), 0.1)
            .build()
    }

    /// Applies a relation permutation: `perm[old_index] = new_index`.
    fn permute(g: &JoinGraph, perm: &[usize]) -> JoinGraph {
        let mut rels: Vec<BaseRel> = g.rels.clone();
        for (old, r) in g.rels.iter().enumerate() {
            rels[perm[old]] = r.clone();
        }
        let edges = g
            .edges
            .iter()
            .map(|e| JoinEdge {
                left_rel: perm[e.left_rel],
                right_rel: perm[e.right_rel],
                ..e.clone()
            })
            .collect();
        JoinGraph { rels, edges }
    }

    #[test]
    fn signature_is_deterministic() {
        let cat = catalog();
        assert_eq!(chain(&cat).signature(), chain(&cat).signature());
    }

    #[test]
    fn signature_invariant_under_relation_permutation() {
        let cat = catalog();
        let g = chain(&cat);
        for perm in [[1, 0, 2], [2, 1, 0], [1, 2, 0], [2, 0, 1]] {
            let p = permute(&g, &perm);
            assert_eq!(g.signature(), p.signature(), "perm {perm:?}");
        }
    }

    #[test]
    fn signature_invariant_under_edge_permutation_and_flip() {
        let cat = catalog();
        let g = chain(&cat);
        let mut reordered = g.clone();
        reordered.edges.reverse();
        assert_eq!(g.signature(), reordered.signature());
        let mut flipped = g.clone();
        for e in &mut flipped.edges {
            std::mem::swap(&mut e.left_rel, &mut e.right_rel);
            std::mem::swap(&mut e.left_col, &mut e.right_col);
        }
        assert_eq!(g.signature(), flipped.signature());
    }

    #[test]
    fn signature_ignores_aliases() {
        let cat = catalog();
        let g = chain(&cat);
        let mut renamed = g.clone();
        for (i, r) in renamed.rels.iter_mut().enumerate() {
            r.alias = format!("alias_{i}");
        }
        assert_eq!(g.signature(), renamed.signature());
    }

    #[test]
    fn signature_separates_different_graphs() {
        let cat = catalog();
        let g = chain(&cat);
        // Different filter selectivity.
        let mut filtered = g.clone();
        filtered.rels[0].filter_selectivity = 0.25;
        assert_ne!(g.signature(), filtered.signature());
        // Different join selectivity.
        let mut sel = g.clone();
        sel.edges[1].selectivity = 0.2;
        assert_ne!(g.signature(), sel.signature());
        // Different key column.
        let mut col = g.clone();
        col.edges[0].left_col = 0;
        assert_ne!(g.signature(), col.signature());
        // Different topology over the same relations: drop an edge.
        let mut star = g.clone();
        star.edges.pop();
        assert_ne!(g.signature(), star.signature());
        // Different table multiset.
        let two = JoinGraphBuilder::new(&cat)
            .rel("a", 0.5)
            .rel("b", 1.0)
            .join(("a", "b_id"), ("b", "id"))
            .build();
        assert_ne!(g.signature(), two.signature());
    }

    #[test]
    fn signature_separates_chain_from_triangle() {
        // Same relations and edge count cannot be confused with different
        // connectivity: chain a–b–c vs a–b plus a second parallel a–b edge.
        let cat = catalog();
        let g = chain(&cat);
        let mut parallel = g.clone();
        parallel.edges[1] = JoinEdge {
            left_rel: 0,
            left_col: 1,
            right_rel: 1,
            right_col: 0,
            selectivity: 0.1,
        };
        assert_ne!(g.signature(), parallel.signature());
    }
}
