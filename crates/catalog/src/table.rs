//! Base-table and column statistics.

use std::fmt;

use crate::PAGE_BYTES;

/// Identifier of a table inside a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifier of a column: table plus column ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId {
    /// The owning table.
    pub table: TableId,
    /// Zero-based column ordinal inside the table.
    pub column: u16,
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name (unique within its table).
    pub name: String,
    /// Estimated number of distinct values.
    pub distinct: f64,
    /// Whether an index on this column exists (enables index scans and
    /// index-nested-loop joins with this column as inner key).
    pub indexed: bool,
}

impl ColumnStats {
    /// A non-indexed column with the given distinct count.
    #[must_use]
    pub fn new(name: impl Into<String>, distinct: f64) -> Self {
        ColumnStats {
            name: name.into(),
            distinct,
            indexed: false,
        }
    }

    /// Marks the column as indexed (builder style).
    #[must_use]
    pub fn indexed(mut self) -> Self {
        self.indexed = true;
        self
    }
}

/// Statistics for one base table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Estimated row count.
    pub cardinality: f64,
    /// Average tuple width in bytes.
    pub tuple_bytes: f64,
    /// Column statistics in ordinal order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Creates table statistics; columns are added with [`TableStats::with_column`].
    #[must_use]
    pub fn new(name: impl Into<String>, cardinality: f64, tuple_bytes: f64) -> Self {
        debug_assert!(cardinality >= 0.0 && tuple_bytes > 0.0);
        TableStats {
            name: name.into(),
            cardinality,
            tuple_bytes,
            columns: Vec::new(),
        }
    }

    /// Adds a column (builder style).
    #[must_use]
    pub fn with_column(mut self, column: ColumnStats) -> Self {
        self.columns.push(column);
        self
    }

    /// Number of heap pages occupied by the table.
    #[must_use]
    pub fn pages(&self) -> f64 {
        (self.cardinality * self.tuple_bytes / PAGE_BYTES).max(1.0)
    }

    /// Looks up a column ordinal by name.
    #[must_use]
    pub fn column_by_name(&self, name: &str) -> Option<u16> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as u16)
    }

    /// Column stats by ordinal.
    ///
    /// # Panics
    ///
    /// Panics if the ordinal is out of range.
    #[must_use]
    pub fn column(&self, ordinal: u16) -> &ColumnStats {
        &self.columns[ordinal as usize]
    }
}

/// A catalog of base tables with statistics — the planner-facing slice of
/// what Postgres keeps in `pg_class` / `pg_statistic`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: Vec<TableStats>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a table and returns its id.
    pub fn add_table(&mut self, table: TableStats) -> TableId {
        debug_assert!(
            self.table_by_name(&table.name).is_none(),
            "duplicate table name {}",
            table.name
        );
        let id = TableId(self.tables.len() as u32);
        self.tables.push(table);
        id
    }

    /// Table stats by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this catalog.
    #[must_use]
    pub fn table(&self, id: TableId) -> &TableStats {
        &self.tables[id.0 as usize]
    }

    /// Looks up a table id by name.
    #[must_use]
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(i as u32))
    }

    /// Resolves a `table.column` pair by names.
    #[must_use]
    pub fn column_by_name(&self, table: &str, column: &str) -> Option<ColumnId> {
        let table_id = self.table_by_name(table)?;
        let ordinal = self.table(table_id).column_by_name(column)?;
        Some(ColumnId {
            table: table_id,
            column: ordinal,
        })
    }

    /// Number of tables in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Maximum base-table cardinality (the paper's `m` used in complexity
    /// bounds, §3).
    #[must_use]
    pub fn max_cardinality(&self) -> f64 {
        self.tables
            .iter()
            .map(|t| t.cardinality)
            .fold(0.0, f64::max)
    }

    /// Iterates over `(id, stats)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableStats)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, t) in self.iter() {
            writeln!(
                f,
                "#{:<2} {:<12} rows={:>12.0} width={:>4.0}B pages={:>8.0}",
                id.0,
                t.name,
                t.cardinality,
                t.tuple_bytes,
                t.pages()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableStats::new("orders", 1_500_000.0, 100.0)
                .with_column(ColumnStats::new("o_orderkey", 1_500_000.0).indexed())
                .with_column(ColumnStats::new("o_custkey", 150_000.0)),
        );
        cat.add_table(
            TableStats::new("lineitem", 6_000_000.0, 120.0)
                .with_column(ColumnStats::new("l_orderkey", 1_500_000.0).indexed()),
        );
        cat
    }

    #[test]
    fn add_and_lookup_tables() {
        let cat = sample_catalog();
        assert_eq!(cat.len(), 2);
        let orders = cat.table_by_name("orders").unwrap();
        assert_eq!(cat.table(orders).cardinality, 1_500_000.0);
        assert!(cat.table_by_name("nope").is_none());
    }

    #[test]
    fn column_lookup() {
        let cat = sample_catalog();
        let col = cat.column_by_name("orders", "o_custkey").unwrap();
        assert_eq!(col.column, 1);
        assert!(!cat.table(col.table).column(col.column).indexed);
        assert!(cat.column_by_name("orders", "nope").is_none());
    }

    #[test]
    fn pages_round_up_to_at_least_one() {
        let tiny = TableStats::new("tiny", 5.0, 10.0);
        assert_eq!(tiny.pages(), 1.0);
        let big = TableStats::new("big", 1_000_000.0, 81.92);
        assert!((big.pages() - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn max_cardinality_is_m() {
        assert_eq!(sample_catalog().max_cardinality(), 6_000_000.0);
    }

    #[test]
    fn display_lists_tables() {
        let s = sample_catalog().to_string();
        assert!(s.contains("orders"));
        assert!(s.contains("lineitem"));
    }
}
