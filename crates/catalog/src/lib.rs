//! Catalog, statistics and join-graph query model for the MOQO optimizer.
//!
//! The paper's algorithms run inside the Postgres optimizer; this crate
//! provides the planner-facing substrate Postgres would supply:
//!
//! * [`Catalog`] / [`TableStats`] / [`ColumnStats`] — base-table statistics
//!   (cardinality, tuple width, per-column distinct counts, index flags),
//! * [`JoinGraph`] — one *query block* as a set of base relations plus
//!   equi-join edges with selectivities (the paper's `Q`, a set of tables to
//!   join; join predicates "are considered in the implementations"),
//! * [`Query`] — a named query consisting of one or more blocks, mirroring
//!   the Postgres heuristic (kept by the paper, §4) of optimizing different
//!   subqueries of the same query separately,
//! * classic System-R style cardinality estimation over table subsets.
//!
//! Table subsets inside one block are represented as `u32` bitmasks
//! ([`RelMask`]), which is sufficient for TPC-H (at most 8 relations per
//! block) and keeps the dynamic programming tables dense.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cardinality;
mod query;
mod signature;
mod table;

pub mod tpch;

pub use cardinality::{subset_rows, subset_width};
pub use query::{BaseRel, JoinEdge, JoinGraph, JoinGraphBuilder, Query, RelMask};
pub use signature::GraphSignature;
pub use table::{Catalog, ColumnId, ColumnStats, TableId, TableStats};

/// Default page size used to convert widths×rows into page counts, in bytes
/// (Postgres' BLCKSZ).
pub const PAGE_BYTES: f64 = 8192.0;
