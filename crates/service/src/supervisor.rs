//! Worker supervision: heartbeat epochs and the live-worker registry.
//!
//! Every worker owns a [`WorkerSlot`] and bumps its epoch at the top of
//! each loop iteration — including the ≤5 ms park timeouts of an idle
//! queue, so a healthy worker's epoch *always* advances, busy or idle. The
//! supervisor thread (spawned by the service) scans the registry on a
//! short tick and classifies each worker:
//!
//! * **dead** — the thread exited (a `KillWorker` fault, or a panic that
//!   escaped the job guard, e.g. inside the queue itself). The handle is
//!   reaped (its panic payload, if any, is swallowed here — never
//!   propagated into the supervisor or `Drop`) and the service respawns a
//!   replacement onto the *same queue shard*, so the dead worker's backlog
//!   keeps its consumer affinity.
//! * **stalled** — the epoch has not advanced for `stall_after` while the
//!   thread is still running: the worker is wedged inside a job. Rust has
//!   no safe way to kill a wedged thread, so the entry is *abandoned*
//!   (handle detached — joining it could hang shutdown forever) and a
//!   substitute is spawned onto the shard. If the wedged worker ever
//!   unsticks it simply becomes an extra consumer until the queue closes,
//!   which the work-stealing MPMC queue tolerates by construction.
//!
//! The registry mutex is cold: only the supervisor tick, respawn, and
//! shutdown touch it — never the submit or completion hot paths.

use moqo_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use moqo_sync::Arc;
use moqo_sync::{Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One worker's heartbeat: an epoch stamped every loop iteration plus an
/// explicit exit flag (set before the thread returns, so death is visible
/// even before the OS reaps the thread).
#[derive(Debug, Default)]
pub(crate) struct WorkerSlot {
    epoch: AtomicU64,
    exited: AtomicBool,
}

impl WorkerSlot {
    /// Stamps one heartbeat; called at the top of every worker-loop
    /// iteration (relaxed — the supervisor only compares for *change*).
    #[moqo::hot_path]
    pub(crate) fn beat(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the worker as exiting (cleanly or not).
    pub(crate) fn mark_exited(&self) {
        self.exited.store(true, Ordering::Release);
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    fn has_exited(&self) -> bool {
        self.exited.load(Ordering::Acquire)
    }
}

/// Registry entry for one live worker.
pub(crate) struct WorkerEntry {
    pub(crate) shard: usize,
    pub(crate) slot: Arc<WorkerSlot>,
    pub(crate) handle: JoinHandle<()>,
    /// Supervisor bookkeeping: the epoch seen last tick, and how long it
    /// has been unchanged.
    last_epoch: u64,
    stale_for: Duration,
}

/// What one supervisor scan found wrong with a worker; the shard is where
/// the replacement must go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Finding {
    /// The worker thread exited; its handle was reaped.
    Dead {
        /// Queue shard the dead worker owned.
        shard: usize,
    },
    /// The worker is wedged in a job; its handle was detached.
    Stalled {
        /// Queue shard the wedged worker owned.
        shard: usize,
    },
}

/// Shared supervision state: the worker registry plus the supervisor
/// thread's parking and shutdown signalling.
pub(crate) struct Supervision {
    entries: Mutex<Vec<WorkerEntry>>,
    shutting_down: AtomicBool,
    /// Monotone worker-name generation counter (respawns get fresh names).
    generation: AtomicUsize,
    parker: Mutex<()>,
    wake: Condvar,
}

impl Supervision {
    pub(crate) fn new() -> Self {
        Supervision {
            entries: Mutex::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
            generation: AtomicUsize::new(0),
            parker: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Registers a newly spawned worker.
    pub(crate) fn register(&self, shard: usize, slot: Arc<WorkerSlot>, handle: JoinHandle<()>) {
        let last_epoch = slot.epoch();
        self.entries
            .lock()
            .expect("supervision registry poisoned")
            .push(WorkerEntry {
                shard,
                slot,
                handle,
                last_epoch,
                stale_for: Duration::ZERO,
            });
    }

    /// Fresh generation number for a worker thread name.
    pub(crate) fn next_generation(&self) -> usize {
        self.generation.fetch_add(1, Ordering::Relaxed)
    }

    /// One supervision pass: reaps dead workers, abandons wedged ones, and
    /// returns what the service must respawn. `tick` is the time since the
    /// previous pass; `stall_after == ZERO` disables stall detection.
    pub(crate) fn scan(&self, tick: Duration, stall_after: Duration) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut entries = self.entries.lock().expect("supervision registry poisoned");
        let mut index = 0;
        while index < entries.len() {
            let entry = &mut entries[index];
            if entry.slot.has_exited() || entry.handle.is_finished() {
                let entry = entries.swap_remove(index);
                // The thread already exited (or is returning); join is
                // near-instant. A panic payload must die here: letting it
                // unwind out of the supervisor would kill supervision.
                drop(entry.handle.join());
                findings.push(Finding::Dead { shard: entry.shard });
                continue;
            }
            let epoch = entry.slot.epoch();
            if epoch == entry.last_epoch {
                entry.stale_for += tick;
                if !stall_after.is_zero() && entry.stale_for >= stall_after {
                    // Wedged: detach (a join could hang forever) and let
                    // the service field a substitute on the same shard.
                    let entry = entries.swap_remove(index);
                    drop(entry.handle);
                    findings.push(Finding::Stalled { shard: entry.shard });
                    continue;
                }
            } else {
                entry.last_epoch = epoch;
                entry.stale_for = Duration::ZERO;
            }
            index += 1;
        }
        findings
    }

    /// Workers currently alive: registered, not abandoned, and whose
    /// thread is actually still running — a worker that died but has not
    /// been reaped by a scan yet does not count.
    pub(crate) fn alive(&self) -> usize {
        self.entries
            .lock()
            .expect("supervision registry poisoned")
            .iter()
            .filter(|entry| !entry.slot.has_exited() && !entry.handle.is_finished())
            .count()
    }

    /// Removes and returns every live handle — the shutdown join set.
    pub(crate) fn take_handles(&self) -> Vec<JoinHandle<()>> {
        self.entries
            .lock()
            .expect("supervision registry poisoned")
            .drain(..)
            .map(|entry| entry.handle)
            .collect()
    }

    /// Signals the supervisor loop to exit and wakes it.
    pub(crate) fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
        self.nudge();
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// Wakes the supervisor out of its tick sleep (e.g. a worker about to
    /// die from an injected kill, so the respawn lands promptly).
    pub(crate) fn nudge(&self) {
        drop(self.parker.lock().expect("supervision parker poisoned"));
        self.wake.notify_all();
    }

    /// Parks the supervisor thread for up to `tick` (early-woken by
    /// [`Supervision::nudge`]).
    pub(crate) fn park(&self, tick: Duration) {
        let guard = self.parker.lock().expect("supervision parker poisoned");
        drop(
            self.wake
                .wait_timeout(guard, tick)
                .expect("supervision parker poisoned"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_workers_are_reaped_and_reported() {
        let sup = Supervision::new();
        let slot = Arc::new(WorkerSlot::default());
        let worker_slot = Arc::clone(&slot);
        let handle = std::thread::spawn(move || {
            worker_slot.beat();
            worker_slot.mark_exited();
        });
        sup.register(3, slot, handle);
        // The thread flips `exited` before returning; wait for the flag.
        while sup
            .scan(Duration::from_millis(1), Duration::ZERO)
            .is_empty()
        {
            std::thread::yield_now();
        }
        assert_eq!(sup.alive(), 0);
    }

    #[test]
    fn stalled_workers_are_abandoned_after_the_threshold() {
        let sup = Supervision::new();
        let slot = Arc::new(WorkerSlot::default());
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            // Wedged: never beats, never exits, until released.
            let _ = done_rx.recv();
        });
        sup.register(1, Arc::clone(&slot), handle);
        let tick = Duration::from_millis(10);
        let stall_after = Duration::from_millis(25);
        assert!(sup.scan(tick, stall_after).is_empty(), "not stale yet");
        assert!(sup.scan(tick, stall_after).is_empty(), "still under");
        let findings = sup.scan(tick, stall_after);
        assert_eq!(findings, vec![Finding::Stalled { shard: 1 }]);
        assert_eq!(sup.alive(), 0);
        done_tx.send(()).unwrap();
    }

    #[test]
    fn beating_workers_are_never_flagged() {
        let sup = Supervision::new();
        let slot = Arc::new(WorkerSlot::default());
        let worker_slot = Arc::clone(&slot);
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            let _ = done_rx.recv();
            worker_slot.mark_exited();
        });
        sup.register(0, Arc::clone(&slot), handle);
        for _ in 0..5 {
            slot.beat(); // heartbeats arrive between scans
            assert!(sup
                .scan(Duration::from_secs(1), Duration::from_millis(1))
                .is_empty());
        }
        assert_eq!(sup.alive(), 1);
        done_tx.send(()).unwrap();
        while sup
            .scan(Duration::from_millis(1), Duration::ZERO)
            .is_empty()
        {
            std::thread::yield_now();
        }
    }
}
