//! The optimization service: submission, scheduling, and the worker pool.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use moqo_catalog::Catalog;
use moqo_core::{select_best, Algorithm, Optimizer, PruneMode};
use moqo_costmodel::CostModelParams;

use crate::cache::{CacheKey, CacheLookup, CacheSnapshot, EntryStats, PlanCache};
use crate::metrics::{AlgorithmKind, MetricsSnapshot, ServiceMetrics};
use crate::policy::{
    Admission, AlgorithmPolicy, DeadlineAwarePolicy, LearnedBlockTimes, PolicyContext,
};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{
    AlphaCertificate, BlockOutcome, BlockSource, OptimizationRequest, OptimizationResponse,
    ServiceError,
};

/// Tuning knobs of one [`OptimizationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing optimizations (default 2; pass the core
    /// count for throughput, 1 for fully deterministic processing order).
    pub workers: usize,
    /// Bounded work-queue capacity; submissions beyond it are rejected with
    /// [`ServiceError::QueueFull`] (default 256).
    pub queue_capacity: usize,
    /// Plan-cache capacity in entries (default 1024).
    pub cache_capacity: usize,
    /// Plan-cache shard count (default 8).
    pub cache_shards: usize,
    /// EWMA smoothing factor for the learned per-block-size wall times
    /// that refine the deadline split (default 0.2; `0.0` disables
    /// learning and the split trusts the policy's static model).
    pub ewma_smoothing: f64,
    /// Cost-model parameters shared by every optimization.
    pub params: CostModelParams,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            ewma_smoothing: 0.2,
            params: CostModelParams::default(),
        }
    }
}

type Responder = mpsc::Sender<Result<OptimizationResponse, ServiceError>>;

struct Job {
    request: OptimizationRequest,
    submitted: Instant,
    responder: Responder,
}

struct ServiceInner {
    catalog: Catalog,
    params: CostModelParams,
    queue: BoundedQueue<Job>,
    cache: PlanCache,
    metrics: ServiceMetrics,
    policy: Box<dyn AlgorithmPolicy>,
    /// Measured per-block-size wall times; refines the deadline split.
    learned: LearnedBlockTimes,
}

impl ServiceInner {
    /// The weight of one block in the deadline split: the learned EWMA of
    /// measured wall times when a sample exists, the policy's static
    /// model otherwise — so the split starts from the `3.5ⁿ` prior and
    /// converges to the machine it actually runs on.
    fn block_time_estimate(&self, block_size: usize) -> Duration {
        self.learned
            .estimate(block_size)
            .unwrap_or_else(|| self.policy.block_estimate(block_size))
    }

    /// Admission across all blocks of a request against deadline `total`,
    /// with per-block proportional shares. `Ok` means every block admits
    /// *some* algorithm under the optimistic assumption that no budget
    /// has been spent yet — used as the submit-time fast path, and
    /// re-checked per block with real elapsed time at processing time.
    fn admit_all_blocks(
        &self,
        request: &OptimizationRequest,
        total: Duration,
    ) -> Result<(), ServiceError> {
        let estimates: Vec<Duration> = request
            .query
            .blocks
            .iter()
            .map(|g| self.block_time_estimate(g.n_rels()))
            .collect();
        for (idx, graph) in request.query.blocks.iter().enumerate() {
            let share = block_share(total, &estimates[idx..]);
            let decision = self.policy.admit(&PolicyContext {
                block_size: graph.n_rels(),
                alpha: request.alpha,
                bounded: request.is_bounded(),
                remaining: Some(share),
                hint: request.hint,
            });
            if decision == Admission::Reject {
                return Err(ServiceError::Rejected(format!(
                    "deadline budget {share:?} admits no algorithm for a {}-relation block",
                    graph.n_rels()
                )));
            }
        }
        Ok(())
    }
}

/// A handle to one outstanding request; blocks on [`Ticket::wait`].
pub struct Ticket {
    receiver: mpsc::Receiver<Result<OptimizationResponse, ServiceError>>,
}

impl Ticket {
    /// Blocks until the response (or rejection) arrives.
    ///
    /// # Errors
    ///
    /// Propagates the worker's [`ServiceError`]; [`ServiceError::WorkerLost`]
    /// if the service terminated with the request in flight.
    pub fn wait(self) -> Result<OptimizationResponse, ServiceError> {
        self.receiver
            .recv()
            .unwrap_or(Err(ServiceError::WorkerLost))
    }
}

/// Builder for [`OptimizationService`].
pub struct ServiceBuilder {
    catalog: Catalog,
    config: ServiceConfig,
    policy: Box<dyn AlgorithmPolicy>,
}

impl ServiceBuilder {
    /// Starts a builder over the catalog the service will serve.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        ServiceBuilder {
            catalog,
            config: ServiceConfig::default(),
            policy: Box::new(DeadlineAwarePolicy::default()),
        }
    }

    /// Replaces the whole config.
    #[must_use]
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the plan-cache capacity (entries).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Replaces the admission policy.
    #[must_use]
    pub fn policy(mut self, policy: impl AlgorithmPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Sets the EWMA smoothing factor for learned block times (`0.0`
    /// disables learning).
    #[must_use]
    pub fn ewma_smoothing(mut self, smoothing: f64) -> Self {
        self.config.ewma_smoothing = smoothing;
        self
    }

    /// Replaces the cost-model parameters.
    #[must_use]
    pub fn params(mut self, params: CostModelParams) -> Self {
        self.config.params = params;
        self
    }

    /// Spawns the workers and returns the running service.
    #[must_use]
    pub fn build(self) -> OptimizationService {
        let workers = self.config.workers.max(1);
        let inner = Arc::new(ServiceInner {
            catalog: self.catalog,
            params: self.config.params.clone(),
            // One queue shard per worker: producers scatter lock-free,
            // each worker drains its own shard and steals from the rest.
            queue: BoundedQueue::with_shards(self.config.queue_capacity, workers),
            cache: PlanCache::new(self.config.cache_capacity, self.config.cache_shards),
            metrics: ServiceMetrics::default(),
            policy: self.policy,
            learned: LearnedBlockTimes::new(self.config.ewma_smoothing),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("moqo-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("worker thread spawns")
            })
            .collect();
        OptimizationService {
            inner,
            workers: handles,
        }
    }
}

/// A concurrent optimization service over one catalog: bounded submission
/// queue, std-thread worker pool, deadline-aware admission, and the α-aware
/// plan cache. See the crate docs for the serving semantics.
pub struct OptimizationService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl OptimizationService {
    /// Builder entry point.
    #[must_use]
    pub fn builder(catalog: Catalog) -> ServiceBuilder {
        ServiceBuilder::new(catalog)
    }

    /// A service with default configuration.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        ServiceBuilder::new(catalog).build()
    }

    /// Submits a request; returns immediately with a [`Ticket`].
    ///
    /// Deadline-carrying requests pass admission *here*, against the
    /// whole-request deadline with optimistic per-block shares: a request
    /// no algorithm could ever serve is rejected before it occupies a
    /// queue slot (and before its hopeless wait displaces feasible work).
    /// The per-block admission re-check at processing time still guards
    /// against budget consumed by queue wait and earlier blocks. The
    /// whole submit path is lock-free — the capacity check, the shard
    /// insert and every metrics update are atomics.
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] under back-pressure,
    /// [`ServiceError::Rejected`] from the admission fast path,
    /// [`ServiceError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: OptimizationRequest) -> Result<Ticket, ServiceError> {
        if let Some(deadline) = request.deadline {
            if let Err(error) = self.inner.admit_all_blocks(&request, deadline) {
                self.inner.metrics.on_error(&error);
                return Err(error);
            }
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request,
            submitted: Instant::now(),
            responder: tx,
        };
        match self.inner.queue.try_push(job) {
            Ok(()) => {
                self.inner.metrics.on_submitted();
                Ok(Ticket { receiver: rx })
            }
            Err(PushError::Full) => {
                self.inner.metrics.on_queue_full();
                Err(ServiceError::QueueFull)
            }
            Err(PushError::Closed) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Submits and blocks for the response.
    ///
    /// # Errors
    ///
    /// See [`OptimizationService::submit`] and [`Ticket::wait`].
    pub fn submit_wait(
        &self,
        request: OptimizationRequest,
    ) -> Result<OptimizationResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Metrics snapshot including cache counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(self.inner.cache.snapshot())
    }

    /// Cache-only snapshot.
    #[must_use]
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Usage statistics of one cache entry, if resident.
    #[must_use]
    pub fn cache_entry_stats(&self, key: &CacheKey) -> Option<EntryStats> {
        self.inner.cache.entry_stats(key)
    }

    /// Requests currently waiting in the queue.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.inner.queue.len()
    }

    /// The learned (EWMA) wall-time estimate for `block_size`-relation
    /// blocks, if any optimization of that size completed yet. `None`
    /// means the deadline split still trusts the policy's static model.
    #[must_use]
    pub fn learned_block_estimate(&self, block_size: usize) -> Option<Duration> {
        self.inner.learned.estimate(block_size)
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics()
    }

    fn shutdown_in_place(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for OptimizationService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(inner: &ServiceInner, worker: usize) {
    while let Some(job) = inner.queue.pop_blocking_from(worker) {
        let result = process(inner, &job.request, job.submitted);
        match &result {
            // Queue wait and processing time are recorded as separate
            // histogram series, both derived from the one submission
            // `Instant` — there are no dueling clocks to reconcile.
            Ok(response) => inner
                .metrics
                .on_completed(response.queue_wait, response.service_time),
            // Each error variant lands in its own counter; `rejected`
            // stays a pure admission-control number.
            Err(error) => inner.metrics.on_error(error),
        }
        // A dropped ticket is fine; the work (and the cache fill) still
        // happened.
        let _ = job.responder.send(result);
    }
}

fn process(
    inner: &ServiceInner,
    request: &OptimizationRequest,
    submitted: Instant,
) -> Result<OptimizationResponse, ServiceError> {
    let queue_wait = submitted.elapsed();
    let processing_started = Instant::now();
    let bounded = request.is_bounded();
    // The pruning mode any fresh optimization of this request runs under;
    // cache entries certified under a different mode are never served.
    let required_mode =
        PruneMode::auto(inner.params.enable_sampling, request.preference.objectives);
    let mut blocks = Vec::with_capacity(request.query.blocks.len());

    // Per-block deadline shares, proportional to the block cost estimate:
    // granting every block the full remainder sequentially let an
    // expensive early block starve all later ones (it would happily burn
    // the whole budget although the policy knows more work is coming).
    // Shares are re-derived from the *actual* remainder at each block, so
    // budget a fast block leaves unspent flows to its successors. The
    // estimates are the learned EWMA of measured wall times where samples
    // exist (the split adapts to the machine), the policy's static model
    // elsewhere. Only computed when a deadline exists — deadline-less
    // requests (the common case) never touch the estimates.
    let estimates: Vec<Duration> = if request.deadline.is_some() {
        request
            .query
            .blocks
            .iter()
            .map(|g| inner.block_time_estimate(g.n_rels()))
            .collect()
    } else {
        Vec::new()
    };

    for (block_idx, graph) in request.query.blocks.iter().enumerate() {
        let budget_left = request
            .deadline
            .map(|d| d.saturating_sub(submitted.elapsed()));
        if budget_left == Some(Duration::ZERO) {
            // The clock ran out before this block could start (queue wait
            // or earlier blocks consumed everything): a timeout, not an
            // admission decision.
            return Err(ServiceError::DeadlineExceeded);
        }
        let remaining = budget_left.map(|total| block_share(total, &estimates[block_idx..]));
        let key = CacheKey {
            graph: graph.signature(),
            preference: request.preference.signature(),
        };
        let lookup = inner
            .cache
            .lookup(&key, graph, request.alpha, bounded, required_mode);
        if let CacheLookup::Hit {
            arena,
            frontier,
            alpha,
        } = lookup
        {
            let best =
                select_best(&frontier, &request.preference).expect("cached fronts are never empty");
            inner.metrics.on_block(AlgorithmKind::CacheServe, false);
            blocks.push(BlockOutcome {
                arena,
                root: best.plan,
                cost: best.cost,
                frontier,
                source: BlockSource::CacheHit {
                    certificate: AlphaCertificate {
                        cached_alpha: alpha,
                        requested_alpha: request.alpha,
                        bounded,
                        // The cache only serves on an exact mode match.
                        cached_mode: required_mode,
                        required_mode,
                    },
                },
                achieved_alpha: alpha,
            });
            continue;
        }

        let decision = inner.policy.admit(&PolicyContext {
            block_size: graph.n_rels(),
            alpha: request.alpha,
            bounded,
            remaining,
            hint: request.hint,
        });
        let Admission::Run {
            algorithm,
            downgraded,
        } = decision
        else {
            return Err(ServiceError::Rejected(format!(
                "deadline budget {remaining:?} admits no algorithm for a {}-relation block",
                graph.n_rels()
            )));
        };

        let mut optimizer = Optimizer::new(&inner.catalog).with_params(inner.params.clone());
        if let Some(rem) = remaining {
            optimizer = optimizer.with_timeout(rem);
        }
        // Cached fronts that cannot serve directly still seed the
        // randomized search; tree extraction is deferred to here so DP
        // recomputes never pay for (or get counted as) a warm start.
        let (warm_trees, warm_alpha) = match lookup {
            CacheLookup::NotServable { .. } if matches!(algorithm, Algorithm::Rmq { .. }) => {
                match inner.cache.warm_trees(&key, graph) {
                    Some((trees, alpha)) => (trees, Some(alpha)),
                    None => (Vec::new(), None),
                }
            }
            _ => (Vec::new(), None),
        };
        let optimize_started = Instant::now();
        let (block, report) =
            optimizer.optimize_block_warm(graph, &request.preference, algorithm, &warm_trees);
        // Feed the measured wall time back into the deadline split's
        // estimate table (lock-free EWMA) — admission learns the machine
        // it runs on instead of trusting the static 3.5ⁿ model forever.
        inner
            .learned
            .record(graph.n_rels(), optimize_started.elapsed());
        let achieved_alpha = if report.alpha_final.is_nan() {
            f64::INFINITY
        } else {
            report.alpha_final
        };
        debug_assert_eq!(
            report.prune_mode, required_mode,
            "optimizer and service must derive the same mode"
        );
        inner.cache.insert(
            key,
            graph,
            &block.frontier,
            &block.arena,
            achieved_alpha,
            report.prune_mode,
            request.preference.objectives,
        );
        inner
            .metrics
            .on_block(AlgorithmKind::of(algorithm), downgraded);
        blocks.push(BlockOutcome {
            source: match warm_alpha {
                Some(cached_alpha) => BlockSource::WarmStarted {
                    algorithm,
                    downgraded,
                    cached_alpha,
                },
                None => BlockSource::Computed {
                    algorithm,
                    downgraded,
                },
            },
            arena: block.arena,
            root: block.root,
            cost: block.cost,
            frontier: block.frontier,
            achieved_alpha,
        });
    }

    Ok(OptimizationResponse::from_blocks(
        blocks,
        &request.preference,
        queue_wait,
        processing_started.elapsed(),
    ))
}

/// The deadline share of the first block in `estimates` out of `total`
/// remaining budget: proportional to its cost estimate against the
/// estimated cost of all blocks still to run, but never below the block's
/// own estimate (capped at `total`). The floor matters when a cheap block
/// precedes a very expensive one: a purely proportional share could fall
/// under the policy's admission minimum and reject the whole request even
/// though the cheap block needs only microseconds — proportionality should
/// only distribute *surplus* budget, never take away what a block is
/// estimated to need and the remainder can afford. The last (or only)
/// block always receives the full remainder untouched, so single-block
/// requests behave exactly as before the split existed.
fn block_share(total: Duration, estimates: &[Duration]) -> Duration {
    let [own, rest @ ..] = estimates else {
        return total;
    };
    if rest.is_empty() {
        return total;
    }
    let own_f = own.as_secs_f64();
    let sum = own_f + rest.iter().map(Duration::as_secs_f64).sum::<f64>();
    if sum <= 0.0 {
        // Degenerate estimates: split evenly.
        return total / u32::try_from(estimates.len()).unwrap_or(u32::MAX);
    }
    total.mul_f64(own_f / sum).max((*own).min(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_share_is_proportional_and_exhaustive_for_singletons() {
        let ms = Duration::from_millis;
        // Single block: bit-exact full remainder, no float round-trip.
        assert_eq!(block_share(ms(123), &[ms(7)]), ms(123));
        assert_eq!(block_share(ms(123), &[]), ms(123));
        // Two equal blocks: half each.
        let half = block_share(ms(100), &[ms(10), ms(10)]);
        assert!((half.as_secs_f64() - 0.05).abs() < 1e-9, "{half:?}");
        // A cheap block ahead of an expensive one keeps only its share.
        let cheap = block_share(ms(100), &[ms(1), ms(99)]);
        assert!(cheap <= ms(2), "{cheap:?}");
        // …but never less than its own estimate while the remainder can
        // afford it: a microsecond-scale block before a minutes-scale one
        // must not be starved below the admission floor.
        let floored = block_share(
            Duration::from_secs(10),
            &[Duration::from_micros(86), Duration::from_secs(82)],
        );
        assert!(
            floored >= Duration::from_micros(86),
            "{floored:?} fell below the block's own estimate"
        );
        assert!(floored <= Duration::from_millis(1), "{floored:?}");
        // An estimate beyond the remainder is capped at the remainder.
        assert_eq!(block_share(ms(5), &[ms(50), ms(50)]), ms(5));
        // Degenerate zero estimates fall back to an even split.
        assert_eq!(
            block_share(ms(90), &[Duration::ZERO, Duration::ZERO, Duration::ZERO]),
            ms(30)
        );
    }
}
