//! The optimization service: submission, scheduling, and the worker pool.

use moqo_sync::atomic::{AtomicU64, Ordering};
use moqo_sync::Arc;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use moqo_catalog::Catalog;
use moqo_core::{select_best, Algorithm, BlockReport, Optimizer, PruneMode};
use moqo_costmodel::CostModelParams;

use crate::cache::{CacheKey, CacheLookup, CacheSnapshot, EntryStats, PlanCache};
use crate::export::{render_prometheus, TraceSnapshot};
use crate::fault::{guarded_catch, FaultAction, FaultPlan};
use crate::metrics::{AlgorithmKind, MetricsSnapshot, ServiceMetrics};
use crate::policy::{
    Admission, AlgorithmPolicy, BrownoutConfig, BrownoutLevel, DeadlineAwarePolicy,
    LearnedBlockTimes, PolicyContext,
};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{
    AlphaCertificate, BlockOutcome, BlockSource, OptimizationRequest, OptimizationResponse,
    ServiceError,
};
use crate::retry::{retry_with, RetryPolicy, SystemClock};
use crate::supervisor::{Finding, Supervision, WorkerSlot};
use crate::trace::{
    error_code, EventKind, FlightRecorder, RequestTrace, SpanCollector, TraceConfig, TraceStats,
};

/// Tuning knobs of one [`OptimizationService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing optimizations (default 2; pass the core
    /// count for throughput, 1 for fully deterministic processing order).
    pub workers: usize,
    /// Bounded work-queue capacity; submissions beyond it are rejected with
    /// [`ServiceError::QueueFull`] (default 256).
    pub queue_capacity: usize,
    /// Plan-cache capacity in entries (default 1024).
    pub cache_capacity: usize,
    /// Plan-cache shard count (default 8).
    pub cache_shards: usize,
    /// EWMA smoothing factor for the learned per-block-size wall times
    /// that refine the deadline split (default 0.2; `0.0` disables
    /// learning and the split trusts the policy's static model).
    pub ewma_smoothing: f64,
    /// How often the supervisor scans worker heartbeats (default 5 ms).
    pub supervisor_tick: Duration,
    /// Heartbeat silence after which a running worker counts as wedged and
    /// is replaced (default 5 s; `ZERO` disables stall detection — dead
    /// workers are still respawned).
    pub stall_after: Duration,
    /// Brownout admission controller (disabled by default — see
    /// [`BrownoutConfig`]).
    pub brownout: BrownoutConfig,
    /// Cost-model parameters shared by every optimization.
    pub params: CostModelParams,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            ewma_smoothing: 0.2,
            supervisor_tick: Duration::from_millis(5),
            stall_after: Duration::from_secs(5),
            brownout: BrownoutConfig::default(),
            params: CostModelParams::default(),
        }
    }
}

type Responder = mpsc::Sender<Result<OptimizationResponse, ServiceError>>;

struct Job {
    request: OptimizationRequest,
    submitted: Instant,
    /// 0-based submission index; the key into the fault plan — and, when
    /// tracing is on, the request's trace id.
    ordinal: u64,
    /// Worker-side fault scheduled for this ordinal, if any.
    fault: Option<FaultAction>,
    /// The request's span collector, when the flight recorder is on: the
    /// submit-path events ride through the queue with the job so the
    /// worker appends to the same trace.
    span: Option<SpanCollector>,
    responder: Responder,
}

struct ServiceInner {
    catalog: Catalog,
    params: CostModelParams,
    queue: BoundedQueue<Job>,
    cache: PlanCache,
    metrics: ServiceMetrics,
    policy: Box<dyn AlgorithmPolicy>,
    /// Measured per-block-size wall times; refines the deadline split.
    learned: LearnedBlockTimes,
    /// Worker registry + supervisor signalling.
    supervision: Supervision,
    /// Brownout admission controller config.
    brownout: BrownoutConfig,
    supervisor_tick: Duration,
    stall_after: Duration,
    /// Deterministic fault schedule, if chaos is enabled.
    faults: Option<FaultPlan>,
    /// Submission-order counter; assigns fault-plan ordinals.
    ordinals: AtomicU64,
    /// Pool size the supervisor restores towards (== shard count).
    workers_target: usize,
    /// The flight recorder, when tracing is enabled (see
    /// [`ServiceBuilder::tracing`]); `None` keeps every request path
    /// byte-identical to the untraced service.
    recorder: Option<FlightRecorder>,
}

impl ServiceInner {
    /// The weight of one block in the deadline split: the learned EWMA of
    /// measured wall times when a sample exists, the policy's static
    /// model otherwise — so the split starts from the `3.5ⁿ` prior and
    /// converges to the machine it actually runs on.
    fn block_time_estimate(&self, block_size: usize) -> Duration {
        self.learned
            .estimate(block_size)
            .unwrap_or_else(|| self.policy.block_estimate(block_size))
    }

    /// Admission across all blocks of a request against deadline `total`,
    /// with per-block proportional shares. `Ok` means every block admits
    /// *some* algorithm under the optimistic assumption that no budget
    /// has been spent yet — used as the submit-time fast path, and
    /// re-checked per block with real elapsed time at processing time.
    fn admit_all_blocks(
        &self,
        request: &OptimizationRequest,
        total: Duration,
    ) -> Result<(), ServiceError> {
        let estimates: Vec<Duration> = request
            .query
            .blocks
            .iter()
            .map(|g| self.block_time_estimate(g.n_rels()))
            .collect();
        for (idx, graph) in request.query.blocks.iter().enumerate() {
            let share = block_share(total, &estimates[idx..]);
            let decision = self.policy.admit(&PolicyContext {
                block_size: graph.n_rels(),
                alpha: request.alpha,
                bounded: request.is_bounded(),
                remaining: Some(share),
                hint: request.hint,
            });
            if decision.admitted_algorithm().is_none() {
                return Err(ServiceError::Rejected(format!(
                    "deadline budget {share:?} admits no algorithm for a {}-relation block",
                    graph.n_rels()
                )));
            }
        }
        Ok(())
    }

    /// The brownout controller's verdict against the current queue-wait
    /// pressure (`Normal` whenever the controller is disabled).
    fn brownout_level(&self) -> BrownoutLevel {
        match self.brownout.watermark {
            Some(watermark) => self
                .brownout
                .assess(self.metrics.pressure_gauge().pressure(watermark)),
            None => BrownoutLevel::Normal,
        }
    }
}

/// A handle to one outstanding request; blocks on [`Ticket::wait`].
pub struct Ticket {
    receiver: mpsc::Receiver<Result<OptimizationResponse, ServiceError>>,
}

impl Ticket {
    /// Blocks until the response (or rejection) arrives.
    ///
    /// # Errors
    ///
    /// Propagates the worker's [`ServiceError`]; [`ServiceError::WorkerLost`]
    /// if the service terminated with the request in flight. A worker
    /// *panic* does not surface here as `WorkerLost`: the panic is caught
    /// at the job boundary and delivered as [`ServiceError::Internal`]
    /// with the payload.
    pub fn wait(self) -> Result<OptimizationResponse, ServiceError> {
        self.receiver
            .recv()
            .unwrap_or(Err(ServiceError::WorkerLost))
    }
}

/// Builder for [`OptimizationService`].
pub struct ServiceBuilder {
    catalog: Catalog,
    config: ServiceConfig,
    policy: Box<dyn AlgorithmPolicy>,
    faults: Option<FaultPlan>,
    tracing: Option<TraceConfig>,
}

impl ServiceBuilder {
    /// Starts a builder over the catalog the service will serve.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        ServiceBuilder {
            catalog,
            config: ServiceConfig::default(),
            policy: Box::new(DeadlineAwarePolicy::default()),
            faults: None,
            tracing: None,
        }
    }

    /// Replaces the whole config.
    #[must_use]
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the plan-cache capacity (entries).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Replaces the admission policy.
    #[must_use]
    pub fn policy(mut self, policy: impl AlgorithmPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Sets the EWMA smoothing factor for learned block times (`0.0`
    /// disables learning).
    #[must_use]
    pub fn ewma_smoothing(mut self, smoothing: f64) -> Self {
        self.config.ewma_smoothing = smoothing;
        self
    }

    /// Sets the supervisor scan interval.
    #[must_use]
    pub fn supervisor_tick(mut self, tick: Duration) -> Self {
        self.config.supervisor_tick = tick;
        self
    }

    /// Sets the heartbeat-silence threshold for stall detection (`ZERO`
    /// disables it).
    #[must_use]
    pub fn stall_after(mut self, stall_after: Duration) -> Self {
        self.config.stall_after = stall_after;
        self
    }

    /// Enables the brownout admission controller.
    #[must_use]
    pub fn brownout(mut self, brownout: BrownoutConfig) -> Self {
        self.config.brownout = brownout;
        self
    }

    /// Installs a deterministic fault plan (chaos testing; see
    /// [`FaultPlan`]).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Enables the flight recorder (see [`TraceConfig`]): per-worker
    /// event rings, span-structured lifecycle events, and tail-based
    /// exemplar retention, all exportable through
    /// [`OptimizationService::trace_snapshot`]. Tracing is off by
    /// default; the untraced service records nothing and behaves
    /// byte-identically to builds before the recorder existed.
    #[must_use]
    pub fn tracing(mut self, config: TraceConfig) -> Self {
        self.tracing = Some(config);
        self
    }

    /// Spawns the workers and the supervisor, and returns the running
    /// service.
    #[must_use]
    pub fn build(self) -> OptimizationService {
        let workers = self.config.workers.max(1);
        let inner = Arc::new(ServiceInner {
            catalog: self.catalog,
            params: self.config.params.clone(),
            // One queue shard per worker: producers scatter lock-free,
            // each worker drains its own shard and steals from the rest.
            queue: BoundedQueue::with_shards(self.config.queue_capacity, workers),
            cache: PlanCache::new(self.config.cache_capacity, self.config.cache_shards),
            metrics: ServiceMetrics::default(),
            policy: self.policy,
            learned: LearnedBlockTimes::new(self.config.ewma_smoothing),
            supervision: Supervision::new(),
            brownout: self.config.brownout,
            supervisor_tick: self.config.supervisor_tick.max(Duration::from_micros(100)),
            stall_after: self.config.stall_after,
            faults: self.faults,
            ordinals: AtomicU64::new(0),
            workers_target: workers,
            recorder: self
                .tracing
                .as_ref()
                .map(|config| FlightRecorder::new(config, workers)),
        });
        for shard in 0..workers {
            spawn_worker(&inner, shard);
        }
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("moqo-supervisor".to_owned())
                .spawn(move || supervisor_loop(&inner))
                .expect("supervisor thread spawns")
        };
        OptimizationService {
            inner,
            supervisor: Some(supervisor),
        }
    }
}

/// A concurrent optimization service over one catalog: bounded submission
/// queue, std-thread worker pool under heartbeat supervision, deadline-aware
/// admission with brownout load shedding, and the α-aware plan cache. See
/// the crate docs for the serving semantics.
pub struct OptimizationService {
    inner: Arc<ServiceInner>,
    supervisor: Option<JoinHandle<()>>,
}

impl OptimizationService {
    /// Builder entry point.
    #[must_use]
    pub fn builder(catalog: Catalog) -> ServiceBuilder {
        ServiceBuilder::new(catalog)
    }

    /// A service with default configuration.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        ServiceBuilder::new(catalog).build()
    }

    /// Submits a request; returns immediately with a [`Ticket`].
    ///
    /// Deadline-carrying requests pass admission *here*, against the
    /// whole-request deadline with optimistic per-block shares: a request
    /// no algorithm could ever serve is rejected before it occupies a
    /// queue slot (and before its hopeless wait displaces feasible work).
    /// The per-block admission re-check at processing time still guards
    /// against budget consumed by queue wait and earlier blocks. When the
    /// brownout controller is enabled and measured queue-wait pressure
    /// stands at or above the shed threshold *while a backlog actually
    /// exists*, the submission is shed before taking a queue slot. The
    /// whole submit path is lock-free — the capacity check, the shard
    /// insert and every metrics update are atomics.
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] under back-pressure,
    /// [`ServiceError::Rejected`] from the admission fast path,
    /// [`ServiceError::Shed`] from the brownout valve,
    /// [`ServiceError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: OptimizationRequest) -> Result<Ticket, ServiceError> {
        self.submit_attempt(request, 0)
    }

    /// The submit path proper; `attempt > 0` marks a retry of the same
    /// logical request (stamped on the trace as a `retry_attempt` event).
    #[allow(clippy::cast_possible_truncation)]
    fn submit_attempt(
        &self,
        request: OptimizationRequest,
        attempt: u64,
    ) -> Result<Ticket, ServiceError> {
        // Ordinals are assigned to every submission — including ones that
        // are then rejected or shed — so a fault plan keyed on submission
        // order replays exactly. The ordinal doubles as the trace id.
        let ordinal = self.inner.ordinals.fetch_add(1, Ordering::Relaxed);
        let recorder = self.inner.recorder.as_ref();
        let mut rt = RequestTrace::started(recorder, ordinal);
        rt.event(
            EventKind::Submitted,
            request.query.blocks.len() as u64,
            request.alpha.to_bits(),
            u64::from(request.deadline.is_some()),
        );
        if attempt > 0 {
            rt.event(EventKind::RetryAttempt, attempt, 0, 0);
        }
        if let Some(deadline) = request.deadline {
            if let Err(error) = self.inner.admit_all_blocks(&request, deadline) {
                self.inner.metrics.on_error(&error);
                rt.event(EventKind::Rejected, 0, 0, 0);
                rt.finish(Err(&error), 0);
                return Err(error);
            }
        }
        // Shedding needs both signals: pressure says waits are long, the
        // queue length says the backlog is real *now*. The length guard
        // keeps a stale EWMA from shedding forever after load has drained.
        if self.inner.brownout.watermark.is_some()
            && self.inner.queue.len() >= self.inner.workers_target
            && self.inner.brownout_level() == BrownoutLevel::Shed
        {
            let error = ServiceError::Shed;
            self.inner.metrics.on_error(&error);
            rt.event(EventKind::Shed, 0, 0, 0);
            rt.finish(Err(&error), 0);
            return Err(error);
        }
        let fault = self.inner.faults.as_ref().and_then(|plan| plan.at(ordinal));
        if fault == Some(FaultAction::QueueFull) {
            self.inner.metrics.on_queue_full();
            let error = ServiceError::QueueFull;
            rt.event(EventKind::QueueFull, 1, 0, 0);
            rt.finish(Err(&error), 0);
            return Err(error);
        }
        let (tx, rx) = mpsc::channel();
        // `enqueued` is stamped before the push (the span rides inside the
        // job through the queue); a bounced push hands the job — and its
        // span — back, and the trace closes with a `queue_full` event.
        rt.event(EventKind::Enqueued, 0, 0, 0);
        let job = Job {
            request,
            submitted: Instant::now(),
            ordinal,
            fault,
            span: rt.into_span(),
            responder: tx,
        };
        match self.inner.queue.try_push(job) {
            Ok(()) => {
                self.inner.metrics.on_submitted();
                Ok(Ticket { receiver: rx })
            }
            Err((PushError::Full, mut job)) => {
                self.inner.metrics.on_queue_full();
                let error = ServiceError::QueueFull;
                let mut rt = RequestTrace::resumed(recorder, usize::MAX, ordinal, job.span.take());
                rt.event(EventKind::QueueFull, 0, 0, 0);
                rt.finish(Err(&error), 0);
                Err(error)
            }
            Err((PushError::Closed, _)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// Submits and blocks for the response.
    ///
    /// # Errors
    ///
    /// See [`OptimizationService::submit`] and [`Ticket::wait`].
    pub fn submit_wait(
        &self,
        request: OptimizationRequest,
    ) -> Result<OptimizationResponse, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Submits with decorrelated-jitter retries on the transient errors
    /// ([`ServiceError::QueueFull`], [`ServiceError::Shed`]) under the
    /// policy's total sleep budget. Non-retryable errors return
    /// immediately; the request is cloned per attempt.
    ///
    /// # Errors
    ///
    /// The first non-retryable [`ServiceError`], or the last retryable one
    /// once the backoff budget is exhausted.
    pub fn submit_with_retry(
        &self,
        request: &OptimizationRequest,
        policy: &RetryPolicy,
    ) -> Result<Ticket, ServiceError> {
        let mut attempt = 0u64;
        retry_with(policy, &mut SystemClock::new(), || {
            let result = self.submit_attempt(request.clone(), attempt);
            attempt += 1;
            result
        })
    }

    /// Metrics snapshot including cache counters and the live gauges
    /// (pressure, alive workers, per-shard cache occupancy).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner
            .metrics
            .snapshot(self.inner.cache.snapshot(), self.inner.supervision.alive())
    }

    /// Point-in-time flight-recorder snapshot: ring events (sorted), the
    /// retained error exemplars and slowest-`k` traces, and the stream
    /// checksum. `None` when the service was built without
    /// [`ServiceBuilder::tracing`].
    #[must_use]
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.inner.recorder.as_ref().map(TraceSnapshot::capture)
    }

    /// Cheap counter-only view of the flight recorder; `None` when tracing
    /// is disabled.
    #[must_use]
    pub fn trace_stats(&self) -> Option<TraceStats> {
        self.inner.recorder.as_ref().map(FlightRecorder::stats)
    }

    /// Renders the full metrics surface — every counter, gauge, and
    /// histogram of [`MetricsSnapshot`] plus the flight-recorder counters —
    /// in the Prometheus text exposition format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        render_prometheus(
            &self.metrics(),
            &self.inner.metrics.latency_snapshot(),
            &self.inner.metrics.queue_wait_snapshot(),
            &self.inner.metrics.service_time_snapshot(),
            self.queued(),
            self.trace_stats(),
        )
    }

    /// Cache-only snapshot.
    #[must_use]
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.cache.snapshot()
    }

    /// Usage statistics of one cache entry, if resident.
    #[must_use]
    pub fn cache_entry_stats(&self, key: &CacheKey) -> Option<EntryStats> {
        self.inner.cache.entry_stats(key)
    }

    /// Requests currently waiting in the queue.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.inner.queue.len()
    }

    /// Workers currently registered as live. Transiently below the
    /// configured count while the supervisor replaces a dead or wedged
    /// worker; it restores the pool within a few ticks.
    #[must_use]
    pub fn alive_workers(&self) -> usize {
        self.inner.supervision.alive()
    }

    /// The learned (EWMA) wall-time estimate for `block_size`-relation
    /// blocks, if any optimization of that size completed yet. `None`
    /// means the deadline split still trusts the policy's static model.
    #[must_use]
    pub fn learned_block_estimate(&self, block_size: usize) -> Option<Duration> {
        self.inner.learned.estimate(block_size)
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics()
    }

    fn shutdown_in_place(&mut self) {
        // Stop the supervisor first so a worker exiting on queue close is
        // not "helpfully" respawned mid-shutdown.
        self.inner.supervision.begin_shutdown();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        self.inner.queue.close();
        for handle in self.inner.supervision.take_handles() {
            // A worker that died panicking delivers its payload through
            // `join()`; it must be swallowed here — `Drop` propagating a
            // worker's panic would abort an already-unwinding caller.
            drop(handle.join());
        }
        // Backstop: if workers died without draining (e.g. every worker
        // was killed by a fault plan), no ticket may hang forever — answer
        // whatever is left. The queue is closed, so this terminates.
        while let Some(mut job) = self.inner.queue.pop_blocking() {
            let error = ServiceError::ShuttingDown;
            self.inner.metrics.on_error(&error);
            let mut rt = RequestTrace::resumed(
                self.inner.recorder.as_ref(),
                usize::MAX,
                job.ordinal,
                job.span.take(),
            );
            rt.event(EventKind::Failed, error_code(&error), 0, 0);
            rt.finish(Err(&error), elapsed_us(job.submitted));
            let _ = job.responder.send(Err(error));
        }
    }
}

impl Drop for OptimizationService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Spawns one worker onto `shard` and registers it with the supervisor.
/// Respawns reuse the shard (the dead worker's backlog keeps its consumer
/// affinity) under a fresh generation number in the thread name.
fn spawn_worker(inner: &Arc<ServiceInner>, shard: usize) {
    let slot = Arc::new(WorkerSlot::default());
    let generation = inner.supervision.next_generation();
    let thread_inner = Arc::clone(inner);
    let thread_slot = Arc::clone(&slot);
    let handle = std::thread::Builder::new()
        .name(format!("moqo-worker-{shard}-g{generation}"))
        .spawn(move || worker_loop(&thread_inner, shard, &thread_slot))
        .expect("worker thread spawns");
    inner.supervision.register(shard, slot, handle);
}

/// The supervisor: parks on its tick, scans worker heartbeats, reaps the
/// dead, abandons the wedged, and respawns replacements onto the same
/// queue shard. Exits when shutdown begins.
fn supervisor_loop(inner: &Arc<ServiceInner>) {
    let mut last = Instant::now();
    while !inner.supervision.is_shutting_down() {
        inner.supervision.park(inner.supervisor_tick);
        if inner.supervision.is_shutting_down() {
            return;
        }
        let elapsed = last.elapsed();
        last = Instant::now();
        for finding in inner.supervision.scan(elapsed, inner.stall_after) {
            let shard = match finding {
                Finding::Dead { shard } => shard,
                Finding::Stalled { shard } => {
                    inner.metrics.on_stall();
                    if let Some(recorder) = &inner.recorder {
                        recorder.record_system(EventKind::WorkerStalled, shard as u64);
                    }
                    shard
                }
            };
            inner.metrics.on_respawn();
            if let Some(recorder) = &inner.recorder {
                recorder.record_system(EventKind::WorkerRespawned, shard as u64);
            }
            spawn_worker(inner, shard);
        }
    }
}

/// Microseconds elapsed since `start`, saturating.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[allow(clippy::cast_possible_truncation)]
fn worker_loop(inner: &ServiceInner, shard: usize, slot: &WorkerSlot) {
    // The heartbeat fires inside the queue's wait loop too (at least once
    // per park timeout), so an idle worker never looks wedged.
    while let Some(mut job) = inner.queue.pop_blocking_from_with(shard, || slot.beat()) {
        let queue_wait_us = elapsed_us(job.submitted);
        let mut rt =
            RequestTrace::resumed(inner.recorder.as_ref(), shard, job.ordinal, job.span.take());
        rt.event(EventKind::Popped, queue_wait_us, 0, 0);
        let mut die_after = false;
        match job.fault {
            Some(FaultAction::Delay(delay)) => {
                rt.event(
                    EventKind::FaultDelay,
                    u64::try_from(delay.as_millis()).unwrap_or(u64::MAX),
                    0,
                    0,
                );
                std::thread::sleep(delay);
            }
            Some(FaultAction::KillWorker) => die_after = true,
            _ => {}
        }
        let inject_panic = job.fault == Some(FaultAction::Panic);
        let ordinal = job.ordinal;
        // Panic isolation: anything the job does — injected faults and
        // genuine optimizer bugs alike — is caught here, converted to
        // `Internal` on the responder, and the worker keeps serving.
        let result = guarded_catch(|| {
            if inject_panic {
                panic!("injected fault: panic at ordinal {ordinal}");
            }
            process(inner, &job.request, job.submitted, &mut rt)
        })
        .unwrap_or_else(|payload| {
            let error = ServiceError::internal(payload);
            if let ServiceError::Internal {
                payload,
                payload_truncated,
            } = &error
            {
                rt.event(
                    EventKind::PanicCaught,
                    payload.len() as u64,
                    u64::from(*payload_truncated),
                    0,
                );
            }
            Err(error)
        });
        match &result {
            // Queue wait and processing time are recorded as separate
            // histogram series, both derived from the one submission
            // `Instant` — there are no dueling clocks to reconcile.
            Ok(response) => {
                inner
                    .metrics
                    .on_completed(response.queue_wait, response.service_time);
                rt.event(
                    EventKind::Completed,
                    elapsed_us(job.submitted),
                    response.blocks.len() as u64,
                    u64::from(response.fully_cached()),
                );
            }
            // Each error variant lands in its own counter; `rejected`
            // stays a pure admission-control number.
            Err(error) => {
                inner.metrics.on_error(error);
                rt.event(EventKind::Failed, error_code(error), 0, 0);
            }
        }
        if die_after {
            // Stamped before `finish` so exemplar classification sees it:
            // the killed worker's last request completes Ok, and this event
            // is what marks its trace as a kill exemplar.
            rt.event(EventKind::WorkerKilled, shard as u64, 0, 0);
        }
        let finished = match &result {
            Ok(_) => Ok(()),
            Err(error) => Err(error),
        };
        rt.finish(finished, elapsed_us(job.submitted));
        // A dropped ticket is fine; the work (and the cache fill) still
        // happened.
        let _ = job.responder.send(result);
        if die_after {
            // The injected death answers its request first (deterministic
            // responses), then takes the thread down; the supervisor's
            // next tick notices the exit flag and respawns onto the shard.
            slot.mark_exited();
            return;
        }
    }
    slot.mark_exited();
}

#[allow(clippy::cast_possible_truncation)]
fn process(
    inner: &ServiceInner,
    request: &OptimizationRequest,
    submitted: Instant,
    rt: &mut RequestTrace<'_>,
) -> Result<OptimizationResponse, ServiceError> {
    let queue_wait = submitted.elapsed();
    let processing_started = Instant::now();
    let bounded = request.is_bounded();
    // The pruning mode any fresh optimization of this request runs under;
    // cache entries certified under a different mode are never served.
    let required_mode =
        PruneMode::auto(inner.params.enable_sampling, request.preference.objectives);
    // Brownout verdict, sampled once per request: under pressure, computed
    // blocks degrade onto the anytime search with a pressure-scaled sample
    // budget. A request already past the shed gate degrades at the floor
    // rather than failing. Explicit algorithm hints are honored as-is.
    let brownout = match inner.brownout_level() {
        BrownoutLevel::Shed => BrownoutLevel::Degrade {
            samples: inner.brownout.min_samples,
        },
        level => level,
    };
    let mut blocks = Vec::with_capacity(request.query.blocks.len());

    // Per-block deadline shares, proportional to the block cost estimate:
    // granting every block the full remainder sequentially let an
    // expensive early block starve all later ones (it would happily burn
    // the whole budget although the policy knows more work is coming).
    // Shares are re-derived from the *actual* remainder at each block, so
    // budget a fast block leaves unspent flows to its successors. The
    // estimates are the learned EWMA of measured wall times where samples
    // exist (the split adapts to the machine), the policy's static model
    // elsewhere. Only computed when a deadline exists — deadline-less
    // requests (the common case) never touch the estimates.
    let estimates: Vec<Duration> = if request.deadline.is_some() {
        request
            .query
            .blocks
            .iter()
            .map(|g| inner.block_time_estimate(g.n_rels()))
            .collect()
    } else {
        Vec::new()
    };

    for (block_idx, graph) in request.query.blocks.iter().enumerate() {
        let budget_left = request
            .deadline
            .map(|d| d.saturating_sub(submitted.elapsed()));
        if budget_left == Some(Duration::ZERO) {
            // The clock ran out before this block could start (queue wait
            // or earlier blocks consumed everything): a timeout, not an
            // admission decision.
            rt.event(EventKind::DeadlineExceeded, block_idx as u64, 0, 0);
            return Err(ServiceError::DeadlineExceeded);
        }
        let remaining = budget_left.map(|total| block_share(total, &estimates[block_idx..]));
        let key = CacheKey {
            graph: graph.signature(),
            preference: request.preference.signature(),
        };
        let lookup = inner
            .cache
            .lookup(&key, graph, request.alpha, bounded, required_mode);
        // Probe outcome codes: 0 hit, 1 resident-but-not-servable, 2 miss;
        // arg1 carries the resident entry's α (0 on a plain miss).
        let (probe_outcome, probe_alpha) = match &lookup {
            CacheLookup::Hit { alpha, .. } => (0u64, alpha.to_bits()),
            CacheLookup::NotServable { alpha, .. } => (1, alpha.to_bits()),
            CacheLookup::Miss => (2, 0),
        };
        rt.event(
            EventKind::CacheProbe,
            block_idx as u64 | (probe_outcome << 32),
            probe_alpha,
            0,
        );
        if let CacheLookup::Hit {
            arena,
            frontier,
            alpha,
        } = lookup
        {
            let best =
                select_best(&frontier, &request.preference).expect("cached fronts are never empty");
            inner.metrics.on_block(AlgorithmKind::CacheServe, false);
            blocks.push(BlockOutcome {
                arena,
                root: best.plan,
                cost: best.cost,
                frontier,
                source: BlockSource::CacheHit {
                    certificate: AlphaCertificate {
                        cached_alpha: alpha,
                        requested_alpha: request.alpha,
                        bounded,
                        // The cache only serves on an exact mode match.
                        cached_mode: required_mode,
                        required_mode,
                    },
                },
                achieved_alpha: alpha,
                // Cache hits ran no optimizer; a synthetic report records
                // what was served.
                report: BlockReport {
                    alpha_final: alpha,
                    prune_mode: required_mode,
                    ..BlockReport::default()
                },
            });
            continue;
        }

        let decision = inner.policy.admit(&PolicyContext {
            block_size: graph.n_rels(),
            alpha: request.alpha,
            bounded,
            remaining,
            hint: request.hint,
        });
        let Admission::Run {
            algorithm,
            downgraded,
        } = decision
        else {
            return Err(ServiceError::Rejected(format!(
                "deadline budget {remaining:?} admits no algorithm for a {}-relation block",
                graph.n_rels()
            )));
        };
        // Graceful degradation: under brownout the admitted algorithm is
        // replaced by the anytime search at the pressure-scaled sample
        // budget — shorter service time instead of failed requests. An
        // explicit hint is a caller contract and is never overridden.
        let (algorithm, downgraded, degraded) = match brownout {
            BrownoutLevel::Degrade { samples } if request.hint.is_none() => {
                (inner.brownout.degraded_algorithm(samples), true, true)
            }
            _ => (algorithm, downgraded, false),
        };
        if degraded {
            inner.metrics.on_degraded_block();
        }

        let mut optimizer = Optimizer::new(&inner.catalog).with_params(inner.params.clone());
        if let Some(rem) = remaining {
            optimizer = optimizer.with_timeout(rem);
        }
        // Cached fronts that cannot serve directly still seed the
        // randomized search; tree extraction is deferred to here so DP
        // recomputes never pay for (or get counted as) a warm start.
        let (warm_trees, warm_alpha) = match lookup {
            CacheLookup::NotServable { .. } if matches!(algorithm, Algorithm::Rmq { .. }) => {
                match inner.cache.warm_trees(&key, graph) {
                    Some((trees, alpha)) => (trees, Some(alpha)),
                    None => (Vec::new(), None),
                }
            }
            _ => (Vec::new(), None),
        };
        let optimize_started = Instant::now();
        let (block, mut report) =
            optimizer.optimize_block_warm(graph, &request.preference, algorithm, &warm_trees);
        // Feed the measured wall time back into the deadline split's
        // estimate table (lock-free EWMA) — admission learns the machine
        // it runs on instead of trusting the static 3.5ⁿ model forever.
        inner
            .learned
            .record(graph.n_rels(), optimize_started.elapsed());
        // α-accounting stays honest about brownout: the report carries the
        // degradation stamp, and `achieved_alpha` reflects the anytime
        // search's lack of guarantee instead of the request's preference.
        report.degraded_by_pressure = degraded;
        let achieved_alpha = if report.alpha_final.is_nan() {
            f64::INFINITY
        } else {
            report.alpha_final
        };
        debug_assert_eq!(
            report.prune_mode, required_mode,
            "optimizer and service must derive the same mode"
        );
        inner.cache.insert(
            key,
            graph,
            &block.frontier,
            &block.arena,
            achieved_alpha,
            report.prune_mode,
            request.preference.objectives,
        );
        inner
            .metrics
            .on_block(AlgorithmKind::of(algorithm), downgraded);
        // arg0 packs block index (bits 0..32), algorithm kind (32..40) and
        // flags (40: degraded by pressure, 41: admission downgraded,
        // 42: warm-started); arg2 is the report's deterministic `DpStats`
        // digest, so replay checksums pin the whole optimization outcome.
        rt.event(
            EventKind::BlockOptimized,
            block_idx as u64
                | (u64::from(AlgorithmKind::of(algorithm).as_u8()) << 32)
                | (u64::from(degraded) << 40)
                | (u64::from(downgraded) << 41)
                | (u64::from(warm_alpha.is_some()) << 42),
            achieved_alpha.to_bits(),
            report.trace_digest(),
        );
        blocks.push(BlockOutcome {
            source: match warm_alpha {
                Some(cached_alpha) => BlockSource::WarmStarted {
                    algorithm,
                    downgraded,
                    cached_alpha,
                },
                None => BlockSource::Computed {
                    algorithm,
                    downgraded,
                },
            },
            arena: block.arena,
            root: block.root,
            cost: block.cost,
            frontier: block.frontier,
            achieved_alpha,
            report,
        });
    }

    Ok(OptimizationResponse::from_blocks(
        blocks,
        &request.preference,
        queue_wait,
        processing_started.elapsed(),
    ))
}

/// The deadline share of the first block in `estimates` out of `total`
/// remaining budget: proportional to its cost estimate against the
/// estimated cost of all blocks still to run, but never below the block's
/// own estimate (capped at `total`). The floor matters when a cheap block
/// precedes a very expensive one: a purely proportional share could fall
/// under the policy's admission minimum and reject the whole request even
/// though the cheap block needs only microseconds — proportionality should
/// only distribute *surplus* budget, never take away what a block is
/// estimated to need and the remainder can afford. The last (or only)
/// block always receives the full remainder untouched, so single-block
/// requests behave exactly as before the split existed.
fn block_share(total: Duration, estimates: &[Duration]) -> Duration {
    let [own, rest @ ..] = estimates else {
        return total;
    };
    if rest.is_empty() {
        return total;
    }
    let own_f = own.as_secs_f64();
    let sum = own_f + rest.iter().map(Duration::as_secs_f64).sum::<f64>();
    if sum <= 0.0 {
        // Degenerate estimates: split evenly.
        return total / u32::try_from(estimates.len()).unwrap_or(u32::MAX);
    }
    total.mul_f64(own_f / sum).max((*own).min(total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_share_is_proportional_and_exhaustive_for_singletons() {
        let ms = Duration::from_millis;
        // Single block: bit-exact full remainder, no float round-trip.
        assert_eq!(block_share(ms(123), &[ms(7)]), ms(123));
        assert_eq!(block_share(ms(123), &[]), ms(123));
        // Two equal blocks: half each.
        let half = block_share(ms(100), &[ms(10), ms(10)]);
        assert!((half.as_secs_f64() - 0.05).abs() < 1e-9, "{half:?}");
        // A cheap block ahead of an expensive one keeps only its share.
        let cheap = block_share(ms(100), &[ms(1), ms(99)]);
        assert!(cheap <= ms(2), "{cheap:?}");
        // …but never less than its own estimate while the remainder can
        // afford it: a microsecond-scale block before a minutes-scale one
        // must not be starved below the admission floor.
        let floored = block_share(
            Duration::from_secs(10),
            &[Duration::from_micros(86), Duration::from_secs(82)],
        );
        assert!(
            floored >= Duration::from_micros(86),
            "{floored:?} fell below the block's own estimate"
        );
        assert!(floored <= Duration::from_millis(1), "{floored:?}");
        // An estimate beyond the remainder is capped at the remainder.
        assert_eq!(block_share(ms(5), &[ms(50), ms(50)]), ms(5));
        // Degenerate zero estimates fall back to an even split.
        assert_eq!(
            block_share(ms(90), &[Duration::ZERO, Duration::ZERO, Duration::ZERO]),
            ms(30)
        );
    }
}
