//! The α-aware Pareto-front plan cache.
//!
//! The paper's central trade — precision for speed via the approximation
//! factor α — extends naturally across requests: a front computed once at
//! factor α is, by Theorem 3 / Corollary 1, good enough for *every* later
//! request on the same block and preference class that tolerates
//! `α′ ≥ α`. The cache exploits exactly that:
//!
//! * **Keys** are canonical signatures: [`JoinGraph::signature`]
//!   (permutation-invariant join-graph fingerprint) paired with
//!   [`Preference::signature`] (objectives + scale-normalized weights +
//!   bounds). Since signatures are hashes, a hit additionally verifies the
//!   stored graph for equality before anything is served.
//! * **Entries** own their plans: on insertion the producing arena's
//!   surviving frontier trees are re-rooted into a compact cache-owned
//!   arena via [`PlanArena::adopt`], so the (much larger) optimizer arena
//!   can be dropped.
//! * **Serving** is α-aware. A request tolerating `α′ ≥ α_entry` (with the
//!   bounded-request restriction of
//!   [`AlphaCertificate`](crate::AlphaCertificate)) is answered directly by
//!   adopting the cached front into a fresh response arena. Anything else
//!   still profits: the cached trees are handed out as RMQ warm starts.
//! * **Eviction** is sharded LRU: keys hash to one of `shards` independent
//!   mutexed maps, each evicting its least-recently-used entry beyond its
//!   capacity share, so concurrent workers rarely contend on the same lock.

use moqo_sync::atomic::{AtomicU64, Ordering};
use moqo_sync::Mutex;
use std::collections::HashMap;

use moqo_catalog::{GraphSignature, JoinGraph};
use moqo_core::{PlanEntry, PruneMode};
use moqo_cost::{ObjectiveSet, PreferenceSignature};
use moqo_plan::{JoinTree, PlanArena};

/// Cache key: canonical block signature × canonical preference signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The join-graph fingerprint.
    pub graph: GraphSignature,
    /// The preference fingerprint.
    pub preference: PreferenceSignature,
}

/// Usage statistics of one cache entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EntryStats {
    /// Direct serves under a valid α′-certificate.
    pub hits: u64,
    /// Times the entry seeded an RMQ warm start.
    pub warm_starts: u64,
}

struct CacheEntry {
    /// Exact graph the front was computed for — signature collisions and
    /// isomorphic-but-relabelled graphs must not be served (plan trees
    /// reference relation *indices*).
    graph: JoinGraph,
    /// Guarantee of the stored front (`1.0` exact, `+∞` none/RMQ).
    alpha: f64,
    /// Pruning mode the front was certified under; `alpha` is meaningless
    /// without it, so serving requires an exact mode match.
    mode: PruneMode,
    /// Compact arena owning exactly the frontier trees.
    arena: PlanArena,
    /// The stored front; plan ids resolve in `arena`.
    frontier: Vec<PlanEntry>,
    stats: EntryStats,
    /// LRU stamp (global monotonic tick at last touch).
    last_used: u64,
}

struct Shard {
    map: HashMap<CacheKey, CacheEntry>,
    /// Evictions out of this shard (under its own lock; the per-shard
    /// view exposed by [`CacheSnapshot::per_shard`]).
    evictions: u64,
}

/// Aggregate cache counters (monotonic; scraped by `ServiceMetrics`).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Direct serves.
    pub hits: AtomicU64,
    /// Lookups that could not be served directly (absent entries,
    /// signature collisions, and resident-but-not-servable fronts alike).
    pub misses: AtomicU64,
    /// Misses whose resident front subsequently seeded an RMQ warm start
    /// (a subset of `misses`, counted at tree extraction time).
    pub warm_starts: AtomicU64,
    /// Entries written.
    pub insertions: AtomicU64,
    /// Entries evicted by LRU pressure.
    pub evictions: AtomicU64,
}

/// Occupancy and evictions of one cache shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCacheSnapshot {
    /// Entries resident in this shard.
    pub entries: usize,
    /// Entries evicted out of this shard by LRU pressure.
    pub evictions: u64,
}

/// Point-in-time snapshot of [`CacheCounters`] plus occupancy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Direct serves.
    pub hits: u64,
    /// Lookups not served directly.
    pub misses: u64,
    /// Misses that seeded an RMQ warm start.
    pub warm_starts: u64,
    /// Entries written.
    pub insertions: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Per-shard occupancy and eviction totals, indexed by shard.
    pub per_shard: Vec<ShardCacheSnapshot>,
}

impl CacheSnapshot {
    /// Direct-hit ratio over all lookups (0 when none happened).
    /// `warm_starts` are already contained in `misses`.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// What a cache probe yielded.
pub enum CacheLookup {
    /// Serve directly: the cached front re-rooted into a fresh arena, with
    /// the entry's guarantee.
    Hit {
        /// Response-owned arena holding the adopted front.
        arena: PlanArena,
        /// The front; ids resolve in `arena`.
        frontier: Vec<PlanEntry>,
        /// Guarantee of the served front.
        alpha: f64,
    },
    /// An entry for the same block is resident but cannot serve this
    /// α′/boundedness/pruning mode. Counted as a miss; callers that will
    /// run the randomized search can fetch its trees via
    /// [`PlanCache::warm_trees`] — extraction is deferred so schemes that
    /// cannot use warm starts never pay for (or get billed as) one.
    NotServable {
        /// Guarantee of the resident front.
        alpha: f64,
        /// Pruning mode of the resident front.
        mode: PruneMode,
    },
    /// Nothing cached for this key (or a signature collision).
    Miss,
}

/// Whether two join graphs describe the same plan space: identical
/// relation statistics (table + filter selectivity, index by index) and
/// identical edges. Aliases are ignored — they never influence costs, and
/// the graph signature deliberately ignores them too, so alias-only
/// variants of one block must share a cache entry instead of thrashing it.
fn plan_equivalent(a: &JoinGraph, b: &JoinGraph) -> bool {
    a.rels.len() == b.rels.len()
        && a.edges == b.edges
        && a.rels.iter().zip(&b.rels).all(|(x, y)| {
            x.table == y.table && x.filter_selectivity.to_bits() == y.filter_selectivity.to_bits()
        })
}

/// The sharded LRU plan cache.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    counters: CacheCounters,
    tick: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (each shard gets an equal share, rounded up).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `shards` is zero.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "cache needs at least one shard");
        let shards = shards.min(capacity);
        PlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        evictions: 0,
                    })
                })
                .collect(),
            capacity_per_shard: capacity.div_ceil(shards),
            counters: CacheCounters::default(),
            tick: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        // The signatures are already uniform hashes; fold them.
        let h = key.graph.0 ^ key.preference.0.rotate_left(32);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Probes the cache for `key`. `requested_alpha`/`bounded`/
    /// `required_mode` decide between a direct hit and
    /// [`CacheLookup::NotServable`] (see
    /// [`AlphaCertificate`](crate::AlphaCertificate) for the rule); `graph`
    /// is compared against the stored graph (aliases aside) to rule out
    /// collisions. Everything that is not a direct serve counts as a miss.
    #[must_use]
    pub fn lookup(
        &self,
        key: &CacheKey,
        graph: &JoinGraph,
        requested_alpha: f64,
        bounded: bool,
        required_mode: PruneMode,
    ) -> CacheLookup {
        let tick = self.next_tick();
        let mut shard = self.shard_of(key).lock().expect("cache lock poisoned");
        let Some(entry) = shard.map.get_mut(key) else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss;
        };
        if !plan_equivalent(&entry.graph, graph) {
            // Signature collision or relabelled isomorph: the stored trees
            // index a different relation order, so nothing is servable.
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss;
        }
        entry.last_used = tick;
        // Mode mismatch is never servable: the stored α-coverage claim is
        // relative to the mode that certified it, so a cost-only front must
        // not answer a props-aware request or vice versa.
        let servable = entry.mode == required_mode
            && entry.alpha.is_finite()
            && entry.alpha <= requested_alpha
            && (!bounded || entry.alpha <= 1.0);
        if servable {
            entry.stats.hits += 1;
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            let mut arena = PlanArena::new();
            let frontier = entry
                .frontier
                .iter()
                .map(|e| PlanEntry {
                    plan: arena.adopt(&entry.arena, e.plan),
                    ..*e
                })
                .collect();
            CacheLookup::Hit {
                arena,
                frontier,
                alpha: entry.alpha,
            }
        } else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            CacheLookup::NotServable {
                alpha: entry.alpha,
                mode: entry.mode,
            }
        }
    }

    /// Extracts the cached front's trees for an RMQ warm start (the
    /// follow-up to a [`CacheLookup::NotServable`] probe once the policy
    /// has actually admitted a randomized run). Counts the warm start —
    /// globally and on the entry — only here, so the statistics report
    /// warm starts that happened, not warm starts that were merely
    /// possible.
    #[must_use]
    pub fn warm_trees(&self, key: &CacheKey, graph: &JoinGraph) -> Option<(Vec<JoinTree>, f64)> {
        let tick = self.next_tick();
        let mut shard = self.shard_of(key).lock().expect("cache lock poisoned");
        let entry = shard.map.get_mut(key)?;
        if !plan_equivalent(&entry.graph, graph) {
            return None;
        }
        entry.last_used = tick;
        entry.stats.warm_starts += 1;
        self.counters.warm_starts.fetch_add(1, Ordering::Relaxed);
        let trees = entry
            .frontier
            .iter()
            .map(|e| entry.arena.extract_tree(e.plan))
            .collect();
        Some((trees, entry.alpha))
    }

    /// Inserts (or tightens) the front for `key`: the frontier's trees are
    /// adopted out of `src_arena` into a compact cache-owned arena, stamped
    /// with the [`PruneMode`] that certified it. An existing entry is only
    /// replaced when the new front carries a strictly tighter guarantee
    /// (serving power never regresses — also across signature collisions
    /// and pruning modes); usage stats survive replacement only when the
    /// entry describes the same block.
    ///
    /// `objectives` are the objectives the front was pruned under; debug
    /// builds certify the front against the frontier engine by replaying
    /// it through both the plain and the grid-indexed structures and
    /// asserting they agree plan-for-plan — real optimizer fronts (which
    /// concatenate per-order groups and so need not be antichains) thereby
    /// cross-check the engine's bit-identity on every cache insertion.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        key: CacheKey,
        graph: &JoinGraph,
        frontier: &[PlanEntry],
        src_arena: &PlanArena,
        alpha: f64,
        mode: PruneMode,
        objectives: ObjectiveSet,
    ) {
        if frontier.is_empty() {
            return;
        }
        // Certification against the frontier engine: replay the front
        // through the plain and the grid-indexed structures under the
        // entry's mode and exact precision; both must keep exactly the
        // same plans. Debug-only — pure overhead on the serving path, but
        // it cross-checks the engine's bit-identity on every real front a
        // cache adopts (fronts concatenate per-order groups, so unlike a
        // single group's set they need not be antichains).
        #[cfg(debug_assertions)]
        {
            use moqo_core::pareto::{FrontierStructure, PlanSet, PruneStrategy};
            let strategy = PruneStrategy {
                alpha_internal: 1.0,
                approx_deletion: false,
                mode,
            };
            let replay = |structure: FrontierStructure| {
                let mut engine = PlanSet::with_structure(structure);
                for e in frontier {
                    engine.prune_insert(*e, &strategy, objectives);
                }
                let mut kept: Vec<(u64, u32)> = engine
                    .iter()
                    .map(|e| {
                        (
                            e.cost.get(moqo_cost::Objective::TotalTime).to_bits(),
                            e.plan.0,
                        )
                    })
                    .collect();
                kept.sort_unstable();
                kept
            };
            debug_assert_eq!(
                replay(FrontierStructure::Plain),
                replay(FrontierStructure::Indexed),
                "frontier layouts must agree on the adopted front under {mode:?}"
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = objectives;
        // Cheap probe before the adoption work: the common repeat path
        // (an equally-loose front for an already resident entry, e.g.
        // every recomputed RMQ block) costs one lock round-trip and no
        // arena traffic.
        if let Some(existing) = self
            .shard_of(&key)
            .lock()
            .expect("cache lock poisoned")
            .map
            .get(&key)
        {
            if existing.alpha <= alpha {
                return;
            }
        }
        let tick = self.next_tick();
        let mut arena = PlanArena::new();
        let frontier: Vec<PlanEntry> = frontier
            .iter()
            .map(|e| PlanEntry {
                plan: arena.adopt(src_arena, e.plan),
                ..*e
            })
            .collect();
        let mut shard = self.shard_of(&key).lock().expect("cache lock poisoned");
        let mut stats = EntryStats::default();
        if let Some(existing) = shard.map.get(&key) {
            // Re-check under the lock (the probe above raced with other
            // workers): tighter-only, regardless of which graph the
            // resident entry belongs to.
            if existing.alpha <= alpha {
                return;
            }
            if plan_equivalent(&existing.graph, graph) {
                stats = existing.stats;
            }
        }
        shard.map.insert(
            key,
            CacheEntry {
                graph: graph.clone(),
                alpha,
                mode,
                arena,
                frontier,
                stats,
                last_used: tick,
            },
        );
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        while shard.map.len() > self.capacity_per_shard {
            let lru = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty shard has an LRU entry");
            shard.map.remove(&lru);
            shard.evictions += 1;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Usage statistics of one entry, if resident.
    #[must_use]
    pub fn entry_stats(&self, key: &CacheKey) -> Option<EntryStats> {
        let shard = self.shard_of(key).lock().expect("cache lock poisoned");
        shard.map.get(key).map(|e| e.stats)
    }

    /// Entries currently resident across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter + occupancy snapshot, including the per-shard view (one
    /// short lock acquisition per shard).
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        let per_shard: Vec<ShardCacheSnapshot> = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache lock poisoned");
                ShardCacheSnapshot {
                    entries: shard.map.len(),
                    evictions: shard.evictions,
                }
            })
            .collect();
        CacheSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            warm_starts: self.counters.warm_starts.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            entries: per_shard.iter().map(|s| s.entries).sum(),
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::{CostVector, Objective, ObjectiveSet, Preference};
    use moqo_plan::{PlanProps, ScanOp, SortOrder};

    fn graph() -> (moqo_catalog::Catalog, JoinGraph) {
        use moqo_catalog::{ColumnStats, JoinGraphBuilder, TableStats};
        let mut cat = moqo_catalog::Catalog::new();
        cat.add_table(
            TableStats::new("a", 100.0, 8.0)
                .with_column(ColumnStats::new("id", 100.0).indexed())
                .with_column(ColumnStats::new("b_id", 10.0)),
        );
        cat.add_table(
            TableStats::new("b", 10.0, 8.0).with_column(ColumnStats::new("id", 10.0).indexed()),
        );
        let g = JoinGraphBuilder::new(&cat)
            .rel("a", 1.0)
            .rel("b", 1.0)
            .join(("a", "b_id"), ("b", "id"))
            .build();
        (cat, g)
    }

    fn key_for(g: &JoinGraph, p: &Preference) -> CacheKey {
        CacheKey {
            graph: g.signature(),
            preference: p.signature(),
        }
    }

    fn front_in(arena: &mut PlanArena) -> Vec<PlanEntry> {
        let scan = arena.scan(0, ScanOp::SeqScan);
        vec![PlanEntry {
            cost: CostVector::from_pairs(&[(Objective::TotalTime, 5.0)]),
            props: PlanProps {
                rels: 0b1,
                rows: 1.0,
                width: 1.0,
                order: SortOrder::None,
                sampling_factor: 1.0,
            },
            plan: scan,
        }]
    }

    fn objs() -> ObjectiveSet {
        ObjectiveSet::single(Objective::TotalTime)
    }

    fn pref() -> Preference {
        Preference::over(ObjectiveSet::single(Objective::TotalTime))
            .weight(Objective::TotalTime, 1.0)
    }

    #[test]
    fn insert_then_hit_and_warm_start() {
        let (_cat, g) = graph();
        let cache = PlanCache::new(8, 2);
        let key = key_for(&g, &pref());
        let mut src = PlanArena::new();
        let front = front_in(&mut src);
        cache.insert(key, &g, &front, &src, 1.5, PruneMode::CostOnly, objs());

        match cache.lookup(&key, &g, 2.0, false, PruneMode::CostOnly) {
            CacheLookup::Hit {
                frontier, alpha, ..
            } => {
                assert_eq!(alpha, 1.5);
                assert_eq!(frontier.len(), 1);
                assert_eq!(frontier[0].cost, front[0].cost);
            }
            _ => panic!("α′ = 2.0 ≥ 1.5 must serve directly"),
        }
        // Tighter request: not servable, but warm-start trees are there.
        match cache.lookup(&key, &g, 1.2, false, PruneMode::CostOnly) {
            CacheLookup::NotServable { alpha, mode } => {
                assert_eq!(alpha, 1.5);
                assert_eq!(mode, PruneMode::CostOnly);
            }
            _ => panic!("α′ = 1.2 < 1.5 must not serve directly"),
        }
        let (trees, alpha) = cache.warm_trees(&key, &g).unwrap();
        assert_eq!(alpha, 1.5);
        assert_eq!(trees.len(), 1);
        // Bounded requests need an exact front.
        assert!(matches!(
            cache.lookup(&key, &g, 2.0, true, PruneMode::CostOnly),
            CacheLookup::NotServable { .. }
        ));
        let stats = cache.entry_stats(&key).unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.warm_starts, 1, "only the extraction counts");
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.warm_starts), (1, 2, 1));
    }

    #[test]
    fn alias_renames_share_the_entry() {
        let (_cat, g) = graph();
        let cache = PlanCache::new(8, 1);
        let key = key_for(&g, &pref());
        let mut src = PlanArena::new();
        let front = front_in(&mut src);
        cache.insert(key, &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        // Same block, different alias spellings: signature and serving
        // both ignore aliases.
        let mut renamed = g.clone();
        for (i, r) in renamed.rels.iter_mut().enumerate() {
            r.alias = format!("other_{i}");
        }
        assert_eq!(renamed.signature(), g.signature());
        assert!(matches!(
            cache.lookup(&key, &renamed, 1.0, true, PruneMode::CostOnly),
            CacheLookup::Hit { .. }
        ));
        // And a looser re-insert from the renamed variant does not evict
        // the tighter entry.
        cache.insert(
            key,
            &renamed,
            &front,
            &src,
            2.0,
            PruneMode::CostOnly,
            objs(),
        );
        assert!(matches!(
            cache.lookup(&key, &g, 1.0, false, PruneMode::CostOnly),
            CacheLookup::Hit { .. }
        ));
    }

    #[test]
    fn tighter_fronts_replace_looser_ones_only() {
        let (_cat, g) = graph();
        let cache = PlanCache::new(8, 1);
        let key = key_for(&g, &pref());
        let mut src = PlanArena::new();
        let front = front_in(&mut src);
        cache.insert(key, &g, &front, &src, 2.0, PruneMode::CostOnly, objs());
        // Looser insert is ignored.
        cache.insert(key, &g, &front, &src, 3.0, PruneMode::CostOnly, objs());
        match cache.lookup(&key, &g, 2.5, false, PruneMode::CostOnly) {
            CacheLookup::Hit { alpha, .. } => assert_eq!(alpha, 2.0),
            _ => panic!("entry must still carry α = 2.0"),
        }
        // Tighter insert replaces, stats survive.
        cache.insert(key, &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        match cache.lookup(&key, &g, 1.0, true, PruneMode::CostOnly) {
            CacheLookup::Hit { alpha, .. } => assert_eq!(alpha, 1.0),
            _ => panic!("exact entry serves even bounded requests"),
        }
        assert_eq!(cache.entry_stats(&key).unwrap().hits, 2);
    }

    #[test]
    fn graph_mismatch_is_a_miss() {
        let (_cat, g) = graph();
        let cache = PlanCache::new(8, 1);
        let key = key_for(&g, &pref());
        let mut src = PlanArena::new();
        let front = front_in(&mut src);
        cache.insert(key, &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        let mut other = g.clone();
        other.rels[0].filter_selectivity = 0.5;
        // Same key forced on a different graph: must not serve, and must
        // not hand out warm trees either.
        assert!(matches!(
            cache.lookup(&key, &other, 10.0, false, PruneMode::CostOnly),
            CacheLookup::Miss
        ));
        assert!(cache.warm_trees(&key, &other).is_none());
        // Nor may a looser colliding insert displace the tighter entry.
        let mut src2 = PlanArena::new();
        let front2 = front_in(&mut src2);
        cache.insert(
            key,
            &other,
            &front2,
            &src2,
            3.0,
            PruneMode::CostOnly,
            objs(),
        );
        match cache.lookup(&key, &g, 1.0, false, PruneMode::CostOnly) {
            CacheLookup::Hit { alpha, .. } => assert_eq!(alpha, 1.0),
            _ => panic!("collision must not regress serving power"),
        }
    }

    #[test]
    fn mode_mismatched_entries_are_never_served() {
        let (_cat, g) = graph();
        let cache = PlanCache::new(8, 1);
        let key = key_for(&g, &pref());
        let mut src = PlanArena::new();
        let front = front_in(&mut src);
        // An exact cost-only front: tighter than any request could ask,
        // yet a props-aware consumer must not be served from it…
        cache.insert(key, &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        match cache.lookup(&key, &g, 10.0, false, PruneMode::PropsAware) {
            CacheLookup::NotServable { alpha, mode } => {
                assert_eq!(alpha, 1.0);
                assert_eq!(mode, PruneMode::CostOnly);
            }
            _ => panic!("cost-only front must not serve a props-aware request"),
        }
        // …while the matching mode still serves.
        assert!(matches!(
            cache.lookup(&key, &g, 1.0, false, PruneMode::CostOnly),
            CacheLookup::Hit { .. }
        ));
        // The reverse direction: a props-aware entry never serves a
        // cost-only request either.
        let cache2 = PlanCache::new(8, 1);
        cache2.insert(key, &g, &front, &src, 1.0, PruneMode::PropsAware, objs());
        assert!(matches!(
            cache2.lookup(&key, &g, 10.0, false, PruneMode::CostOnly),
            CacheLookup::NotServable { .. }
        ));
        assert!(matches!(
            cache2.lookup(&key, &g, 1.0, false, PruneMode::PropsAware),
            CacheLookup::Hit { .. }
        ));
        // Mismatched fronts still hand out warm-start trees — those are
        // heuristic seeds, not certificates.
        assert!(cache2.warm_trees(&key, &g).is_some());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let (_cat, g) = graph();
        let cache = PlanCache::new(2, 1);
        let mut src = PlanArena::new();
        let front = front_in(&mut src);
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| CacheKey {
                graph: GraphSignature(i),
                preference: pref().signature(),
            })
            .collect();
        cache.insert(keys[0], &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        cache.insert(keys[1], &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        // Touch key 0 so key 1 is the LRU when key 2 arrives.
        let _ = cache.lookup(&keys[0], &g, 2.0, false, PruneMode::CostOnly);
        cache.insert(keys[2], &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        assert_eq!(cache.len(), 2);
        assert!(cache.entry_stats(&keys[0]).is_some());
        assert!(cache.entry_stats(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.entry_stats(&keys[2]).is_some());
        assert_eq!(cache.snapshot().evictions, 1);
    }

    #[test]
    fn snapshot_hit_ratio() {
        let (_cat, g) = graph();
        let cache = PlanCache::new(4, 1);
        let key = key_for(&g, &pref());
        assert!(matches!(
            cache.lookup(&key, &g, 2.0, false, PruneMode::CostOnly),
            CacheLookup::Miss
        ));
        let mut src = PlanArena::new();
        let front = front_in(&mut src);
        cache.insert(key, &g, &front, &src, 1.0, PruneMode::CostOnly, objs());
        let _ = cache.lookup(&key, &g, 2.0, false, PruneMode::CostOnly);
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert!((snap.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(snap.entries, 1);
    }
}
