//! Deadline-aware admission: which algorithm runs, and whether at all.
//!
//! The anytime follow-up (arXiv:1603.00400) frames optimization under
//! per-request time budgets; a serving layer turns that framing into an
//! admission decision. The default policy picks the *preferred* scheme from
//! the request (`α = 1` → EXA; bounded → IRA; otherwise RTA), then
//! downgrades along `EXA → IRA/RTA → RMQ` whenever the block size or the
//! remaining deadline budget rules a scheme out, and rejects only when even
//! the anytime randomized search cannot start before the deadline.

use moqo_sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use moqo_core::Algorithm;

/// What the policy sees about one block of a request at scheduling time.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext {
    /// Relations in the block under decision.
    pub block_size: usize,
    /// Tolerated approximation factor `α′` of the request.
    pub alpha: f64,
    /// Whether the request bounds any selected objective.
    pub bounded: bool,
    /// Deadline budget left when the decision is made (`None` = unlimited).
    pub remaining: Option<Duration>,
    /// The request's algorithm override, if any.
    pub hint: Option<Algorithm>,
}

/// The admission decision for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Run this algorithm; `downgraded` records that it is weaker (larger
    /// guarantee, or none) than the request's preferred scheme.
    Run {
        /// The algorithm to execute.
        algorithm: Algorithm,
        /// Whether deadline/size gates forced a weaker scheme.
        downgraded: bool,
    },
    /// The deadline cannot be met by any admitted algorithm.
    Reject,
}

impl Admission {
    /// The admitted algorithm, `None` on a rejection — the shape trace
    /// events and admission fast paths branch on.
    #[must_use]
    pub fn admitted_algorithm(&self) -> Option<Algorithm> {
        match self {
            Admission::Run { algorithm, .. } => Some(*algorithm),
            Admission::Reject => None,
        }
    }
}

/// Pluggable admission policy. Implementations must be callable from every
/// worker thread.
pub trait AlgorithmPolicy: Send + Sync {
    /// Decides what to run for one block.
    fn admit(&self, ctx: &PolicyContext) -> Admission;

    /// Relative cost estimate for optimizing one block of `block_size`
    /// relations — the weight the service uses to split a request's
    /// deadline across its blocks (proportional shares, so one expensive
    /// early block cannot starve its successors). Only ratios matter. The
    /// default mirrors [`DeadlineAwarePolicy`]'s exponential DP model.
    fn block_estimate(&self, block_size: usize) -> Duration {
        let factor = 3.5f64
            .powi(i32::try_from(block_size).unwrap_or(i32::MAX))
            .min(1e15);
        Duration::from_micros(2).mul_f64(factor)
    }
}

/// Lock-free EWMA of measured per-block-size optimization wall times.
///
/// The static `base · growthⁿ` model in [`AlgorithmPolicy::block_estimate`]
/// describes *some* machine; this table learns the one the service
/// actually runs on. Workers feed every measured block optimization into
/// [`LearnedBlockTimes::record`]; the deadline split
/// (`block_share` in the service) then prefers the learned estimate over
/// the static model wherever a sample exists. Everything is relaxed
/// atomics — recording sits on the completion path and must not lock.
///
/// `smoothing` is the EWMA weight of a new sample (`0 < s ≤ 1`; the
/// service default is 0.2). A `smoothing` of 0 disables learning: nothing
/// records, every estimate falls back to the policy model.
pub struct LearnedBlockTimes {
    /// Estimated wall micros as `f64` bits per block size; 0 = no sample.
    cells: [AtomicU64; Self::MAX_TRACKED + 1],
    smoothing: f64,
}

impl LearnedBlockTimes {
    /// Largest block size tracked individually; bigger blocks share the
    /// last cell (the policy hands them to RMQ anyway, whose cost is the
    /// sample budget, not the block size).
    pub const MAX_TRACKED: usize = 32;

    /// A table with the given EWMA smoothing factor.
    #[must_use]
    pub fn new(smoothing: f64) -> Self {
        LearnedBlockTimes {
            cells: std::array::from_fn(|_| AtomicU64::new(0)),
            smoothing: smoothing.clamp(0.0, 1.0),
        }
    }

    fn cell(&self, block_size: usize) -> &AtomicU64 {
        &self.cells[block_size.min(Self::MAX_TRACKED)]
    }

    /// Folds one measured optimization wall time into the estimate for
    /// `block_size`-relation blocks. Lock-free (a short CAS loop; a lost
    /// race drops one sample of smoothing, never corrupts the estimate).
    #[moqo::hot_path]
    pub fn record(&self, block_size: usize, wall: Duration) {
        if self.smoothing <= 0.0 {
            return;
        }
        let sample_us = wall.as_secs_f64() * 1e6;
        let cell = self.cell(block_size);
        let mut current = cell.load(Ordering::Relaxed);
        for _ in 0..4 {
            let updated = if current == 0 {
                sample_us
            } else {
                let previous = f64::from_bits(current);
                self.smoothing * sample_us + (1.0 - self.smoothing) * previous
            };
            // An estimate of exactly 0.0 bits would read as "no sample";
            // nudge to the smallest positive value instead.
            let bits = updated.max(f64::MIN_POSITIVE).to_bits();
            match cell.compare_exchange_weak(current, bits, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The learned estimate for one block size, if any sample landed yet.
    #[must_use]
    pub fn estimate(&self, block_size: usize) -> Option<Duration> {
        let bits = self.cell(block_size).load(Ordering::Relaxed);
        if bits == 0 {
            return None;
        }
        Some(Duration::from_secs_f64(f64::from_bits(bits) / 1e6))
    }
}

/// Brownout admission control: how the service trades α for latency under
/// measured overload instead of failing requests outright.
///
/// The anytime view of RMQ (arXiv:1603.00400) makes graceful degradation
/// principled: the randomized search produces *some* front under any
/// budget, and shrinking its sample count is a continuous quality/latency
/// dial. This config turns the queue-wait pressure gauge into the two
/// brownout actions:
///
/// * `1 < pressure < shed_threshold` — **degrade**: blocks that would run
///   a DP scheme are forced onto RMQ with `base_samples / pressure`
///   samples (floored at `min_samples`), so service time shrinks as
///   pressure grows. The degradation is stamped in the block's
///   [`BlockReport`](moqo_core::BlockReport) (`degraded_by_pressure`) and
///   the response's `achieved_alpha` honestly reports `∞` — α-accounting
///   never pretends a browned-out block kept its guarantee.
/// * `pressure ≥ shed_threshold` — **shed**: new submissions are turned
///   away with [`ServiceError::Shed`](crate::ServiceError::Shed) before
///   occupying a queue slot they would only time out in.
///
/// `watermark: None` (the default) disables the controller entirely —
/// existing deterministic replay gates see byte-identical behaviour.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Queue-wait EWMA at which brownout begins; `None` disables.
    pub watermark: Option<Duration>,
    /// Pressure multiple (EWMA / watermark) at which shedding starts
    /// (default 2.0; degradation covers the band in between).
    pub shed_threshold: f64,
    /// RMQ sample budget at pressure 1.0 (default 2000, matching
    /// [`DeadlineAwarePolicy::rmq_samples`]).
    pub base_samples: u64,
    /// Sample-budget floor under extreme pressure (default 50).
    pub min_samples: u64,
    /// Seed for degraded RMQ runs (fixed per service: reproducibility).
    pub rmq_seed: u64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            watermark: None,
            shed_threshold: 2.0,
            base_samples: 2000,
            min_samples: 50,
            rmq_seed: 0x5EED,
        }
    }
}

/// What the brownout controller decided for one admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutLevel {
    /// No overload: run whatever the policy admits.
    Normal,
    /// Degrade: force the anytime search at this sample budget.
    Degrade {
        /// Pressure-scaled RMQ sample budget.
        samples: u64,
    },
    /// Shed the submission outright.
    Shed,
}

impl BrownoutConfig {
    /// Classifies a measured pressure reading (EWMA / watermark).
    #[must_use]
    pub fn assess(&self, pressure: f64) -> BrownoutLevel {
        if self.watermark.is_none() {
            return BrownoutLevel::Normal;
        }
        if pressure >= self.shed_threshold {
            return BrownoutLevel::Shed;
        }
        if pressure > 1.0 {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let scaled = (self.base_samples as f64 / pressure) as u64;
            return BrownoutLevel::Degrade {
                samples: scaled.max(self.min_samples),
            };
        }
        BrownoutLevel::Normal
    }

    /// The degraded algorithm for one block at `samples` budget.
    #[must_use]
    pub fn degraded_algorithm(&self, samples: u64) -> Algorithm {
        Algorithm::Rmq {
            samples,
            seed: self.rmq_seed,
            threads: 1,
        }
    }
}

/// The default policy: size and deadline gates around the preference order
/// `EXA → IRA/RTA → RMQ`, with a crude-but-tunable exponential model of
/// dynamic-programming cost.
#[derive(Debug, Clone)]
pub struct DeadlineAwarePolicy {
    /// Largest block the exact algorithm may attempt (default 7: the DP
    /// table doubles per relation and EXA keeps full Pareto sets).
    pub exa_max_tables: usize,
    /// Largest block any DP scheme (RTA/IRA) may attempt (default 10).
    pub dp_max_tables: usize,
    /// Sample budget handed to RMQ fallbacks (default 2000).
    pub rmq_samples: u64,
    /// RMQ seed; fixed per service so results are reproducible.
    pub rmq_seed: u64,
    /// Threads per RMQ run (default 1 — the worker pool is the parallelism).
    pub rmq_threads: usize,
    /// Precision the DP falls back to when a request demands exactness on
    /// a block too large for EXA (default 2.0): RTA/IRA at α = 1 would run
    /// the *same* full-precision DP as EXA (the internal pruning precision
    /// `α^(1/n)` degenerates to 1), so a genuine downgrade must relax α.
    pub relaxed_alpha: f64,
    /// Requests with less remaining budget than this are rejected outright
    /// (default 200 µs: below that even RMQ's first sample won't land).
    pub min_budget: Duration,
    /// DP cost model `base · growthⁿ` — base term (default 2 µs).
    pub dp_base: Duration,
    /// DP cost model growth per relation (default 3.5).
    pub dp_growth: f64,
}

impl Default for DeadlineAwarePolicy {
    fn default() -> Self {
        DeadlineAwarePolicy {
            exa_max_tables: 7,
            dp_max_tables: 10,
            rmq_samples: 2000,
            rmq_seed: 0x5EED,
            rmq_threads: 1,
            relaxed_alpha: 2.0,
            min_budget: Duration::from_micros(200),
            dp_base: Duration::from_micros(2),
            dp_growth: 3.5,
        }
    }
}

impl DeadlineAwarePolicy {
    /// Estimated wall time of one DP run over `tables` relations:
    /// `dp_base · dp_growthⁿ`. Deliberately pessimistic for EXA-sized
    /// blocks so deadline pressure downgrades early rather than times out.
    #[must_use]
    pub fn estimated_dp_time(&self, tables: usize) -> Duration {
        let factor = self
            .dp_growth
            .powi(i32::try_from(tables).unwrap_or(i32::MAX));
        self.dp_base.mul_f64(factor.min(1e15))
    }

    fn rmq(&self) -> Algorithm {
        Algorithm::Rmq {
            samples: self.rmq_samples,
            seed: self.rmq_seed,
            threads: self.rmq_threads,
        }
    }

    fn dp_fits(&self, ctx: &PolicyContext) -> bool {
        match ctx.remaining {
            None => true,
            Some(rem) => self.estimated_dp_time(ctx.block_size) <= rem,
        }
    }
}

impl AlgorithmPolicy for DeadlineAwarePolicy {
    fn block_estimate(&self, block_size: usize) -> Duration {
        self.estimated_dp_time(block_size)
    }

    fn admit(&self, ctx: &PolicyContext) -> Admission {
        if let Some(rem) = ctx.remaining {
            if rem < self.min_budget {
                return Admission::Reject;
            }
        }
        // An explicit hint bypasses the preference order and the size
        // gates, but never the minimum-budget admission above.
        if let Some(hint) = ctx.hint {
            return Admission::Run {
                algorithm: hint,
                downgraded: false,
            };
        }
        let preferred = if ctx.alpha <= 1.0 {
            Algorithm::Exhaustive
        } else if ctx.bounded {
            Algorithm::Ira { alpha: ctx.alpha }
        } else {
            Algorithm::Rta { alpha: ctx.alpha }
        };
        // Size + deadline gates, weakest last.
        let exa_ok = ctx.block_size <= self.exa_max_tables && self.dp_fits(ctx);
        let dp_ok = ctx.block_size <= self.dp_max_tables && self.dp_fits(ctx);
        match preferred {
            Algorithm::Exhaustive if exa_ok => Admission::Run {
                algorithm: preferred,
                downgraded: false,
            },
            // An exactness-demanding request that EXA cannot serve within
            // limits degrades to the approximate DP at `relaxed_alpha` —
            // α = 1 would re-run the exact DP under another name (see the
            // field docs) — or falls through to the anytime search.
            Algorithm::Exhaustive if dp_ok => Admission::Run {
                algorithm: if ctx.bounded {
                    Algorithm::Ira {
                        alpha: self.relaxed_alpha,
                    }
                } else {
                    Algorithm::Rta {
                        alpha: self.relaxed_alpha,
                    }
                },
                downgraded: true,
            },
            Algorithm::Ira { .. } | Algorithm::Rta { .. } if dp_ok => Admission::Run {
                algorithm: preferred,
                downgraded: false,
            },
            _ => Admission::Run {
                algorithm: self.rmq(),
                downgraded: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(
        block_size: usize,
        alpha: f64,
        bounded: bool,
        remaining: Option<Duration>,
    ) -> PolicyContext {
        PolicyContext {
            block_size,
            alpha,
            bounded,
            remaining,
            hint: None,
        }
    }

    #[test]
    fn preference_order_without_pressure() {
        let p = DeadlineAwarePolicy::default();
        assert_eq!(
            p.admit(&ctx(4, 1.0, false, None)),
            Admission::Run {
                algorithm: Algorithm::Exhaustive,
                downgraded: false
            }
        );
        assert_eq!(
            p.admit(&ctx(4, 2.0, false, None)),
            Admission::Run {
                algorithm: Algorithm::Rta { alpha: 2.0 },
                downgraded: false
            }
        );
        assert_eq!(
            p.admit(&ctx(4, 2.0, true, None)),
            Admission::Run {
                algorithm: Algorithm::Ira { alpha: 2.0 },
                downgraded: false
            }
        );
    }

    #[test]
    fn size_gates_downgrade() {
        let p = DeadlineAwarePolicy::default();
        // Too big for EXA but fine for the approximate DP: precision is
        // genuinely relaxed (α = 1 would re-run the exact DP).
        match p.admit(&ctx(9, 1.0, false, None)) {
            Admission::Run {
                algorithm: Algorithm::Rta { alpha },
                downgraded: true,
            } => assert_eq!(alpha, p.relaxed_alpha),
            other => panic!("expected RTA downgrade, got {other:?}"),
        }
        match p.admit(&ctx(9, 1.0, true, None)) {
            Admission::Run {
                algorithm: Algorithm::Ira { alpha },
                downgraded: true,
            } => assert_eq!(alpha, p.relaxed_alpha),
            other => panic!("expected IRA downgrade, got {other:?}"),
        }
        // Too big for any DP.
        match p.admit(&ctx(16, 1.5, false, None)) {
            Admission::Run {
                algorithm: Algorithm::Rmq { .. },
                downgraded: true,
            } => {}
            other => panic!("expected RMQ fallback, got {other:?}"),
        }
    }

    #[test]
    fn deadline_gates_downgrade_and_reject() {
        let p = DeadlineAwarePolicy::default();
        // 8 tables ≈ 2 µs · 3.5⁸ ≈ 45 ms estimated; a 1 ms budget forces
        // the anytime search.
        match p.admit(&ctx(8, 1.5, false, Some(Duration::from_millis(1)))) {
            Admission::Run {
                algorithm: Algorithm::Rmq { .. },
                downgraded: true,
            } => {}
            other => panic!("expected RMQ under deadline pressure, got {other:?}"),
        }
        // Below the minimum budget nothing is admitted.
        assert_eq!(
            p.admit(&ctx(2, 1.5, false, Some(Duration::from_micros(50)))),
            Admission::Reject
        );
    }

    #[test]
    fn learned_times_converge_and_fall_back() {
        let learned = LearnedBlockTimes::new(0.5);
        assert_eq!(learned.estimate(4), None, "no sample yet");
        learned.record(4, Duration::from_micros(100));
        let first = learned.estimate(4).unwrap();
        assert!((first.as_secs_f64() * 1e6 - 100.0).abs() < 1e-6);
        // EWMA: 0.5 · 300 + 0.5 · 100 = 200.
        learned.record(4, Duration::from_micros(300));
        let second = learned.estimate(4).unwrap();
        assert!((second.as_secs_f64() * 1e6 - 200.0).abs() < 1e-6);
        // Other sizes stay empty; oversized blocks share the last cell.
        assert_eq!(learned.estimate(5), None);
        learned.record(
            LearnedBlockTimes::MAX_TRACKED + 10,
            Duration::from_micros(7),
        );
        assert!(learned.estimate(LearnedBlockTimes::MAX_TRACKED).is_some());
        // Smoothing 0 disables learning entirely.
        let off = LearnedBlockTimes::new(0.0);
        off.record(4, Duration::from_micros(100));
        assert_eq!(off.estimate(4), None);
    }

    #[test]
    fn brownout_bands_and_sample_scaling() {
        let disabled = BrownoutConfig::default();
        assert_eq!(disabled.assess(10.0), BrownoutLevel::Normal);

        let active = BrownoutConfig {
            watermark: Some(Duration::from_millis(10)),
            ..BrownoutConfig::default()
        };
        assert_eq!(active.assess(0.0), BrownoutLevel::Normal);
        assert_eq!(active.assess(1.0), BrownoutLevel::Normal);
        // Degradation band: budget shrinks with pressure.
        assert_eq!(
            active.assess(1.25),
            BrownoutLevel::Degrade { samples: 1600 }
        );
        match active.assess(1.9) {
            BrownoutLevel::Degrade { samples } => {
                assert!(samples < 1600 && samples >= active.min_samples);
            }
            other => panic!("expected degradation, got {other:?}"),
        }
        // At and past the threshold: shed (including infinite pressure).
        assert_eq!(active.assess(2.0), BrownoutLevel::Shed);
        assert_eq!(active.assess(f64::INFINITY), BrownoutLevel::Shed);
        // The floor holds under a tiny base budget.
        let floored = BrownoutConfig {
            base_samples: 60,
            shed_threshold: 100.0,
            ..active.clone()
        };
        assert_eq!(floored.assess(50.0), BrownoutLevel::Degrade { samples: 50 });
        // The degraded algorithm is the anytime search at the scaled budget.
        assert_eq!(
            active.degraded_algorithm(1600),
            Algorithm::Rmq {
                samples: 1600,
                seed: active.rmq_seed,
                threads: 1
            }
        );
    }

    #[test]
    fn hints_bypass_gates_but_not_admission() {
        let p = DeadlineAwarePolicy::default();
        let mut c = ctx(16, 1.0, false, None);
        c.hint = Some(Algorithm::Exhaustive);
        assert_eq!(
            p.admit(&c),
            Admission::Run {
                algorithm: Algorithm::Exhaustive,
                downgraded: false
            }
        );
        c.remaining = Some(Duration::from_micros(10));
        assert_eq!(p.admit(&c), Admission::Reject);
    }
}
