//! Deterministic fault injection: a replayable chaos plan for the service.
//!
//! A [`FaultPlan`] maps exact *request ordinals* (the 0-based submission
//! index the service assigns under its lock-free counter) to fault
//! actions. Because the trigger is the ordinal — not a timer or a random
//! draw — a chaos run is exactly replayable: the same trace plus the same
//! plan produces the same panics, the same worker deaths and the same
//! rejections, which is what lets CI gate the robustness counters
//! (`panics_total`, `respawns`, `shed`, `failed`) as byte-stable
//! checksums.
//!
//! Plans come from the builder or from the `MOQO_SL_FAULTS` environment
//! variable (see [`FaultPlan::parse`] for the grammar), so `service_load`
//! replay modes can run chaos traces without recompiling.
//!
//! The module also owns the panic-hook silencer: injected (and any other
//! worker) panics are converted to [`ServiceError::Internal`]
//! responses by the worker's `catch_unwind` guard, so the default hook's
//! stderr spew is pure noise in chaos tests. [`guarded_catch`] installs —
//! once, lazily — a hook that suppresses output for panics unwinding
//! through a worker guard and delegates everything else to the previous
//! hook; the payload is never lost, it travels in the error variant.
//!
//! [`ServiceError::Internal`]: crate::ServiceError::Internal

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::Duration;

/// What to inject when a request's ordinal matches the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the worker right before processing; the guard converts
    /// it to `ServiceError::Internal` and the worker survives.
    Panic,
    /// Sleep in the worker before processing (stall simulation; long
    /// enough delays trip the supervisor's heartbeat watchdog).
    Delay(Duration),
    /// Reject at submission as if the queue were at capacity.
    QueueFull,
    /// Process and answer the request normally, then terminate the worker
    /// thread — the supervisor must notice and respawn onto the shard.
    KillWorker,
}

/// A deterministic fault schedule keyed by request ordinal.
///
/// Exact ordinals win over periodic rules when both match.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    exact: HashMap<u64, FaultAction>,
    /// `(period, offset, action)`: fires on every ordinal where
    /// `ordinal % period == offset`.
    periodic: Vec<(u64, u64, FaultAction)>,
}

impl FaultPlan {
    /// Starts an empty plan builder.
    #[must_use]
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::default(),
        }
    }

    /// The action scheduled for `ordinal`, if any.
    #[must_use]
    pub fn at(&self, ordinal: u64) -> Option<FaultAction> {
        if let Some(action) = self.exact.get(&ordinal) {
            return Some(*action);
        }
        self.periodic
            .iter()
            .find(|(period, offset, _)| ordinal % period == *offset)
            .map(|(_, _, action)| *action)
    }

    /// Whether the plan schedules nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.periodic.is_empty()
    }

    /// Parses the `MOQO_SL_FAULTS` grammar: a comma-separated list of
    /// `kind@ordinal` terms, where `kind` is `panic`, `kill`, `full`, or
    /// `delay:<millis>ms`, and `ordinal` is either an exact index or the
    /// periodic form `*/<period>[+<offset>]`.
    ///
    /// ```
    /// use moqo_service::FaultPlan;
    /// let plan = FaultPlan::parse("panic@*/4, kill@60, delay:5ms@7, full@9").unwrap();
    /// assert!(plan.at(0).is_some());   // */4 fires on 0, 4, 8, …
    /// assert!(plan.at(60).is_some());
    /// assert!(plan.at(1).is_none());
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed term.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, ordinal) = term
                .split_once('@')
                .ok_or_else(|| format!("fault term `{term}` is missing `@ordinal`"))?;
            let action = match kind.trim() {
                "panic" => FaultAction::Panic,
                "kill" => FaultAction::KillWorker,
                "full" => FaultAction::QueueFull,
                other => {
                    let millis = other
                        .strip_prefix("delay:")
                        .and_then(|d| d.strip_suffix("ms"))
                        .and_then(|d| d.trim().parse::<u64>().ok())
                        .ok_or_else(|| format!("unknown fault kind `{other}` in `{term}`"))?;
                    FaultAction::Delay(Duration::from_millis(millis))
                }
            };
            let ordinal = ordinal.trim();
            if let Some(periodic) = ordinal.strip_prefix("*/") {
                let (period, offset) = match periodic.split_once('+') {
                    Some((p, o)) => (p.trim(), o.trim()),
                    None => (periodic.trim(), "0"),
                };
                let period: u64 = period
                    .parse()
                    .ok()
                    .filter(|p| *p > 0)
                    .ok_or_else(|| format!("bad period in `{term}`"))?;
                let offset: u64 = offset
                    .parse()
                    .map_err(|_| format!("bad offset in `{term}`"))?;
                plan.periodic.push((period, offset % period, action));
            } else {
                let at: u64 = ordinal
                    .parse()
                    .map_err(|_| format!("bad ordinal in `{term}`"))?;
                plan.exact.insert(at, action);
            }
        }
        Ok(plan)
    }

    /// The plan `MOQO_SL_FAULTS` describes, `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a chaos run with a silently-dropped
    /// plan would "pass" without testing anything.
    #[must_use]
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("MOQO_SL_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        let plan = FaultPlan::parse(&spec).expect("MOQO_SL_FAULTS must parse");
        (!plan.is_empty()).then_some(plan)
    }
}

/// Incremental [`FaultPlan`] construction.
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Panic when processing request `ordinal`.
    #[must_use]
    pub fn panic_at(mut self, ordinal: u64) -> Self {
        self.plan.exact.insert(ordinal, FaultAction::Panic);
        self
    }

    /// Panic on every ordinal with `ordinal % period == offset`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn panic_every(mut self, period: u64, offset: u64) -> Self {
        assert!(period > 0, "period must be positive");
        self.plan
            .periodic
            .push((period, offset % period, FaultAction::Panic));
        self
    }

    /// Sleep `delay` before processing request `ordinal`.
    #[must_use]
    pub fn delay_at(mut self, ordinal: u64, delay: Duration) -> Self {
        self.plan.exact.insert(ordinal, FaultAction::Delay(delay));
        self
    }

    /// Reject request `ordinal` at submission as if the queue were full.
    #[must_use]
    pub fn queue_full_at(mut self, ordinal: u64) -> Self {
        self.plan.exact.insert(ordinal, FaultAction::QueueFull);
        self
    }

    /// Kill the worker thread after it answers request `ordinal`.
    #[must_use]
    pub fn kill_worker_at(mut self, ordinal: u64) -> Self {
        self.plan.exact.insert(ordinal, FaultAction::KillWorker);
        self
    }

    /// Finishes the plan.
    #[must_use]
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

thread_local! {
    /// Whether the current thread is inside a worker's panic guard; the
    /// silenced hook consults it to decide between suppressing and
    /// delegating.
    static IN_WORKER_GUARD: Cell<bool> = const { Cell::new(false) };
}

fn install_silencer_once() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_WORKER_GUARD.with(Cell::get) {
                previous(info);
            }
            // Guarded panics stay silent: the payload is delivered to the
            // requester as `ServiceError::Internal`, and the metrics count
            // it — stderr spew would only bury real failures in chaos runs.
        }));
    });
}

/// Runs `f`, catching any panic and returning its payload rendered to a
/// string. While `f` runs, the process-wide panic hook (installed lazily,
/// once) suppresses the default stderr report for this thread — the
/// payload is not lost, it is the `Err` value.
///
/// The `AssertUnwindSafe` is sound for the worker's use: everything the
/// job closure captures is either atomics designed for concurrent
/// observation (metrics, cache, learned estimates — a torn *logical*
/// update is impossible, the panic happens between atomic operations) or
/// owned by the job itself and dropped with it.
pub(crate) fn guarded_catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_silencer_once();
    IN_WORKER_GUARD.with(|flag| flag.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    IN_WORKER_GUARD.with(|flag| flag.set(false));
    outcome.map_err(|payload| {
        payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::builder()
            .panic_at(3)
            .kill_worker_at(10)
            .delay_at(5, Duration::from_millis(2))
            .queue_full_at(7)
            .panic_every(100, 50)
            .build();
        assert_eq!(plan.at(3), Some(FaultAction::Panic));
        assert_eq!(plan.at(10), Some(FaultAction::KillWorker));
        assert_eq!(
            plan.at(5),
            Some(FaultAction::Delay(Duration::from_millis(2)))
        );
        assert_eq!(plan.at(7), Some(FaultAction::QueueFull));
        assert_eq!(plan.at(150), Some(FaultAction::Panic));
        assert_eq!(plan.at(151), None);
        assert_eq!(plan.at(0), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn exact_ordinals_override_periodic_rules() {
        let plan = FaultPlan::builder()
            .panic_every(4, 0)
            .kill_worker_at(8)
            .build();
        assert_eq!(plan.at(4), Some(FaultAction::Panic));
        assert_eq!(plan.at(8), Some(FaultAction::KillWorker));
    }

    #[test]
    fn env_grammar_roundtrip() {
        let plan = FaultPlan::parse("panic@*/4+1, kill@60, delay:5ms@7, full@9").unwrap();
        assert_eq!(plan.at(1), Some(FaultAction::Panic));
        assert_eq!(plan.at(5), Some(FaultAction::Panic));
        assert_eq!(plan.at(4), None);
        assert_eq!(plan.at(60), Some(FaultAction::KillWorker));
        assert_eq!(
            plan.at(7),
            Some(FaultAction::Delay(Duration::from_millis(5)))
        );
        assert_eq!(plan.at(9), Some(FaultAction::QueueFull));

        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("explode@3").is_err());
        assert!(FaultPlan::parse("panic@x").is_err());
        assert!(FaultPlan::parse("panic@*/0").is_err());
        assert!(FaultPlan::parse("delay:5s@3").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn guarded_catch_returns_payload_and_survives() {
        assert_eq!(guarded_catch(|| 41 + 1), Ok(42));
        let caught = guarded_catch(|| -> u32 { panic!("injected fault #7") });
        assert_eq!(caught, Err("injected fault #7".to_owned()));
        let formatted = guarded_catch(|| -> u32 { panic!("ordinal {}", 9) });
        assert_eq!(formatted, Err("ordinal 9".to_owned()));
        // The guard resets: a later success is unaffected.
        assert_eq!(guarded_catch(|| "ok"), Ok("ok"));
    }
}
