//! A lock-free log-bucket latency histogram.
//!
//! The seed's `ServiceMetrics` kept every completion latency in a
//! `Mutex<Vec<u64>>`: memory grew without bound for the life of the
//! process, and `snapshot()` cloned and sorted the entire completion
//! history under the lock — an O(n log n) stall that worsened every second
//! of uptime. This histogram replaces it with a fixed array of atomic
//! counters: recording is one `fetch_add` on a bucket (wait-free, no lock,
//! no allocation), memory is O(buckets) forever, and quantile queries walk
//! the constant-size bucket array.
//!
//! # Bucket scheme and error bound
//!
//! Values are microseconds. The bucket layout is log-linear, HDR-style:
//!
//! * values `0..8` get one exact bucket each (the linear region);
//! * every power-of-two octave `[2^e, 2^(e+1))` for `e ≥ 3` is split into
//!   8 equal sub-buckets (the top [`SUB_BITS`] + 1 significant bits of the
//!   value select the bucket).
//!
//! That is `8 + 61·8 = 496` buckets ([`BUCKETS`]) covering the whole `u64`
//! range — 3.9 KiB per histogram, independent of how many values were
//! recorded.
//!
//! A bucket spans at most 1/8 of its lower bound, so for any recorded
//! value `v` the bucket holding it satisfies `lo ≤ v ≤ lo·(1 + 1/8)`.
//! Quantile queries return the *lower bound* of the bucket containing the
//! requested order statistic, which yields the documented guarantee:
//!
//! > `quantile(p) ≤ exact_p ≤ quantile(p) · 9/8` (exact below 8 µs),
//!
//! i.e. reported percentiles never exceed the true value and undershoot it
//! by at most 12.5% — one log-bucket. `proptest` coverage pins this bound
//! against the exact sorted-vector answer on random latency streams
//! (`tests/histogram_properties.rs`).

use moqo_sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: one per value below `SUB`, then `SUB` per octave
/// for exponents `SUB_BITS..64`.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-size histogram of `u64` microsecond values; every operation is
/// lock-free and the memory footprint is O([`BUCKETS`]), never O(samples).
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Exact sum of every recorded value (µs): the Prometheus `_sum`
    /// series — the exposition can report a true mean even though the
    /// buckets are lossy.
    sum_us: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: identity in the linear region, top
/// `SUB_BITS + 1` significant bits otherwise.
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let e = 63 - value.leading_zeros();
    let sub = (value >> (e - SUB_BITS)) as usize & (SUB - 1);
    // The linear region occupies indices `0..SUB`; octave `e = SUB_BITS`
    // continues contiguously at index `SUB` (its sub-buckets are exactly
    // the values `SUB..2·SUB`, width 1, so the mapping stays gap-free).
    SUB + (e - SUB_BITS) as usize * SUB + sub
}

/// Inclusive value range `[lo, hi]` covered by bucket `index`.
fn bucket_range(index: usize) -> (u64, u64) {
    if index < SUB {
        return (index as u64, index as u64);
    }
    let e = ((index - SUB) / SUB) as u32 + SUB_BITS;
    let sub = ((index - SUB) % SUB) as u64;
    let width = 1u64 << (e - SUB_BITS);
    let lo = (1u64 << e) + sub * width;
    // `lo + (width - 1)`, not `lo + width - 1`: the top bucket's exclusive
    // end is 2^64, which overflows before the subtraction.
    (lo, lo + (width - 1))
}

impl LogHistogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration (saturating at `u64::MAX` microseconds).
    /// Wait-free: three relaxed `fetch_add`s, no lock, no allocation.
    pub fn record(&self, value: Duration) {
        self.record_us(u64::try_from(value.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one raw microsecond value.
    #[moqo::hot_path]
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counters, for repeated quantile
    /// queries over one consistent view. Cost is O([`BUCKETS`]) regardless
    /// of how many values were recorded.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }

    /// The inclusive `[lo, hi]` bounds of the bucket a value falls into —
    /// the resolution at which this histogram remembers it. Exposed so
    /// tests and docs can state the error bound exactly.
    #[must_use]
    pub fn bucket_bounds(us: u64) -> (u64, u64) {
        bucket_range(bucket_index(us))
    }
}

/// An owned copy of the bucket counters (see [`LogHistogram::snapshot`]).
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum_us: u64,
}

impl HistogramSnapshot {
    /// Total recorded values in this snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact sum of every recorded value, in microseconds (the
    /// Prometheus `_sum` series).
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Cumulative bucket view in ascending value order: each item is the
    /// bucket's inclusive upper bound (µs; `u64::MAX` for the top bucket)
    /// and the count of values at or below it — exactly the shape of a
    /// Prometheus `_bucket{le=...}` series.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cumulative = 0u64;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            cumulative += c;
            (bucket_range(i).1, cumulative)
        })
    }

    /// The `p`-quantile (`0.0 ≤ p ≤ 1.0`) as the lower bound of the bucket
    /// containing the order statistic of rank `round(p · (n − 1))` — the
    /// same rank convention the seed's exact sorted-vector percentile
    /// used. Returns 0 µs on an empty snapshot.
    ///
    /// Guarantee: `quantile(p) ≤ exact ≤ quantile(p) + width`, where
    /// `width ≤ quantile(p) / 8` (0 below 8 µs) — see the module docs.
    #[must_use]
    pub fn quantile_us(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = (p.clamp(0.0, 1.0) * (n - 1) as f64).round() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return bucket_range(i).0;
            }
        }
        // Unreachable while counts are consistent; the top bucket's lower
        // bound is the safe answer.
        bucket_range(BUCKETS - 1).0
    }

    /// [`HistogramSnapshot::quantile_us`] as a [`Duration`].
    #[must_use]
    pub fn quantile(&self, p: f64) -> Duration {
        Duration::from_micros(self.quantile_us(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_range(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_partition_the_value_range() {
        // Every bucket's range starts where the previous one ended.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(lo, expected_lo, "gap or overlap before bucket {i}");
            assert!(hi >= lo);
            expected_lo = hi.wrapping_add(1);
        }
        // The last bucket tops out at u64::MAX.
        assert_eq!(bucket_range(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn every_value_maps_into_its_bucket_range() {
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            255,
            256,
            1_000,
            1_023,
            1_024,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let (lo, hi) = LogHistogram::bucket_bounds(v);
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
            // Error bound: bucket width ≤ lo / 8 in the log region.
            if v >= SUB as u64 {
                assert!(hi - lo < lo.div_ceil(8), "bucket at {v} too wide");
            }
        }
    }

    #[test]
    fn quantiles_track_known_streams() {
        let h = LogHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        for (p, exact_ms) in [(0.50, 51u64), (0.95, 95), (0.99, 99)] {
            let got = snap.quantile_us(p);
            let exact = exact_ms * 1000;
            let (lo, hi) = LogHistogram::bucket_bounds(exact);
            assert!(
                got >= lo && got <= hi && got <= exact,
                "p{p}: got {got}, exact {exact} in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.snapshot().quantile(0.99), Duration::ZERO);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().sum_us(), 0);
    }

    #[test]
    fn sum_is_exact_and_cumulative_buckets_partition() {
        let h = LogHistogram::new();
        for us in [3u64, 9, 1_000, 1_000_000] {
            h.record_us(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.sum_us(), 3 + 9 + 1_000 + 1_000_000);
        let series: Vec<(u64, u64)> = snap.cumulative_buckets().collect();
        assert_eq!(series.len(), BUCKETS);
        // Upper bounds strictly ascend; the cumulative count never drops
        // and ends at the total.
        assert!(series
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(series.last().unwrap(), &(u64::MAX, 4));
        // A value is counted at (and beyond) its own bucket's bound.
        let at_9 = series.iter().find(|(hi, _)| *hi >= 9).unwrap();
        assert!(at_9.1 >= 2, "3 and 9 both at or below {at_9:?}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LogHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_us(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
