//! Service-level observability: request counters, a per-`ServiceError`
//! error taxonomy, per-algorithm block mix, and latency percentiles from
//! lock-free log-bucket histograms.
//!
//! Every recording path — submission, block completion, request
//! completion, errors — is a handful of relaxed atomic `fetch_add`s:
//! no `Mutex`, no allocation, O(buckets) memory regardless of uptime or
//! request count. `snapshot()` cost is likewise independent of how many
//! requests completed (a `bench_snapshot` cell and a unit test pin this).

use moqo_sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use moqo_core::Algorithm;

use crate::cache::CacheSnapshot;
use crate::histogram::LogHistogram;
use crate::request::ServiceError;

/// Which algorithm family served a block (the service's per-algorithm mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// The exact algorithm.
    Exa,
    /// The representative-tradeoffs approximation scheme.
    Rta,
    /// The iterative-refinement approximation scheme.
    Ira,
    /// The anytime randomized optimizer.
    Rmq,
    /// No algorithm ran — the block came straight from the plan cache.
    CacheServe,
}

impl AlgorithmKind {
    /// Classifies an [`Algorithm`].
    #[must_use]
    pub fn of(algorithm: Algorithm) -> Self {
        match algorithm {
            Algorithm::Exhaustive => AlgorithmKind::Exa,
            Algorithm::Rta { .. } => AlgorithmKind::Rta,
            Algorithm::Ira { .. } => AlgorithmKind::Ira,
            Algorithm::Rmq { .. } => AlgorithmKind::Rmq,
        }
    }

    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            AlgorithmKind::Exa => 0,
            AlgorithmKind::Rta => 1,
            AlgorithmKind::Ira => 2,
            AlgorithmKind::Rmq => 3,
            AlgorithmKind::CacheServe => 4,
        }
    }

    /// Stable wire code, packed into trace events.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        u8::try_from(self.index()).expect("five kinds fit a byte")
    }

    /// Decodes [`AlgorithmKind::as_u8`]; `None` for garbage.
    #[must_use]
    pub fn from_u8(code: u8) -> Option<Self> {
        Some(match code {
            0 => AlgorithmKind::Exa,
            1 => AlgorithmKind::Rta,
            2 => AlgorithmKind::Ira,
            3 => AlgorithmKind::Rmq,
            4 => AlgorithmKind::CacheServe,
            _ => return None,
        })
    }

    /// Stable lower-case name for export surfaces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Exa => "exa",
            AlgorithmKind::Rta => "rta",
            AlgorithmKind::Ira => "ira",
            AlgorithmKind::Rmq => "rmq",
            AlgorithmKind::CacheServe => "cached",
        }
    }
}

/// Live counters; cheap to update from every worker, safe to share via
/// `Arc`. All recording methods are lock-free.
pub struct ServiceMetrics {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    queue_full: AtomicU64,
    shed: AtomicU64,
    panics_total: AtomicU64,
    respawns: AtomicU64,
    stalls_detected: AtomicU64,
    degraded_blocks: AtomicU64,
    downgraded_blocks: AtomicU64,
    /// EWMA of recent queue waits: the brownout controller's pressure
    /// signal (reads are one relaxed load on the submit fast path).
    pressure: PressureGauge,
    algo_blocks: [AtomicU64; AlgorithmKind::COUNT],
    /// Submission → response, the sum of the two series below (recorded on
    /// one clock, the job's submission `Instant`, so the series agree by
    /// construction — no cross-clock `.max` papering needed).
    latency: LogHistogram,
    /// Submission → worker pickup.
    queue_wait: LogHistogram,
    /// Worker pickup → response (cache probes + optimization).
    service_time: LogHistogram,
    /// End of the last throughput window: microseconds since `started`.
    window_started_us: AtomicU64,
    /// `completed` at the end of the last throughput window.
    window_completed: AtomicU64,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics_total: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            stalls_detected: AtomicU64::new(0),
            degraded_blocks: AtomicU64::new(0),
            downgraded_blocks: AtomicU64::new(0),
            pressure: PressureGauge::default(),
            algo_blocks: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: LogHistogram::new(),
            queue_wait: LogHistogram::new(),
            service_time: LogHistogram::new(),
            window_started_us: AtomicU64::new(0),
            window_completed: AtomicU64::new(0),
        }
    }
}

impl ServiceMetrics {
    /// Counts one request accepted into the queue.
    pub fn on_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one submission bounced off a full queue.
    pub fn on_queue_full(&self) {
        self.queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failed request under the error taxonomy: admission
    /// rejections, deadline expiries, shed submissions and internal losses
    /// land in separate counters, so `rejected` means what its docs say.
    /// An `Internal` error additionally bumps `panics_total` — every
    /// internal error today is a caught worker panic.
    pub fn on_error(&self, error: &ServiceError) {
        let counter = match error {
            ServiceError::Rejected(_) => &self.rejected,
            ServiceError::DeadlineExceeded => &self.timed_out,
            ServiceError::Shed => &self.shed,
            ServiceError::Internal { .. } => {
                self.panics_total.fetch_add(1, Ordering::Relaxed);
                &self.failed
            }
            ServiceError::QueueFull | ServiceError::ShuttingDown | ServiceError::WorkerLost => {
                &self.failed
            }
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one worker respawned by the supervisor (dead worker reaped,
    /// replacement spawned onto its shard).
    pub fn on_respawn(&self) {
        self.respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one wedged worker detected (heartbeat epoch stagnant past
    /// the stall threshold); a substitute was fielded.
    pub fn on_stall(&self) {
        self.stalls_detected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one block browned out under load pressure (forced onto the
    /// anytime search and/or its sample budget shrunk).
    pub fn on_degraded_block(&self) {
        self.degraded_blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// The queue-wait pressure gauge (shared with the brownout admission
    /// controller).
    #[must_use]
    pub fn pressure_gauge(&self) -> &PressureGauge {
        &self.pressure
    }

    /// Point-in-time copy of the end-to-end latency histogram (for the
    /// Prometheus cumulative-bucket exposition).
    #[must_use]
    pub fn latency_snapshot(&self) -> crate::histogram::HistogramSnapshot {
        self.latency.snapshot()
    }

    /// Point-in-time copy of the queue-wait histogram.
    #[must_use]
    pub fn queue_wait_snapshot(&self) -> crate::histogram::HistogramSnapshot {
        self.queue_wait.snapshot()
    }

    /// Point-in-time copy of the processing-time histogram.
    #[must_use]
    pub fn service_time_snapshot(&self) -> crate::histogram::HistogramSnapshot {
        self.service_time.snapshot()
    }

    /// Counts one optimized (or cache-served) block.
    #[moqo::hot_path]
    pub fn on_block(&self, kind: AlgorithmKind, downgraded: bool) {
        self.algo_blocks[kind.index()].fetch_add(1, Ordering::Relaxed);
        if downgraded {
            self.downgraded_blocks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one completed request: queue wait and processing time go to
    /// separate histogram series, their sum to the end-to-end series. All
    /// three are measured from the same submission `Instant`, so no
    /// cross-clock reconciliation is needed (or performed).
    #[moqo::hot_path]
    pub fn on_completed(&self, queue_wait: Duration, service_time: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.queue_wait.record(queue_wait);
        self.service_time.record(service_time);
        self.latency.record(queue_wait + service_time);
        self.pressure.record(queue_wait);
    }

    /// A consistent-enough point-in-time view. Counters are relaxed loads;
    /// percentiles come from O(buckets) histogram walks — the cost does
    /// not depend on how many requests completed.
    ///
    /// Each call also closes the current *throughput window*:
    /// `throughput_rps` covers completions since the previous `snapshot()`
    /// (or since startup, on the first call), so a long-idle service
    /// reports its live rate instead of a lifetime average diluted by
    /// idle uptime.
    #[must_use]
    pub fn snapshot(&self, cache: CacheSnapshot, alive_workers: usize) -> MetricsSnapshot {
        let latency = self.latency.snapshot();
        let queue_wait = self.queue_wait.snapshot();
        let service_time = self.service_time.snapshot();
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        let now_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        // Guard against back-to-back snapshots: a window of a few
        // microseconds holding one completion used to report a
        // million-rps "spike" (or divide by ~0). Windows shorter than
        // `MIN_WINDOW_US` are *not closed* — the rate is computed over the
        // still-open window with the denominator clamped to the minimum,
        // and the next snapshot sees the full window. The close itself is
        // a CAS so two racing snapshots cannot both claim the same window.
        const MIN_WINDOW_US: u64 = 1_000;
        #[allow(clippy::cast_precision_loss)]
        let throughput_rps = {
            let window_start = self.window_started_us.load(Ordering::Relaxed);
            let window_us = now_us.saturating_sub(window_start);
            let closing = window_us >= MIN_WINDOW_US
                && self
                    .window_started_us
                    .compare_exchange(window_start, now_us, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok();
            let window_completed = if closing {
                self.window_completed.swap(completed, Ordering::Relaxed)
            } else {
                self.window_completed.load(Ordering::Relaxed)
            };
            let window_done = completed.saturating_sub(window_completed);
            window_done as f64 / (window_us.max(MIN_WINDOW_US) as f64 / 1e6)
        };
        MetricsSnapshot {
            uptime: elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_full: self.queue_full.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panics_total: self.panics_total.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            stalls_detected: self.stalls_detected.load(Ordering::Relaxed),
            degraded_blocks: self.degraded_blocks.load(Ordering::Relaxed),
            downgraded_blocks: self.downgraded_blocks.load(Ordering::Relaxed),
            throughput_rps,
            p50: latency.quantile(0.50),
            p95: latency.quantile(0.95),
            p99: latency.quantile(0.99),
            queue_p50: queue_wait.quantile(0.50),
            queue_p95: queue_wait.quantile(0.95),
            queue_p99: queue_wait.quantile(0.99),
            service_p50: service_time.quantile(0.50),
            service_p95: service_time.quantile(0.95),
            service_p99: service_time.quantile(0.99),
            blocks_exa: self.algo_blocks[0].load(Ordering::Relaxed),
            blocks_rta: self.algo_blocks[1].load(Ordering::Relaxed),
            blocks_ira: self.algo_blocks[2].load(Ordering::Relaxed),
            blocks_rmq: self.algo_blocks[3].load(Ordering::Relaxed),
            blocks_cached: self.algo_blocks[4].load(Ordering::Relaxed),
            pressure: self.pressure.current(),
            alive_workers,
            cache,
        }
    }
}

/// Everything an operator dashboard would plot.
///
/// Percentiles are log-bucket quantiles: each reported value is the lower
/// bound of the histogram bucket containing the exact order statistic, so
/// it never exceeds the true percentile and undershoots by at most 12.5%
/// (one bucket; exact below 8 µs) — see [`crate::histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Time since the service started.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with a plan.
    pub completed: u64,
    /// Requests rejected by admission control — and only those; deadline
    /// expiries and internal failures have their own counters below.
    pub rejected: u64,
    /// Requests whose deadline expired before a block could start.
    pub timed_out: u64,
    /// Requests lost to internal errors (none of the above taxonomy).
    pub failed: u64,
    /// Submissions bounced off a full queue.
    pub queue_full: u64,
    /// Submissions shed by the brownout admission controller (queue-wait
    /// pressure above the watermark) — separate from `rejected`, which is
    /// a per-request deadline verdict.
    pub shed: u64,
    /// Worker panics caught at the job boundary and delivered as
    /// [`ServiceError::Internal`](crate::ServiceError::Internal); every
    /// one of these also counts in `failed`.
    pub panics_total: u64,
    /// Workers respawned by the supervisor after a worker thread died.
    pub respawns: u64,
    /// Wedged workers detected (heartbeat stagnant past the stall
    /// threshold); each was abandoned and a substitute fielded.
    pub stalls_detected: u64,
    /// Blocks browned out under load pressure: forced onto the anytime
    /// search (and/or a shrunken sample budget) by the admission
    /// controller rather than by deadline or size gates.
    pub degraded_blocks: u64,
    /// Blocks that ran a weaker algorithm than the request preferred.
    pub downgraded_blocks: u64,
    /// Completed requests per second over the current throughput window
    /// (since the previous snapshot; since startup on the first one).
    pub throughput_rps: f64,
    /// Median request latency (submission → response).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Median queue wait (submission → worker pickup).
    pub queue_p50: Duration,
    /// 95th-percentile queue wait.
    pub queue_p95: Duration,
    /// 99th-percentile queue wait.
    pub queue_p99: Duration,
    /// Median processing time (worker pickup → response).
    pub service_p50: Duration,
    /// 95th-percentile processing time.
    pub service_p95: Duration,
    /// 99th-percentile processing time.
    pub service_p99: Duration,
    /// Blocks optimized by the exact algorithm.
    pub blocks_exa: u64,
    /// Blocks optimized by RTA.
    pub blocks_rta: u64,
    /// Blocks optimized by IRA.
    pub blocks_ira: u64,
    /// Blocks optimized by RMQ (fresh or warm-started).
    pub blocks_rmq: u64,
    /// Blocks served straight from the plan cache.
    pub blocks_cached: u64,
    /// Live [`PressureGauge`] value — the EWMA of recent queue waits the
    /// brownout controller reads — `None` before the first completion.
    pub pressure: Option<Duration>,
    /// Workers registered as live at snapshot time (transiently below the
    /// configured count while the supervisor replaces one).
    pub alive_workers: usize,
    /// Plan-cache counters, including the per-shard view.
    pub cache: CacheSnapshot,
}

impl MetricsSnapshot {
    /// Total failed requests across the error taxonomy — what the seed's
    /// overloaded `rejected` counter used to absorb.
    #[must_use]
    pub fn errors_total(&self) -> u64 {
        self.rejected + self.timed_out + self.failed + self.shed
    }
}

/// A lock-free EWMA of recent queue waits: the load signal the brownout
/// admission controller reads on every submit (one relaxed load).
///
/// Workers fold each completed request's queue wait in with smoothing
/// 0.2; [`PressureGauge::pressure`] normalizes the current estimate
/// against a watermark, so `1.0` means "queue waits sit exactly at the
/// watermark" and values above it measure how far into brownout the
/// service is.
#[derive(Debug)]
pub struct PressureGauge {
    /// EWMA of queue-wait micros as `f64` bits; 0 = no sample yet.
    ewma_us: AtomicU64,
}

impl Default for PressureGauge {
    fn default() -> Self {
        PressureGauge {
            ewma_us: AtomicU64::new(0),
        }
    }
}

impl PressureGauge {
    const SMOOTHING: f64 = 0.2;

    /// Folds one measured queue wait in (short CAS loop; a lost race
    /// drops one sample of smoothing, never corrupts the estimate).
    #[moqo::hot_path]
    pub fn record(&self, queue_wait: Duration) {
        let sample_us = queue_wait.as_secs_f64() * 1e6;
        let mut current = self.ewma_us.load(Ordering::Relaxed);
        for _ in 0..4 {
            let updated = if current == 0 {
                sample_us
            } else {
                Self::SMOOTHING * sample_us + (1.0 - Self::SMOOTHING) * f64::from_bits(current)
            };
            // Exactly-0.0 bits would read as "no sample"; nudge instead.
            let bits = updated.max(f64::MIN_POSITIVE).to_bits();
            match self.ewma_us.compare_exchange_weak(
                current,
                bits,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current queue-wait estimate, `None` before the first sample.
    #[must_use]
    pub fn current(&self) -> Option<Duration> {
        let bits = self.ewma_us.load(Ordering::Relaxed);
        (bits != 0).then(|| Duration::from_secs_f64(f64::from_bits(bits) / 1e6))
    }

    /// Current estimate over `watermark` (`0.0` before any sample; a
    /// zero watermark saturates rather than divides by zero).
    #[must_use]
    pub fn pressure(&self, watermark: Duration) -> f64 {
        let Some(current) = self.current() else {
            return 0.0;
        };
        let watermark_s = watermark.as_secs_f64();
        if watermark_s <= 0.0 {
            return f64::INFINITY;
        }
        current.as_secs_f64() / watermark_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LogHistogram;

    #[test]
    fn percentiles_over_known_latencies() {
        let m = ServiceMetrics::default();
        for ms in 1..=100u64 {
            m.on_completed(Duration::ZERO, Duration::from_millis(ms));
        }
        let snap = m.snapshot(CacheSnapshot::default(), 0);
        assert_eq!(snap.completed, 100);
        // Log-bucket quantiles: within one bucket below the exact answer.
        for (got, exact_ms) in [(snap.p50, 51u64), (snap.p95, 95), (snap.p99, 99)] {
            let exact = exact_ms * 1000;
            let got = u64::try_from(got.as_micros()).unwrap();
            let (lo, _) = LogHistogram::bucket_bounds(exact);
            assert!(
                got >= lo && got <= exact,
                "got {got} for exact {exact} (bucket lo {lo})"
            );
        }
        // Queue waits were all zero; processing carries the latency.
        assert_eq!(snap.queue_p99, Duration::ZERO);
        assert!(snap.service_p50 > Duration::ZERO);
        assert_eq!(snap.p95, snap.service_p95);
        assert!(snap.throughput_rps > 0.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServiceMetrics::default();
        let snap = m.snapshot(CacheSnapshot::default(), 0);
        assert_eq!(snap.p50, Duration::ZERO);
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.errors_total(), 0);
    }

    #[test]
    fn block_mix_accumulates() {
        let m = ServiceMetrics::default();
        m.on_block(AlgorithmKind::Exa, false);
        m.on_block(AlgorithmKind::Rmq, true);
        m.on_block(AlgorithmKind::CacheServe, false);
        let snap = m.snapshot(CacheSnapshot::default(), 0);
        assert_eq!(snap.blocks_exa, 1);
        assert_eq!(snap.blocks_rmq, 1);
        assert_eq!(snap.blocks_cached, 1);
        assert_eq!(snap.downgraded_blocks, 1);
    }

    #[test]
    fn error_taxonomy_routes_to_distinct_counters() {
        let m = ServiceMetrics::default();
        m.on_error(&ServiceError::Rejected("no algorithm".into()));
        m.on_error(&ServiceError::DeadlineExceeded);
        m.on_error(&ServiceError::DeadlineExceeded);
        m.on_error(&ServiceError::WorkerLost);
        m.on_error(&ServiceError::Shed);
        m.on_error(&ServiceError::internal("boom".into()));
        let snap = m.snapshot(CacheSnapshot::default(), 0);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.timed_out, 2);
        assert_eq!(snap.failed, 2, "WorkerLost and Internal both fail");
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.panics_total, 1, "Internal implies a caught panic");
        assert_eq!(snap.errors_total(), 6);
    }

    #[test]
    fn robustness_counters_accumulate() {
        let m = ServiceMetrics::default();
        m.on_respawn();
        m.on_respawn();
        m.on_stall();
        m.on_degraded_block();
        let snap = m.snapshot(CacheSnapshot::default(), 0);
        assert_eq!(snap.respawns, 2);
        assert_eq!(snap.stalls_detected, 1);
        assert_eq!(snap.degraded_blocks, 1);
    }

    #[test]
    fn back_to_back_snapshots_never_report_absurd_throughput() {
        let m = ServiceMetrics::default();
        std::thread::sleep(Duration::from_millis(2));
        let _ = m.snapshot(CacheSnapshot::default(), 0);
        // One completion, then an immediate snapshot: the old swap-based
        // window could divide 1 completion by a microsecond-scale window
        // and report ~1M rps. The clamped denominator bounds the rate to
        // completions-per-minimum-window.
        m.on_completed(Duration::ZERO, Duration::from_micros(5));
        let spike = m.snapshot(CacheSnapshot::default(), 0);
        assert!(
            spike.throughput_rps <= 1_000.0,
            "1 completion in a sub-ms window must cap at 1/1ms = 1000 rps, \
             got {}",
            spike.throughput_rps
        );
        // The short window stayed open: once it is long enough, the same
        // completion still closes a window (not lost to the guard).
        std::thread::sleep(Duration::from_millis(2));
        let settled = m.snapshot(CacheSnapshot::default(), 0);
        assert!(settled.throughput_rps > 0.0);
    }

    #[test]
    fn pressure_gauge_tracks_queue_waits() {
        let gauge = PressureGauge::default();
        assert_eq!(gauge.current(), None);
        assert_eq!(gauge.pressure(Duration::from_millis(10)), 0.0);
        gauge.record(Duration::from_millis(10));
        let first = gauge.current().unwrap();
        assert!((first.as_secs_f64() - 0.010).abs() < 1e-9);
        // EWMA: 0.2 · 20ms + 0.8 · 10ms = 12ms.
        gauge.record(Duration::from_millis(20));
        let second = gauge.current().unwrap();
        assert!((second.as_secs_f64() - 0.012).abs() < 1e-9);
        let pressure = gauge.pressure(Duration::from_millis(6));
        assert!((pressure - 2.0).abs() < 1e-9, "12ms over a 6ms watermark");
        assert!(gauge.pressure(Duration::ZERO).is_infinite());
    }

    #[test]
    fn throughput_windows_reset_per_snapshot() {
        let m = ServiceMetrics::default();
        for _ in 0..100 {
            m.on_completed(Duration::ZERO, Duration::from_micros(10));
        }
        std::thread::sleep(Duration::from_millis(5));
        let first = m.snapshot(CacheSnapshot::default(), 0);
        assert!(first.throughput_rps > 0.0, "first window covers startup");
        // An idle window right after: the live rate drops to ~0 instead of
        // reporting the diluted lifetime average.
        std::thread::sleep(Duration::from_millis(5));
        let second = m.snapshot(CacheSnapshot::default(), 0);
        assert!(
            second.throughput_rps < first.throughput_rps / 2.0,
            "idle window must not inherit lifetime throughput \
             ({} vs {})",
            second.throughput_rps,
            first.throughput_rps
        );
    }

    #[test]
    fn snapshot_cost_is_independent_of_completed_count() {
        let time_snapshot = |recordings: u64| -> Duration {
            let m = ServiceMetrics::default();
            for i in 0..recordings {
                m.on_completed(
                    Duration::from_micros(i % 997),
                    Duration::from_micros(i % 100_003),
                );
            }
            // Min of several runs: the stable floor, immune to one-off
            // scheduler noise.
            (0..5)
                .map(|_| {
                    let started = Instant::now();
                    let snap = m.snapshot(CacheSnapshot::default(), 0);
                    assert_eq!(snap.completed, recordings);
                    started.elapsed()
                })
                .min()
                .expect("five timings")
        };
        let small = time_snapshot(1_000);
        let large = time_snapshot(200_000);
        // The seed's sort-under-lock snapshot scaled O(n log n): 200× the
        // completions cost well over 200× the snapshot. The histogram walk
        // is O(buckets); allow generous constant-factor noise only.
        assert!(
            large < small * 20 + Duration::from_millis(2),
            "snapshot() cost grew with request count: {small:?} at 1k vs \
             {large:?} at 200k completions"
        );
    }
}
