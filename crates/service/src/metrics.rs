//! Service-level observability: request counters, per-algorithm mix, and
//! latency percentiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use moqo_core::Algorithm;

use crate::cache::CacheSnapshot;

/// Which algorithm family served a block (the service's per-algorithm mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// The exact algorithm.
    Exa,
    /// The representative-tradeoffs approximation scheme.
    Rta,
    /// The iterative-refinement approximation scheme.
    Ira,
    /// The anytime randomized optimizer.
    Rmq,
    /// No algorithm ran — the block came straight from the plan cache.
    CacheServe,
}

impl AlgorithmKind {
    /// Classifies an [`Algorithm`].
    #[must_use]
    pub fn of(algorithm: Algorithm) -> Self {
        match algorithm {
            Algorithm::Exhaustive => AlgorithmKind::Exa,
            Algorithm::Rta { .. } => AlgorithmKind::Rta,
            Algorithm::Ira { .. } => AlgorithmKind::Ira,
            Algorithm::Rmq { .. } => AlgorithmKind::Rmq,
        }
    }

    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            AlgorithmKind::Exa => 0,
            AlgorithmKind::Rta => 1,
            AlgorithmKind::Ira => 2,
            AlgorithmKind::Rmq => 3,
            AlgorithmKind::CacheServe => 4,
        }
    }
}

/// Live counters; cheap to update from every worker.
pub struct ServiceMetrics {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    queue_full: AtomicU64,
    downgraded_blocks: AtomicU64,
    algo_blocks: [AtomicU64; AlgorithmKind::COUNT],
    /// Completed-request latencies in microseconds (submission → response).
    latencies_us: Mutex<Vec<u64>>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            downgraded_blocks: AtomicU64::new(0),
            algo_blocks: std::array::from_fn(|_| AtomicU64::new(0)),
            latencies_us: Mutex::new(Vec::new()),
        }
    }
}

impl ServiceMetrics {
    pub(crate) fn on_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_queue_full(&self) {
        self.queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_block(&self, kind: AlgorithmKind, downgraded: bool) {
        self.algo_blocks[kind.index()].fetch_add(1, Ordering::Relaxed);
        if downgraded {
            self.downgraded_blocks.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn on_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latencies_us
            .lock()
            .expect("metrics lock poisoned")
            .push(us);
    }

    /// A consistent-enough point-in-time view (counters are relaxed; the
    /// latency histogram is copied under its lock).
    #[must_use]
    pub fn snapshot(&self, cache: CacheSnapshot) -> MetricsSnapshot {
        let mut latencies = self
            .latencies_us
            .lock()
            .expect("metrics lock poisoned")
            .clone();
        latencies.sort_unstable();
        let percentile = |p: f64| -> Duration {
            if latencies.is_empty() {
                return Duration::ZERO;
            }
            let rank = (p * (latencies.len() - 1) as f64).round() as usize;
            Duration::from_micros(latencies[rank.min(latencies.len() - 1)])
        };
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        MetricsSnapshot {
            uptime: elapsed,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_full: self.queue_full.load(Ordering::Relaxed),
            downgraded_blocks: self.downgraded_blocks.load(Ordering::Relaxed),
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: percentile(0.99),
            blocks_exa: self.algo_blocks[0].load(Ordering::Relaxed),
            blocks_rta: self.algo_blocks[1].load(Ordering::Relaxed),
            blocks_ira: self.algo_blocks[2].load(Ordering::Relaxed),
            blocks_rmq: self.algo_blocks[3].load(Ordering::Relaxed),
            blocks_cached: self.algo_blocks[4].load(Ordering::Relaxed),
            cache,
        }
    }
}

/// Everything an operator dashboard would plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Time since the service started.
    pub uptime: Duration,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with a plan.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Submissions bounced off a full queue.
    pub queue_full: u64,
    /// Blocks that ran a weaker algorithm than the request preferred.
    pub downgraded_blocks: u64,
    /// Completed requests per second of uptime.
    pub throughput_rps: f64,
    /// Median request latency (submission → response).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Blocks optimized by the exact algorithm.
    pub blocks_exa: u64,
    /// Blocks optimized by RTA.
    pub blocks_rta: u64,
    /// Blocks optimized by IRA.
    pub blocks_ira: u64,
    /// Blocks optimized by RMQ (fresh or warm-started).
    pub blocks_rmq: u64,
    /// Blocks served straight from the plan cache.
    pub blocks_cached: u64,
    /// Plan-cache counters.
    pub cache: CacheSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_latencies() {
        let m = ServiceMetrics::default();
        for ms in 1..=100u64 {
            m.on_completed(Duration::from_millis(ms));
        }
        let snap = m.snapshot(CacheSnapshot::default());
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.p50, Duration::from_millis(51));
        assert_eq!(snap.p95, Duration::from_millis(95));
        assert_eq!(snap.p99, Duration::from_millis(99));
        assert!(snap.throughput_rps > 0.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServiceMetrics::default();
        let snap = m.snapshot(CacheSnapshot::default());
        assert_eq!(snap.p50, Duration::ZERO);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn block_mix_accumulates() {
        let m = ServiceMetrics::default();
        m.on_block(AlgorithmKind::Exa, false);
        m.on_block(AlgorithmKind::Rmq, true);
        m.on_block(AlgorithmKind::CacheServe, false);
        let snap = m.snapshot(CacheSnapshot::default());
        assert_eq!(snap.blocks_exa, 1);
        assert_eq!(snap.blocks_rmq, 1);
        assert_eq!(snap.blocks_cached, 1);
        assert_eq!(snap.downgraded_blocks, 1);
    }
}
