//! The flight recorder: lock-free, span-structured request tracing.
//!
//! Aggregate counters ([`crate::MetricsSnapshot`]) answer *how much*; they
//! cannot answer "why was request #417 slow / shed / degraded". This
//! module records the evidence trail per request as fixed-size
//! [`TraceEvent`]s — admit/reject, enqueue, pop (queue wait), cache probe
//! outcome, per-block optimization (algorithm, achieved α, report digest,
//! `degraded_by_pressure`), retry/panic/kill/shed, completion — into two
//! sinks at once:
//!
//! * **Per-worker ring buffers** ([`EventRing`]): bounded, oldest
//!   overwritten, with a `dropped_events` count derived from the head
//!   position (no extra hot-path atomic). A write is one `fetch_add` slot
//!   claim, six payload-word stores and a commit stamp (seqlock per slot:
//!   readers revalidate the stamp and skip torn slots; the word stores
//!   are Release — plain `mov`s on x86 — because fully relaxed payloads
//!   admit a torn read past the recheck, see [`EventRing::record`]). Zero
//!   allocation per event.
//! * **A per-request span collector** ([`SpanCollector`]): a small
//!   buffer riding inside the job, so the *complete* trace of a request
//!   survives ring overwrite. At completion the recorder applies
//!   **tail-based exemplar retention**: every errored / shed / panicked /
//!   worker-killing request is kept in full (bounded store, drop-oldest
//!   with its own counter), and completed requests compete for the
//!   rolling slowest-k by latency.
//!
//! Timestamps come from a [`TraceClock`] seam (the same pattern as
//! [`crate::RetryClock`]): wall microseconds in production, a logical
//! counter under `MOQO_SL_REPLAY` so replayed trace streams are
//! byte-deterministic. Checksums ([`TraceEvent::digest`]) exclude every
//! timing-valued field, and the error-exemplar checksum folds per-trace
//! hashes commutatively, so it is independent of worker interleaving —
//! that is what lets CI gate a 4-worker chaos run byte-stable.

use moqo_sync::atomic::{AtomicU64, Ordering};
use moqo_sync::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

use crate::request::ServiceError;

/// Trace id used by events that belong to no request (supervisor respawn
/// and stall findings).
pub const SYSTEM_TRACE_ID: u64 = u64::MAX;

/// Model-checker steering knobs; compiled only under `--cfg moqo_model`.
/// Seeded-bug injection for the model suite.
///
/// `tests/model_seeded.rs` flips [`WEAKEN_COMMIT`] to demote the
/// seqlock commit stamp to `Relaxed` and asserts the checker reports
/// the resulting torn read. The knob lives on [`moqo_sync::raw`] so
/// reading it is invisible to the checker itself.
#[cfg(moqo_model)]
pub mod model_hooks {
    use moqo_sync::raw::AtomicBool;

    /// When `true`, [`super::EventRing::record`] publishes the commit
    /// stamp with `Ordering::Relaxed` instead of `Release`, so a reader
    /// can validate a slot whose payload words it never actually saw.
    pub static WEAKEN_COMMIT: AtomicBool = AtomicBool::new(false);
}

/// Payload words per ring slot (the encoded [`TraceEvent`] size).
const WORDS: usize = 6;

/// FNV-1a over one `u64`, folded into `acc`.
fn fnv1a_u64(mut acc: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        acc ^= u64::from(byte);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// What happened at one point of a request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A submission was received and a trace id (its ordinal) minted.
    /// `arg0` = block count, `arg1` = requested α bits, `arg2` = 1 when a
    /// deadline is attached.
    Submitted = 0,
    /// This submission is retry attempt `arg0` of an earlier transient
    /// failure (`submit_with_retry`).
    RetryAttempt = 1,
    /// The admission fast path rejected the request at submission.
    Rejected = 2,
    /// The brownout valve shed the submission before it took a queue slot.
    Shed = 3,
    /// The submission bounced off a full (or fault-injected-full) queue.
    QueueFull = 4,
    /// The request took a queue slot.
    Enqueued = 5,
    /// A worker picked the request up; `arg0` = queue wait in µs (a
    /// timing value, excluded from checksums).
    Popped = 6,
    /// An injected delay fault slept the worker; `arg0` = delay in ms
    /// (plan-determined, checksummed).
    FaultDelay = 7,
    /// A plan-cache probe for block `arg0 & 0xFFFF_FFFF`; bits 32.. of
    /// `arg0` carry the outcome (0 hit, 1 not-servable, 2 miss), `arg1`
    /// the resident entry's α bits (0 on a miss).
    CacheProbe = 8,
    /// One block was optimized. `arg0` packs block index (bits 0..32),
    /// [`crate::AlgorithmKind`] code (bits 32..40), and flags (bit 40
    /// `degraded_by_pressure`, bit 41 downgraded, bit 42 warm-started);
    /// `arg1` = achieved α bits; `arg2` = the block report's
    /// deterministic digest (`BlockReport::trace_digest`).
    BlockOptimized = 9,
    /// The deadline expired before block `arg0` could start.
    DeadlineExceeded = 10,
    /// The worker's panic guard caught a panic; `arg0` = payload byte
    /// length after capping, `arg1` = 1 when the payload was truncated.
    PanicCaught = 11,
    /// A fault killed the serving worker after it answered; `arg0` = the
    /// worker's queue shard (scheduling-dependent, excluded from
    /// checksums).
    WorkerKilled = 12,
    /// The request finished with an error; `arg0` = the
    /// [`ServiceError`] class code (see [`error_code`]).
    Failed = 13,
    /// The request completed; `arg0` = end-to-end latency in µs (timing,
    /// excluded from checksums), `arg1` = block count, `arg2` = 1 when
    /// fully cache-served.
    Completed = 14,
    /// The supervisor respawned a worker onto shard `arg0`
    /// (system-scoped: trace id [`SYSTEM_TRACE_ID`]).
    WorkerRespawned = 15,
    /// The supervisor detected a wedged worker on shard `arg0`.
    WorkerStalled = 16,
}

impl EventKind {
    /// Decodes the wire byte; `None` for garbage (a torn ring slot).
    #[must_use]
    pub fn from_u8(value: u8) -> Option<Self> {
        use EventKind::{
            BlockOptimized, CacheProbe, Completed, DeadlineExceeded, Enqueued, Failed, FaultDelay,
            PanicCaught, Popped, QueueFull, Rejected, RetryAttempt, Shed, Submitted, WorkerKilled,
            WorkerRespawned, WorkerStalled,
        };
        Some(match value {
            0 => Submitted,
            1 => RetryAttempt,
            2 => Rejected,
            3 => Shed,
            4 => QueueFull,
            5 => Enqueued,
            6 => Popped,
            7 => FaultDelay,
            8 => CacheProbe,
            9 => BlockOptimized,
            10 => DeadlineExceeded,
            11 => PanicCaught,
            12 => WorkerKilled,
            13 => Failed,
            14 => Completed,
            15 => WorkerRespawned,
            16 => WorkerStalled,
            _ => return None,
        })
    }

    /// Stable lower-snake name for export surfaces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::RetryAttempt => "retry_attempt",
            EventKind::Rejected => "rejected",
            EventKind::Shed => "shed",
            EventKind::QueueFull => "queue_full",
            EventKind::Enqueued => "enqueued",
            EventKind::Popped => "popped",
            EventKind::FaultDelay => "fault_delay",
            EventKind::CacheProbe => "cache_probe",
            EventKind::BlockOptimized => "block_optimized",
            EventKind::DeadlineExceeded => "deadline_exceeded",
            EventKind::PanicCaught => "panic_caught",
            EventKind::WorkerKilled => "worker_killed",
            EventKind::Failed => "failed",
            EventKind::Completed => "completed",
            EventKind::WorkerRespawned => "worker_respawned",
            EventKind::WorkerStalled => "worker_stalled",
        }
    }

    /// Whether `arg0` holds a timing or scheduling value that must stay
    /// out of checksums (queue waits, latencies, the shard a kill landed
    /// on — everything that varies run-to-run under real concurrency).
    fn arg0_is_nondeterministic(self) -> bool {
        matches!(
            self,
            EventKind::Popped | EventKind::Completed | EventKind::WorkerKilled
        )
    }
}

/// The stable class code of a [`ServiceError`], carried by
/// [`EventKind::Failed`] events.
#[must_use]
pub fn error_code(error: &ServiceError) -> u64 {
    match error {
        ServiceError::QueueFull => 0,
        ServiceError::ShuttingDown => 1,
        ServiceError::Rejected(_) => 2,
        ServiceError::DeadlineExceeded => 3,
        ServiceError::Shed => 4,
        ServiceError::Internal { .. } => 5,
        ServiceError::WorkerLost => 6,
    }
}

/// One fixed-size lifecycle event; six words on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The request's trace id — its submission ordinal
    /// ([`SYSTEM_TRACE_ID`] for supervisor events).
    pub trace_id: u64,
    /// [`TraceClock`] reading: wall µs since the recorder started, or a
    /// logical tick under replay. Never checksummed.
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// 0-based index of this event within its trace (exactly-once
    /// ordering handle; 0 for system events).
    pub seq: u16,
    /// First argument (meaning per [`EventKind`]).
    pub arg0: u64,
    /// Second argument.
    pub arg1: u64,
    /// Third argument.
    pub arg2: u64,
}

impl TraceEvent {
    fn encode(&self) -> [u64; WORDS] {
        [
            self.trace_id,
            self.ts,
            u64::from(self.kind as u8) | (u64::from(self.seq) << 8),
            self.arg0,
            self.arg1,
            self.arg2,
        ]
    }

    #[allow(clippy::cast_possible_truncation)]
    fn decode(words: &[u64; WORDS]) -> Option<Self> {
        let kind = EventKind::from_u8((words[2] & 0xFF) as u8)?;
        Some(TraceEvent {
            trace_id: words[0],
            ts: words[1],
            kind,
            seq: ((words[2] >> 8) & 0xFFFF) as u16,
            arg0: words[3],
            arg1: words[4],
            arg2: words[5],
        })
    }

    /// Deterministic digest of the event: FNV-1a over trace id, kind,
    /// per-trace sequence number and the *deterministic* arguments —
    /// timestamps and timing/scheduling-valued args are excluded, so the
    /// digest is identical across runs and machines whenever the serving
    /// behaviour is.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut acc = fnv1a_u64(FNV_OFFSET, self.trace_id);
        acc = fnv1a_u64(acc, u64::from(self.kind as u8));
        acc = fnv1a_u64(acc, u64::from(self.seq));
        if !self.kind.arg0_is_nondeterministic() {
            acc = fnv1a_u64(acc, self.arg0);
        }
        acc = fnv1a_u64(acc, self.arg1);
        fnv1a_u64(acc, self.arg2)
    }
}

/// The clock trace timestamps are read from — wall microseconds in
/// production, a logical counter under deterministic replay (the
/// [`crate::RetryClock`] seam pattern, applied to tracing).
#[derive(Debug)]
pub enum TraceClock {
    /// Microseconds since the recorder started.
    Wall(Instant),
    /// A process-wide logical tick: every reading is distinct and the
    /// sequence is deterministic whenever event order is.
    Logical(AtomicU64),
}

impl TraceClock {
    fn now(&self) -> u64 {
        match self {
            TraceClock::Wall(started) => {
                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
            }
            TraceClock::Logical(ticks) => ticks.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// Tuning for the flight recorder (see [`crate::ServiceBuilder::tracing`]).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Events each ring holds before overwriting the oldest (rounded up
    /// to a power of two; default 4096).
    pub ring_capacity: usize,
    /// Full traces retained for errored/shed/panicked/killed requests
    /// before the store drops its oldest (default 256).
    pub error_exemplars: usize,
    /// Rolling count of slowest completed requests kept in full
    /// (default 8).
    pub slowest: usize,
    /// Use the logical clock instead of wall time — replay mode, where
    /// the trace stream must be byte-deterministic (default `false`).
    pub logical_clock: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
            error_exemplars: 256,
            slowest: 8,
            logical_clock: false,
        }
    }
}

/// One seqlock slot: a commit stamp plus the payload words.
struct Slot {
    /// `2·pos + 1` while the writer of ring position `pos` is inside,
    /// `2·pos + 2` once committed; readers accept only the committed
    /// stamp of the position they expect.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// A bounded multi-producer event ring, oldest overwritten. Writers are
/// lock-free and allocation-free; readers (snapshot only) revalidate the
/// per-slot stamp and skip anything torn or overwritten mid-read.
pub struct EventRing {
    head: AtomicU64,
    mask: u64,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// A ring of `capacity` slots (rounded up to a power of two, min 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        EventRing {
            head: AtomicU64::new(0),
            mask: capacity as u64 - 1,
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    /// Records one event: claim (`fetch_add`), six payload stores, commit
    /// stamp. No lock, no allocation, no wait.
    ///
    /// Per-slot seqlock: the odd stamp (`2·pos + 1`, Release) opens the
    /// write, then the payload words, then the even stamp (`2·pos + 2`,
    /// Release) commits. The payload words are *Release* stores paired
    /// with the reader's Acquire loads — not the folklore Relaxed: a
    /// relaxed payload load may be satisfied by a **later** write session
    /// while the stamp recheck still observes the old committed stamp
    /// (nothing orders a relaxed data load before a subsequent load of a
    /// different location), which is the classic seqlock torn-read
    /// window. With the Release/Acquire pair, a reader that sees any
    /// word of session `k` has synchronized with it, and therefore must
    /// also see session `k`'s odd stamp at the recheck — the slot is
    /// rejected instead of returned torn. On x86-64 both compile to the
    /// same plain `mov` as Relaxed. The no-torn-read property is
    /// model-checked in `tests/model_trace.rs`, which found the original
    /// relaxed-payload window.
    #[moqo::hot_path]
    pub fn record(&self, event: &TraceEvent) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let slot = &self.slots[(pos & self.mask) as usize];
        slot.seq
            .store(pos.wrapping_mul(2).wrapping_add(1), Ordering::Release);
        for (word, value) in slot.words.iter().zip(event.encode()) {
            word.store(value, Ordering::Release);
        }
        slot.seq
            .store(pos.wrapping_mul(2).wrapping_add(2), Self::commit_ordering());
    }

    /// Ordering for the seqlock commit stamp: `Release`, unless the model
    /// suite injects the seeded weakening bug.
    #[inline(always)]
    fn commit_ordering() -> Ordering {
        #[cfg(moqo_model)]
        if model_hooks::WEAKEN_COMMIT.load(moqo_sync::raw::Ordering::Relaxed) {
            return Ordering::Relaxed;
        }
        Ordering::Release
    }

    /// Events recorded over this ring's lifetime.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The still-resident suffix of the stream in ring order, plus how
    /// many older events were overwritten.
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.mask + 1;
        let start = head.saturating_sub(capacity);
        let mut events = Vec::with_capacity((head - start) as usize);
        for pos in start..head {
            #[allow(clippy::cast_possible_truncation)]
            let slot = &self.slots[(pos & self.mask) as usize];
            let committed = pos.wrapping_mul(2).wrapping_add(2);
            if slot.seq.load(Ordering::Acquire) != committed {
                continue; // mid-write or already overwritten
            }
            let mut words = [0u64; WORDS];
            for (out, word) in words.iter_mut().zip(slot.words.iter()) {
                // Acquire pairs with the writer's Release word stores: a
                // read that observes a later session's word synchronizes
                // with it and so cannot revalidate against the stale
                // stamp below (see `record` for the full argument).
                *out = word.load(Ordering::Acquire);
            }
            if slot.seq.load(Ordering::Acquire) != committed {
                continue; // overwritten while reading
            }
            if let Some(event) = TraceEvent::decode(&words) {
                events.push(event);
            }
        }
        (events, start)
    }
}

/// Why a full trace was retained as an exemplar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExemplarClass {
    /// Admission control rejected the request.
    Rejected,
    /// The brownout valve shed the submission.
    Shed,
    /// The submission bounced off a full queue.
    QueueFull,
    /// The deadline expired mid-request.
    DeadlineExceeded,
    /// A worker panic was caught while processing the request.
    Panicked,
    /// The request was answered, then a fault killed its worker.
    WorkerKilled,
    /// Any other error (shutdown drain, lost worker).
    Failed,
    /// Completed fine, but among the slowest-k by latency.
    Slow,
}

impl ExemplarClass {
    /// The retention class of a terminal [`ServiceError`].
    #[must_use]
    pub fn of_error(error: &ServiceError) -> Self {
        match error {
            ServiceError::QueueFull => ExemplarClass::QueueFull,
            ServiceError::Rejected(_) => ExemplarClass::Rejected,
            ServiceError::DeadlineExceeded => ExemplarClass::DeadlineExceeded,
            ServiceError::Shed => ExemplarClass::Shed,
            ServiceError::Internal { .. } => ExemplarClass::Panicked,
            ServiceError::ShuttingDown | ServiceError::WorkerLost => ExemplarClass::Failed,
        }
    }

    /// Stable lower-snake name for export surfaces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExemplarClass::Rejected => "rejected",
            ExemplarClass::Shed => "shed",
            ExemplarClass::QueueFull => "queue_full",
            ExemplarClass::DeadlineExceeded => "deadline_exceeded",
            ExemplarClass::Panicked => "panicked",
            ExemplarClass::WorkerKilled => "worker_killed",
            ExemplarClass::Failed => "failed",
            ExemplarClass::Slow => "slow",
        }
    }

    /// Whether this class is retained unconditionally (versus competing
    /// for a slowest-k slot).
    #[must_use]
    pub fn is_error(self) -> bool {
        !matches!(self, ExemplarClass::Slow)
    }
}

/// A fully retained trace: every event of one request, in order.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The request's trace id (submission ordinal).
    pub trace_id: u64,
    /// Why it was kept.
    pub class: ExemplarClass,
    /// End-to-end latency in µs at retention time.
    pub latency_us: u64,
    /// The span's events in per-trace order.
    pub events: Vec<TraceEvent>,
    /// Whether the span collector overflowed (events beyond its fixed
    /// capacity were recorded to the rings only).
    pub truncated: bool,
}

impl Exemplar {
    /// Deterministic digest: FNV-1a over the class and the ordered event
    /// digests. Timing-valued fields are already excluded per event.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut acc = fnv1a_u64(FNV_OFFSET, self.trace_id);
        acc = fnv1a_u64(acc, u64::from(self.class as u8));
        for event in &self.events {
            acc = fnv1a_u64(acc, event.digest());
        }
        acc
    }
}

/// Events one span collector holds inline before flagging overflow
/// (events keep flowing to the rings regardless).
const SPAN_CAPACITY: usize = 48;

/// The per-request event buffer riding inside the job: one allocation at
/// submission, then plain pushes — ring overwrite can never lose a span's
/// events, which is what makes tail-based retention exact.
#[derive(Debug)]
pub(crate) struct SpanCollector {
    events: Vec<TraceEvent>,
    overflowed: bool,
}

impl SpanCollector {
    fn new() -> Self {
        SpanCollector {
            events: Vec::with_capacity(SPAN_CAPACITY),
            overflowed: false,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < SPAN_CAPACITY {
            self.events.push(event);
        } else {
            self.overflowed = true;
        }
    }

    fn next_seq(&self) -> u16 {
        u16::try_from(self.events.len()).unwrap_or(u16::MAX)
    }
}

/// Aggregate recorder statistics (cheap relaxed loads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events ever recorded across all rings.
    pub events_total: u64,
    /// Ring events overwritten before any snapshot saw them.
    pub dropped_events: u64,
    /// Error-class exemplars currently retained.
    pub error_exemplars: usize,
    /// Error-class exemplars evicted from the bounded store (oldest
    /// first) after it filled.
    pub error_exemplars_dropped: u64,
}

/// The service-wide flight recorder: one [`EventRing`] per worker shard
/// plus one for the submit path and the supervisor, the exemplar stores,
/// and the clock.
pub(crate) struct FlightRecorder {
    clock: TraceClock,
    /// `rings[shard]` for workers; the last ring takes submit-path and
    /// supervisor events.
    rings: Vec<EventRing>,
    error_capacity: usize,
    errors: Mutex<VecDeque<Exemplar>>,
    errors_dropped: AtomicU64,
    slowest_k: usize,
    /// Ascending by latency; index 0 is the bar to clear.
    slowest: Mutex<Vec<Exemplar>>,
    /// Fast-path filter: completions at or below this latency (µs) skip
    /// the slowest-k lock entirely.
    slow_floor_us: AtomicU64,
}

impl FlightRecorder {
    pub(crate) fn new(config: &TraceConfig, workers: usize) -> Self {
        FlightRecorder {
            clock: if config.logical_clock {
                TraceClock::Logical(AtomicU64::new(0))
            } else {
                TraceClock::Wall(Instant::now())
            },
            rings: (0..=workers)
                .map(|_| EventRing::new(config.ring_capacity))
                .collect(),
            error_capacity: config.error_exemplars.max(1),
            errors: Mutex::new(VecDeque::new()),
            errors_dropped: AtomicU64::new(0),
            slowest_k: config.slowest,
            slowest: Mutex::new(Vec::new()),
            slow_floor_us: AtomicU64::new(0),
        }
    }

    /// The submit-path / supervisor ring index.
    pub(crate) fn system_ring(&self) -> usize {
        self.rings.len() - 1
    }

    /// Records a system-scoped event (supervisor findings).
    pub(crate) fn record_system(&self, kind: EventKind, arg0: u64) {
        let event = TraceEvent {
            trace_id: SYSTEM_TRACE_ID,
            ts: self.clock.now(),
            kind,
            seq: 0,
            arg0,
            arg1: 0,
            arg2: 0,
        };
        self.rings[self.system_ring()].record(&event);
    }

    fn retain(&self, exemplar: Exemplar) {
        if exemplar.class.is_error() {
            let mut errors = self.errors.lock().expect("exemplar lock poisoned");
            if errors.len() >= self.error_capacity {
                errors.pop_front();
                self.errors_dropped.fetch_add(1, Ordering::Relaxed);
            }
            errors.push_back(exemplar);
            return;
        }
        if self.slowest_k == 0 {
            return;
        }
        // Relaxed floor probe: the common fast completion never locks.
        if exemplar.latency_us <= self.slow_floor_us.load(Ordering::Relaxed) {
            let slowest = self.slowest.lock().expect("slowest lock poisoned");
            if slowest.len() >= self.slowest_k {
                return;
            }
            drop(slowest);
        }
        let mut slowest = self.slowest.lock().expect("slowest lock poisoned");
        let at = slowest.partition_point(|e: &Exemplar| e.latency_us <= exemplar.latency_us);
        slowest.insert(at, exemplar);
        if slowest.len() > self.slowest_k {
            slowest.remove(0);
        }
        if slowest.len() == self.slowest_k {
            self.slow_floor_us
                .store(slowest[0].latency_us, Ordering::Relaxed);
        }
    }

    pub(crate) fn stats(&self) -> TraceStats {
        TraceStats {
            events_total: self.rings.iter().map(EventRing::recorded).sum(),
            dropped_events: self.rings.iter().map(|r| r.snapshot_dropped_only()).sum(),
            error_exemplars: self.errors.lock().expect("exemplar lock poisoned").len(),
            error_exemplars_dropped: self.errors_dropped.load(Ordering::Relaxed),
        }
    }

    /// Ring-ordered resident events, total drop count, and clones of both
    /// exemplar stores — the raw material of a
    /// [`TraceSnapshot`](crate::TraceSnapshot).
    pub(crate) fn collect(&self) -> (Vec<TraceEvent>, u64, Vec<Exemplar>, u64, Vec<Exemplar>, u64) {
        let mut events = Vec::new();
        let mut dropped = 0;
        for ring in &self.rings {
            let (mut resident, ring_dropped) = ring.snapshot();
            events.append(&mut resident);
            dropped += ring_dropped;
        }
        let errors: Vec<Exemplar> = self
            .errors
            .lock()
            .expect("exemplar lock poisoned")
            .iter()
            .cloned()
            .collect();
        let mut slowest: Vec<Exemplar> =
            self.slowest.lock().expect("slowest lock poisoned").clone();
        slowest.reverse(); // slowest first
        let events_total = self.rings.iter().map(EventRing::recorded).sum();
        (
            events,
            dropped,
            errors,
            self.errors_dropped.load(Ordering::Relaxed),
            slowest,
            events_total,
        )
    }
}

impl EventRing {
    fn snapshot_dropped_only(&self) -> u64 {
        let head = self.head.load(Ordering::Relaxed);
        head.saturating_sub(self.mask + 1)
    }
}

/// The per-request tracing handle threaded through submit, the worker
/// loop and `process`. When tracing is disabled every method is a no-op
/// over two `None`s — the untraced hot path stays byte-identical.
pub(crate) struct RequestTrace<'a> {
    recorder: Option<&'a FlightRecorder>,
    ring: usize,
    trace_id: u64,
    span: Option<SpanCollector>,
}

impl<'a> RequestTrace<'a> {
    /// A fresh trace at submission time; `recorder == None` disables it.
    pub(crate) fn started(recorder: Option<&'a FlightRecorder>, trace_id: u64) -> Self {
        RequestTrace {
            ring: recorder.map_or(0, FlightRecorder::system_ring),
            span: recorder.is_some().then(SpanCollector::new),
            recorder,
            trace_id,
        }
    }

    /// Re-attaches to the span a job carried across the queue, switching
    /// event output to the worker's ring.
    pub(crate) fn resumed(
        recorder: Option<&'a FlightRecorder>,
        ring: usize,
        trace_id: u64,
        span: Option<SpanCollector>,
    ) -> Self {
        RequestTrace {
            recorder,
            ring,
            trace_id,
            span: if recorder.is_some() { span } else { None },
        }
    }

    /// Records one event to the worker ring and the span.
    pub(crate) fn event(&mut self, kind: EventKind, arg0: u64, arg1: u64, arg2: u64) {
        let (Some(recorder), Some(span)) = (self.recorder, self.span.as_mut()) else {
            return;
        };
        let event = TraceEvent {
            trace_id: self.trace_id,
            ts: recorder.clock.now(),
            kind,
            seq: span.next_seq(),
            arg0,
            arg1,
            arg2,
        };
        recorder.rings[self.ring.min(recorder.rings.len() - 1)].record(&event);
        span.push(event);
    }

    /// Detaches the span for the trip through the queue.
    pub(crate) fn into_span(self) -> Option<SpanCollector> {
        self.span
    }

    /// Terminal retention: error-class spans (including answered-then-
    /// killed ones) always become exemplars; completions compete for
    /// slowest-k.
    pub(crate) fn finish(self, result: Result<(), &ServiceError>, latency_us: u64) {
        let (Some(recorder), Some(span)) = (self.recorder, self.span) else {
            return;
        };
        let class = match result {
            Err(error) => ExemplarClass::of_error(error),
            Ok(()) => {
                if span
                    .events
                    .iter()
                    .any(|e| e.kind == EventKind::WorkerKilled)
                {
                    ExemplarClass::WorkerKilled
                } else {
                    ExemplarClass::Slow
                }
            }
        };
        recorder.retain(Exemplar {
            trace_id: self.trace_id,
            class,
            latency_us,
            events: span.events,
            truncated: span.overflowed,
        });
    }
}

/// Ordered stream checksum: FNV-1a fold of event digests in the given
/// order. Deterministic only when the event order is (single-worker
/// replay); for concurrent runs use [`commutative_checksum`].
#[must_use]
pub fn stream_checksum<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> u64 {
    let mut acc = FNV_OFFSET;
    for event in events {
        acc = fnv1a_u64(acc, event.digest());
    }
    acc
}

/// Interleaving-independent checksum over exemplars: each exemplar hashes
/// its own events in per-trace order, and the per-exemplar digests fold
/// commutatively (`wrapping_add`) — two runs retaining the same set of
/// traces in any order produce the same value.
#[must_use]
pub fn commutative_checksum<'a>(exemplars: impl IntoIterator<Item = &'a Exemplar>) -> u64 {
    exemplars
        .into_iter()
        .fold(0u64, |acc, e| acc.wrapping_add(e.digest()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(trace_id: u64, kind: EventKind, seq: u16, arg0: u64) -> TraceEvent {
        TraceEvent {
            trace_id,
            ts: 7,
            kind,
            seq,
            arg0,
            arg1: 1,
            arg2: 2,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = event(42, EventKind::BlockOptimized, 3, 9);
        assert_eq!(TraceEvent::decode(&e.encode()), Some(e));
        let mut torn = e.encode();
        torn[2] = 0xFF; // no such kind
        assert_eq!(TraceEvent::decode(&torn), None);
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_drops() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.record(&event(i, EventKind::Submitted, 0, 0));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 6, "10 writes into 4 slots drop the oldest 6");
        assert_eq!(
            events.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn digest_ignores_timing_args_but_not_deterministic_ones() {
        let popped_a = event(1, EventKind::Popped, 2, 500);
        let popped_b = TraceEvent {
            arg0: 99_999,
            ..popped_a
        };
        assert_eq!(popped_a.digest(), popped_b.digest(), "queue wait masked");
        let ts_shift = TraceEvent {
            ts: 12345,
            ..popped_a
        };
        assert_eq!(popped_a.digest(), ts_shift.digest(), "timestamps masked");
        let probe_a = event(1, EventKind::CacheProbe, 2, 0);
        let probe_b = TraceEvent { arg0: 1, ..probe_a };
        assert_ne!(probe_a.digest(), probe_b.digest(), "outcomes are hashed");
    }

    #[test]
    fn commutative_checksum_is_order_independent() {
        let a = Exemplar {
            trace_id: 1,
            class: ExemplarClass::Panicked,
            latency_us: 10,
            events: vec![event(1, EventKind::Submitted, 0, 0)],
            truncated: false,
        };
        let b = Exemplar {
            trace_id: 2,
            class: ExemplarClass::Shed,
            latency_us: 0,
            events: vec![event(2, EventKind::Shed, 1, 0)],
            truncated: false,
        };
        assert_eq!(
            commutative_checksum([&a, &b]),
            commutative_checksum([&b, &a])
        );
        assert_ne!(commutative_checksum([&a]), commutative_checksum([&b]));
    }

    #[test]
    fn error_exemplars_survive_ring_overwrite_and_cap_drop_oldest() {
        let recorder = FlightRecorder::new(
            &TraceConfig {
                ring_capacity: 2, // tiny: every trace's ring events are lost
                error_exemplars: 3,
                slowest: 2,
                logical_clock: true,
            },
            1,
        );
        for id in 0..5u64 {
            let mut rt = RequestTrace::started(Some(&recorder), id);
            rt.event(EventKind::Submitted, 1, 0, 0);
            rt.event(EventKind::PanicCaught, 4, 0, 0);
            rt.finish(
                Err(&ServiceError::Internal {
                    payload: "boom".into(),
                    payload_truncated: false,
                }),
                0,
            );
        }
        let stats = recorder.stats();
        assert_eq!(stats.error_exemplars, 3, "store capped at 3");
        assert_eq!(stats.error_exemplars_dropped, 2, "oldest two dropped");
        assert!(stats.dropped_events > 0, "the ring really did overwrite");
        let (_, _, errors, _, _, _) = recorder.collect();
        // The newest traces survive in full despite total ring loss.
        assert_eq!(
            errors.iter().map(|e| e.trace_id).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(errors.iter().all(|e| e.events.len() == 2));
    }

    #[test]
    fn slowest_k_keeps_the_k_largest_latencies() {
        let recorder = FlightRecorder::new(
            &TraceConfig {
                slowest: 2,
                logical_clock: true,
                ..TraceConfig::default()
            },
            1,
        );
        for (id, latency) in [(0u64, 50u64), (1, 500), (2, 5), (3, 300)] {
            let mut rt = RequestTrace::started(Some(&recorder), id);
            rt.event(EventKind::Submitted, 1, 0, 0);
            rt.finish(Ok(()), latency);
        }
        let (_, _, _, _, slowest, _) = recorder.collect();
        let ids: Vec<u64> = slowest.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![1, 3], "500µs and 300µs win, slowest first");
        assert!(slowest.iter().all(|e| e.class == ExemplarClass::Slow));
    }

    #[test]
    fn disabled_trace_is_a_noop() {
        let mut rt = RequestTrace::started(None, 7);
        rt.event(EventKind::Submitted, 1, 0, 0);
        assert!(rt.into_span().is_none());
    }

    #[test]
    fn logical_clock_ticks_and_wall_clock_moves() {
        let logical = TraceClock::Logical(AtomicU64::new(0));
        assert_eq!(logical.now(), 0);
        assert_eq!(logical.now(), 1);
        let wall = TraceClock::Wall(Instant::now());
        let a = wall.now();
        let b = wall.now();
        assert!(b >= a);
    }
}
