//! Client-side retry with decorrelated-jitter backoff.
//!
//! [`ServiceError::QueueFull`] and [`ServiceError::Shed`] are *transient*:
//! they mean "the service is protecting itself right now", not "this
//! request can never be served". [`retry_with`] (and the service's
//! `submit_with_retry` convenience) retries exactly those two variants
//! under a hard total-time budget, sleeping the decorrelated-jitter
//! schedule from the AWS architecture blog: each delay is drawn uniformly
//! from `[base, 3 · previous]` and capped — successive clients
//! de-synchronize instead of stampeding the queue in lockstep the way
//! fixed exponential backoff does.
//!
//! Determinism seam: the sleep/elapsed side effects live behind
//! [`RetryClock`] and the jitter draws come from a seeded SplitMix64, so
//! unit tests replay the exact schedule with a fake clock — no wall-clock
//! flakiness, no thread sleeps.

use std::time::{Duration, Instant};

use crate::request::ServiceError;

/// Tuning for one retry loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Smallest (and first) backoff delay.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Hard budget over the whole loop — attempts plus sleeps; once an
    /// upcoming sleep would cross it, the last error is returned instead.
    pub budget: Duration,
    /// Jitter RNG seed: the same seed replays the same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_micros(500),
            cap: Duration::from_millis(50),
            budget: Duration::from_millis(500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// The clock a retry loop runs against; production uses [`SystemClock`],
/// tests substitute a fake that records sleeps and advances virtually.
pub trait RetryClock {
    /// Time elapsed since the loop started.
    fn elapsed(&self) -> Duration;
    /// Blocks (or pretends to) for `delay`.
    fn sleep(&mut self, delay: Duration);
}

/// Wall-clock [`RetryClock`] backed by `Instant` and `thread::sleep`.
#[derive(Debug)]
pub struct SystemClock {
    started: Instant,
}

impl SystemClock {
    /// A clock starting now.
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            started: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl RetryClock for SystemClock {
    fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    fn sleep(&mut self, delay: Duration) {
        std::thread::sleep(delay);
    }
}

/// SplitMix64: tiny, seedable, and plenty for jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw from `[lo, hi]` in whole microseconds (`lo` when the range
/// collapses).
fn uniform_micros(rng: &mut u64, lo: Duration, hi: Duration) -> Duration {
    let lo_us = lo.as_micros().min(u128::from(u64::MAX)) as u64;
    let hi_us = hi.as_micros().min(u128::from(u64::MAX)) as u64;
    if hi_us <= lo_us {
        return Duration::from_micros(lo_us);
    }
    let span = hi_us - lo_us + 1;
    Duration::from_micros(lo_us + splitmix64(rng) % span)
}

/// Whether a retry loop should try `error` again.
#[must_use]
pub fn is_retryable(error: &ServiceError) -> bool {
    matches!(error, ServiceError::QueueFull | ServiceError::Shed)
}

/// Runs `attempt` until it succeeds, fails non-retryably, or the policy's
/// budget is exhausted; sleeps the decorrelated-jitter schedule between
/// attempts on `clock`.
///
/// # Errors
///
/// The first non-retryable [`ServiceError`], or the last retryable one
/// once the next sleep would cross the budget.
pub fn retry_with<T>(
    policy: &RetryPolicy,
    clock: &mut impl RetryClock,
    mut attempt: impl FnMut() -> Result<T, ServiceError>,
) -> Result<T, ServiceError> {
    let mut rng = policy.seed;
    let mut previous = policy.base;
    loop {
        let error = match attempt() {
            Ok(value) => return Ok(value),
            Err(error) if is_retryable(&error) => error,
            Err(error) => return Err(error),
        };
        // Decorrelated jitter: uniform over [base, 3 · previous], capped.
        let delay = uniform_micros(&mut rng, policy.base, previous * 3).min(policy.cap);
        if clock.elapsed() + delay > policy.budget {
            return Err(error);
        }
        clock.sleep(delay);
        previous = delay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Virtual clock: sleeps advance it instantly and are recorded.
    struct FakeClock {
        now: Duration,
        sleeps: Vec<Duration>,
    }

    impl FakeClock {
        fn new() -> Self {
            FakeClock {
                now: Duration::ZERO,
                sleeps: Vec::new(),
            }
        }
    }

    impl RetryClock for FakeClock {
        fn elapsed(&self) -> Duration {
            self.now
        }

        fn sleep(&mut self, delay: Duration) {
            self.now += delay;
            self.sleeps.push(delay);
        }
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            budget: Duration::from_millis(100),
            seed: 42,
        }
    }

    #[test]
    fn succeeds_after_transient_errors_with_jittered_sleeps() {
        let mut clock = FakeClock::new();
        let mut attempts = 0;
        let result = retry_with(&policy(), &mut clock, || {
            attempts += 1;
            if attempts <= 3 {
                Err(if attempts == 2 {
                    ServiceError::Shed
                } else {
                    ServiceError::QueueFull
                })
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(result, Ok(4));
        assert_eq!(clock.sleeps.len(), 3);
        for (i, sleep) in clock.sleeps.iter().enumerate() {
            assert!(*sleep >= Duration::from_millis(1), "sleep {i} below base");
            assert!(*sleep <= Duration::from_millis(20), "sleep {i} above cap");
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut clock = FakeClock::new();
            let p = RetryPolicy { seed, ..policy() };
            let _ = retry_with(&p, &mut clock, || -> Result<(), ServiceError> {
                Err(ServiceError::QueueFull)
            });
            clock.sleeps
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different jitter");
    }

    #[test]
    fn budget_caps_the_loop_and_returns_the_last_error() {
        let mut clock = FakeClock::new();
        let mut attempts = 0u32;
        let result = retry_with(&policy(), &mut clock, || -> Result<(), ServiceError> {
            attempts += 1;
            Err(ServiceError::Shed)
        });
        assert_eq!(result, Err(ServiceError::Shed));
        assert!(attempts > 1, "must have retried");
        assert!(
            clock.now <= Duration::from_millis(100),
            "sleeps never cross the budget"
        );
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let mut clock = FakeClock::new();
        let mut attempts = 0u32;
        let result = retry_with(&policy(), &mut clock, || -> Result<(), ServiceError> {
            attempts += 1;
            Err(ServiceError::Rejected("nope".into()))
        });
        assert_eq!(result, Err(ServiceError::Rejected("nope".into())));
        assert_eq!(attempts, 1);
        assert!(clock.sleeps.is_empty());
    }

    #[test]
    fn retryability_matches_the_taxonomy() {
        assert!(is_retryable(&ServiceError::QueueFull));
        assert!(is_retryable(&ServiceError::Shed));
        assert!(!is_retryable(&ServiceError::ShuttingDown));
        assert!(!is_retryable(&ServiceError::DeadlineExceeded));
        assert!(!is_retryable(&ServiceError::WorkerLost));
        assert!(!is_retryable(&ServiceError::internal("boom".into())));
    }
}
