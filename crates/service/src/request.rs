//! The service's request/response vocabulary.

use std::time::Duration;

use moqo_catalog::Query;
use moqo_core::{combine_block_costs, Algorithm, BlockReport, PlanEntry, PruneMode};
use moqo_cost::{CostVector, Preference};
use moqo_plan::{PlanArena, PlanId};

/// One optimization request: what to optimize, how precisely, and by when.
#[derive(Debug, Clone)]
pub struct OptimizationRequest {
    /// The query to optimize (one or more blocks).
    pub query: Query,
    /// Objectives, weights and bounds.
    pub preference: Preference,
    /// Tolerated approximation factor `α′ ≥ 1`: the caller accepts any plan
    /// whose guarantee is at least this tight. `1.0` demands exactness.
    pub alpha: f64,
    /// Wall-clock budget measured from submission (queue wait counts
    /// against it); `None` waits as long as optimization takes.
    pub deadline: Option<Duration>,
    /// Optional algorithm override; bypasses the policy's preference order
    /// but not its admission check.
    pub hint: Option<Algorithm>,
}

impl OptimizationRequest {
    /// A request with precision `alpha`, no deadline, no hint.
    #[must_use]
    pub fn new(query: Query, preference: Preference, alpha: f64) -> Self {
        OptimizationRequest {
            query,
            preference,
            alpha,
            deadline: None,
            hint: None,
        }
    }

    /// Sets a deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Forces an algorithm (builder style).
    #[must_use]
    pub fn with_hint(mut self, hint: Algorithm) -> Self {
        self.hint = Some(hint);
        self
    }

    /// Whether any selected objective carries a finite bound — the
    /// bounded-weighted case where cache serving needs the stronger
    /// certificate (see [`AlphaCertificate`]).
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.preference.is_bounded()
    }
}

/// Proof that a cached front may serve a request: the front was computed
/// with guarantee `cached_alpha` and the request tolerates
/// `requested_alpha ≥ cached_alpha`.
///
/// For *bounded* requests an `α`-approximate Pareto set does not guarantee
/// an `α`-approximate plan (the paper's Figure 8 pathology: near-identical
/// cost vectors can differ in feasibility), so the certificate additionally
/// requires `cached_alpha == 1` — an exact front always contains the true
/// bounded-weighted optimum. Approximate fronts still serve bounded
/// requests indirectly, as RMQ warm starts.
///
/// The certificate additionally records the [`PruneMode`] the front was
/// certified under and the mode the request requires: an α guarantee is
/// only meaningful relative to its pruning mode (a cost-only front
/// computed while sampling leaks cardinality past the cost vector covers
/// less than its α claims, and a props-aware front is not the cost
/// antichain a cost-only consumer expects), so mode-mismatched fronts are
/// never served in either direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaCertificate {
    /// Guarantee the cached front was computed with (`1.0` = exact,
    /// `+∞` = RMQ, no guarantee).
    pub cached_alpha: f64,
    /// Precision the request tolerates.
    pub requested_alpha: f64,
    /// Whether the request bounds any selected objective.
    pub bounded: bool,
    /// Pruning mode the cached front was certified under.
    pub cached_mode: PruneMode,
    /// Pruning mode a fresh optimization of this request would run under
    /// ([`PruneMode::auto`] over the service's cost-model parameters and
    /// the request's objectives).
    pub required_mode: PruneMode,
}

impl AlphaCertificate {
    /// Whether this certificate licenses a direct cache hit.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.cached_mode == self.required_mode
            && self.cached_alpha.is_finite()
            && self.cached_alpha <= self.requested_alpha
            && (!self.bounded || self.cached_alpha <= 1.0)
    }
}

/// How one block of a response was produced.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockSource {
    /// Freshly optimized (cache miss or no cacheable entry).
    Computed {
        /// Algorithm that ran.
        algorithm: Algorithm,
        /// Whether the policy downgraded the preferred algorithm to meet
        /// the deadline or size limits.
        downgraded: bool,
    },
    /// Served directly from the plan cache under a valid certificate.
    CacheHit {
        /// The coverage certificate (always valid when this variant is
        /// returned).
        certificate: AlphaCertificate,
    },
    /// Recomputed, but seeded from a cached front (RMQ warm start).
    WarmStarted {
        /// Algorithm that ran (always an RMQ variant today).
        algorithm: Algorithm,
        /// Whether the policy downgraded the preferred algorithm.
        downgraded: bool,
        /// Precision of the cached front the walkers started from.
        cached_alpha: f64,
    },
}

/// The served plan for one query block, self-contained and `Send`.
#[derive(Debug)]
pub struct BlockOutcome {
    /// Arena owning every plan in this outcome.
    pub arena: PlanArena,
    /// The selected plan.
    pub root: PlanId,
    /// Cost vector of the selected plan.
    pub cost: CostVector,
    /// The (approximate) Pareto frontier backing the selection.
    pub frontier: Vec<PlanEntry>,
    /// Where the block came from.
    pub source: BlockSource,
    /// Precision guarantee attached to the frontier (`∞` when none).
    pub achieved_alpha: f64,
    /// The optimizer's per-block report (timings, pruning counters, final
    /// α, prune mode). Cache hits carry a synthetic report describing the
    /// cached entry. When the service browned the block out under load
    /// pressure, `report.degraded_by_pressure` is stamped `true` — the
    /// α-accounting stays honest about why the guarantee is weaker than
    /// the request preferred.
    pub report: BlockReport,
}

/// A completed optimization, with latency accounting.
#[derive(Debug)]
pub struct OptimizationResponse {
    /// Per-block outcomes in query block order.
    pub blocks: Vec<BlockOutcome>,
    /// Combined cost over all blocks ([`combine_block_costs`] rules).
    pub total_cost: CostVector,
    /// Weighted cost of the combined vector under the request preference.
    pub weighted_cost: f64,
    /// Whether the combined cost respects the request's bounds.
    pub respects_bounds: bool,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Worker processing time (cache probes + optimization).
    pub service_time: Duration,
}

impl OptimizationResponse {
    /// Assembles a response from block outcomes plus timing.
    #[must_use]
    pub fn from_blocks(
        blocks: Vec<BlockOutcome>,
        preference: &Preference,
        queue_wait: Duration,
        service_time: Duration,
    ) -> Self {
        let costs: Vec<CostVector> = blocks.iter().map(|b| b.cost).collect();
        let total_cost = combine_block_costs(&costs);
        OptimizationResponse {
            weighted_cost: preference.weighted_cost(&total_cost),
            respects_bounds: preference.respects_bounds(&total_cost),
            blocks,
            total_cost,
            queue_wait,
            service_time,
        }
    }

    /// Total latency from submission to completion.
    #[must_use]
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.service_time
    }

    /// Whether every block was a direct cache hit.
    #[must_use]
    pub fn fully_cached(&self) -> bool {
        self.blocks
            .iter()
            .all(|b| matches!(b.source, BlockSource::CacheHit { .. }))
    }
}

/// Why a request produced no plan. Each variant lands in its own metrics
/// counter (see [`crate::MetricsSnapshot`]): `Rejected` →
/// `rejected`, `DeadlineExceeded` → `timed_out`, `Shed` → `shed`,
/// everything else → `failed` — the seed folded all of these into one
/// overloaded "rejected" number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded work queue was at capacity (back-pressure).
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
    /// Admission control rejected the request (budget too small for every
    /// admitted algorithm, block too large, …) — either at submission
    /// (the fast path, before the request occupies a queue slot) or when
    /// a worker re-checked the per-block budget.
    Rejected(String),
    /// The request's deadline expired before a block could start — all
    /// budget was consumed by queue wait and/or earlier blocks. Distinct
    /// from `Rejected`: admission never got a say, the clock did.
    DeadlineExceeded,
    /// The brownout admission controller shed this submission: measured
    /// queue-wait pressure stood above the shedding watermark, so the
    /// request was turned away *before* occupying a queue slot it would
    /// only have timed out in. Distinct from both `Rejected` (a per-request
    /// deadline verdict) and `QueueFull` (hard capacity): shedding is the
    /// service's own overload valve, and it is retryable — see
    /// `submit_with_retry`.
    Shed,
    /// The worker processing the request panicked; the panic was caught at
    /// the job boundary, the worker survived, and the payload is delivered
    /// here instead of killing the thread (and, transitively, the pool).
    Internal {
        /// The panic payload, rendered to a string and capped at
        /// [`ServiceError::MAX_INTERNAL_PAYLOAD`] bytes — a pathological
        /// panic message cannot bloat responders or trace events.
        payload: String,
        /// Whether `payload` was truncated to fit the byte budget.
        payload_truncated: bool,
    },
    /// The worker processing the request disappeared (service dropped
    /// while the ticket was outstanding).
    WorkerLost,
}

impl ServiceError {
    /// Byte budget for [`ServiceError::Internal`] panic payloads.
    pub const MAX_INTERNAL_PAYLOAD: usize = 512;

    /// Builds an [`ServiceError::Internal`] from a caught panic payload,
    /// truncating it to [`ServiceError::MAX_INTERNAL_PAYLOAD`] bytes (on
    /// a character boundary) and flagging the cut.
    #[must_use]
    pub fn internal(mut payload: String) -> Self {
        let payload_truncated = payload.len() > Self::MAX_INTERNAL_PAYLOAD;
        if payload_truncated {
            let mut cut = Self::MAX_INTERNAL_PAYLOAD;
            while !payload.is_char_boundary(cut) {
                cut -= 1;
            }
            payload.truncate(cut);
        }
        ServiceError::Internal {
            payload,
            payload_truncated,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "work queue is full"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Rejected(reason) => write!(f, "request rejected: {reason}"),
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline expired before optimization could start")
            }
            ServiceError::Shed => {
                write!(
                    f,
                    "request shed: queue-wait pressure above the brownout watermark"
                )
            }
            ServiceError::Internal {
                payload,
                payload_truncated,
            } => {
                let marker = if *payload_truncated { "…" } else { "" };
                write!(f, "internal error: worker panicked: {payload}{marker}")
            }
            ServiceError::WorkerLost => write!(f, "worker terminated before responding"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_payloads_are_capped_at_the_byte_budget() {
        let short = ServiceError::internal("boom".into());
        assert_eq!(
            short,
            ServiceError::Internal {
                payload: "boom".into(),
                payload_truncated: false,
            }
        );
        assert!(!short.to_string().ends_with('…'));

        let long = ServiceError::internal("x".repeat(100_000));
        let ServiceError::Internal {
            payload,
            payload_truncated,
        } = &long
        else {
            panic!("expected Internal");
        };
        assert_eq!(payload.len(), ServiceError::MAX_INTERNAL_PAYLOAD);
        assert!(payload_truncated);
        assert!(long.to_string().ends_with('…'));

        // The cut lands on a char boundary even for multi-byte payloads.
        let multibyte = ServiceError::internal("é".repeat(400));
        let ServiceError::Internal { payload, .. } = &multibyte else {
            panic!("expected Internal");
        };
        assert!(payload.len() <= ServiceError::MAX_INTERNAL_PAYLOAD);
        assert!(payload.chars().all(|c| c == 'é'));
    }

    #[test]
    fn certificate_rules() {
        let ok = AlphaCertificate {
            cached_alpha: 1.5,
            requested_alpha: 2.0,
            bounded: false,
            cached_mode: PruneMode::CostOnly,
            required_mode: PruneMode::CostOnly,
        };
        assert!(ok.is_valid());
        let too_loose = AlphaCertificate {
            cached_alpha: 2.5,
            ..ok
        };
        assert!(!too_loose.is_valid());
        let rmq = AlphaCertificate {
            cached_alpha: f64::INFINITY,
            requested_alpha: 100.0,
            ..ok
        };
        assert!(!rmq.is_valid(), "no-guarantee fronts never serve directly");
        // Figure 8: approximate fronts cannot serve bounded requests…
        let bounded_approx = AlphaCertificate {
            bounded: true,
            ..ok
        };
        assert!(!bounded_approx.is_valid());
        // …but exact fronts can.
        let bounded_exact = AlphaCertificate {
            cached_alpha: 1.0,
            bounded: true,
            ..ok
        };
        assert!(bounded_exact.is_valid());
    }

    #[test]
    fn certificate_requires_matching_prune_mode() {
        // A tighter-than-requested α is worthless across modes, in either
        // direction — its coverage claim is relative to the mode.
        let base = AlphaCertificate {
            cached_alpha: 1.0,
            requested_alpha: 2.0,
            bounded: false,
            cached_mode: PruneMode::CostOnly,
            required_mode: PruneMode::PropsAware,
        };
        assert!(!base.is_valid());
        let reverse = AlphaCertificate {
            cached_mode: PruneMode::PropsAware,
            required_mode: PruneMode::CostOnly,
            ..base
        };
        assert!(!reverse.is_valid());
        let matching = AlphaCertificate {
            cached_mode: PruneMode::PropsAware,
            required_mode: PruneMode::PropsAware,
            ..base
        };
        assert!(matching.is_valid());
    }
}
