//! A bounded multi-producer/multi-consumer work queue, sharded and
//! lock-free on the submit path.
//!
//! Producers never block and never take a `Mutex`: a push is a lock-free
//! reservation against the global capacity followed by a lock-free ring
//! insert into one shard (Vyukov's bounded MPMC algorithm — each slot
//! carries a sequence number that hands it back and forth between
//! producers and consumers). A full queue rejects the push immediately,
//! which is the admission-control contract of the service (back-pressure
//! must be visible to the caller, not absorbed silently).
//!
//! Consumers pop work-stealing style: each worker drains its own shard
//! first and scans the others only when it runs dry, so under load
//! producers and consumers spread across shards instead of serializing on
//! one lock — the seed's single `Mutex + Condvar` queue made every
//! submission and every pop a critical section.
//!
//! Idle consumers park on a condvar with a short timeout. The *producer*
//! side never touches that mutex: after a push it issues a bare
//! `Condvar::notify_one` only when the sleeper counter is nonzero. The
//! unsynchronized notify admits a narrow lost-wakeup race (a consumer
//! re-checks empty, the producer pushes and notifies before the consumer
//! parks); the bounded `wait_timeout` turns that race into at most one
//! timeout tick of extra latency on an otherwise idle queue instead of a
//! hang — and under load nobody sleeps at all.
//!
//! Every synchronization primitive here comes from the [`moqo_sync`]
//! facade, so `RUSTFLAGS="--cfg moqo_model"` swaps the whole structure
//! onto the model checker: `tests/model_queue.rs` exhaustively explores
//! the push/pop/steal/park interleavings and pins exactly-once delivery,
//! the `Full` item-return contract, close-then-drain completeness and the
//! lost-wakeup backstop. The memory orderings below are the *minimal*
//! ones those model suites prove sufficient.

use std::mem::MaybeUninit;
use std::time::Duration;

use moqo_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use moqo_sync::cell::UnsafeCell;
use moqo_sync::hint::spin_loop;
use moqo_sync::{Arc, Condvar, Mutex};

/// How long an idle consumer parks before re-scanning the shards; bounds
/// the cost of the producer-side lock-free wakeup protocol.
const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// Model-checker steering knobs; compiled only under `--cfg moqo_model`.
/// Seeded-bug injection for the model suite.
///
/// `tests/model_seeded.rs` flips [`WEAKEN_PUBLISH`] to demote the
/// producer's slot-publish store to `Relaxed` and asserts the checker
/// reports the resulting race with a replayable schedule. The knob
/// lives on [`moqo_sync::raw`] so reading it is invisible to the
/// checker itself.
#[cfg(moqo_model)]
pub mod model_hooks {
    use moqo_sync::raw::AtomicBool;

    /// When `true`, [`super::Ring::push`] publishes a filled slot with
    /// `Ordering::Relaxed` instead of `Release` — the canonical
    /// "forgot the release fence" bug.
    pub static WEAKEN_PUBLISH: AtomicBool = AtomicBool::new(false);
}

/// One slot of a Vyukov ring. `seq` is the hand-off protocol: it equals
/// the slot index when the slot is free for the producer of lap `L`, and
/// index + 1 once a value is ready for the consumer of the same lap.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC ring (Vyukov). `size` is a power of two; the
/// ring never rejects a push while its occupancy is below `size`, which
/// the sharded queue guarantees by global capacity reservation.
struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// SAFETY: slots are handed between threads through the `seq` protocol.
// For position `pos` (slot index `pos & mask`), `seq == pos` means the
// slot is free for the producer that claims `pos`; `seq == pos + 1`
// means a value is ready for the consumer that claims `pos`; and
// `seq == pos + mask + 1` re-arms the slot for the producer one lap
// later. A value written under an enqueue reservation is only read by
// the single consumer that wins the matching dequeue CAS, with
// release/acquire ordering on `seq` publishing the write. `T: Send` is
// all that moving values across threads requires. The protocol itself
// (exclusive access between CAS win and `seq` bump, exactly-once
// delivery) is model-checked in `tests/model_queue.rs`.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: see the `Send` impl above; `&Ring` only exposes the slots
// through the seq-gated push/pop protocol, never directly.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn new(size: usize) -> Self {
        debug_assert!(size.is_power_of_two());
        Ring {
            slots: (0..size)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: size - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// Lock-free push; `Err(item)` only when the ring itself is full
    /// (which capacity reservation makes unreachable in this crate).
    #[moqo::hot_path]
    fn push(&self, item: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free for this lap: claim it.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Protocol invariant: winning the enqueue CAS on
                        // `pos` while `seq == pos` grants exclusive write
                        // access; no other producer can claim `pos` again
                        // and no consumer reads until `seq = pos + 1`.
                        debug_assert_eq!(
                            slot.seq.load(Ordering::Relaxed),
                            pos,
                            "enqueue CAS won but the slot is not in the free-for-lap state",
                        );
                        // SAFETY: per the invariant above, this thread has
                        // exclusive access to the slot's value until the
                        // `seq` bump below; writing a fresh `MaybeUninit`
                        // payload needs no drop of the old (consumed or
                        // never-initialized) contents.
                        slot.value.with_mut(|p| unsafe { (*p).write(item) });
                        slot.seq
                            .store(pos.wrapping_add(1), Self::publish_ordering());
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return Err(item);
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Ordering for the producer's slot-publish store: `Release`, unless
    /// the model suite injects the seeded weakening bug.
    #[inline(always)]
    fn publish_ordering() -> Ordering {
        #[cfg(moqo_model)]
        if model_hooks::WEAKEN_PUBLISH.load(moqo_sync::raw::Ordering::Relaxed) {
            return Ordering::Relaxed;
        }
        Ordering::Release
    }

    /// Lock-free pop; `None` when the ring is empty.
    #[moqo::hot_path]
    fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Protocol invariant: winning the dequeue CAS on
                        // `pos` while `seq == pos + 1` grants exclusive
                        // read access to a fully-written value; the
                        // producer's Release store on `seq` (seen by the
                        // Acquire load above) publishes the payload.
                        debug_assert_eq!(
                            slot.seq.load(Ordering::Relaxed),
                            pos.wrapping_add(1),
                            "dequeue CAS won but the slot is not in the value-ready state",
                        );
                        // SAFETY: per the invariant above, the value was
                        // fully initialized by the producer of this lap
                        // and this thread is its only reader; moving it
                        // out leaves the slot logically uninitialized,
                        // which the `seq` re-arm below advertises.
                        let item = slot.value.with_mut(|p| unsafe { (*p).assume_init_read() });
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(item);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Run destructors of anything still queued.
        while self.pop().is_some() {}
    }
}

struct Shared<T> {
    shards: Box<[Ring<T>]>,
    /// Items currently queued (plus in-flight push reservations); the
    /// capacity gate.
    len: AtomicUsize,
    capacity: usize,
    closed: AtomicBool,
    /// Producer round-robin cursor for shard selection.
    next_shard: AtomicUsize,
    /// Consumers currently parked (or about to park); producers only
    /// notify when this is nonzero, so the empty-queue machinery costs
    /// the hot path a single relaxed load.
    sleepers: AtomicUsize,
    park_lock: Mutex<()>,
    wake: Condvar,
}

/// The error returned by [`BoundedQueue::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` items; the caller should reject or retry.
    Full,
    /// The queue was closed; no further work is accepted.
    Closed,
}

/// A bounded MPMC queue, sharded for parallel producers and consumers;
/// cloning shares the underlying channel. The submit path
/// ([`BoundedQueue::try_push`]) is lock-free.
pub struct BoundedQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> BoundedQueue<T> {
    /// A single-shard queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// A queue of `shards` independent rings sharing one `capacity`.
    /// Shard the queue per worker: producers scatter round-robin, and
    /// each consumer drains its own shard before stealing from the rest.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (`shards` is clamped to at least 1).
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue admits nothing");
        let shards = shards.max(1);
        // Each ring is sized to the whole capacity: occupancy of any one
        // shard can never exceed the global reservation count, so a push
        // that holds a reservation always finds ring space — `Full` is
        // decided by the capacity gate alone, exactly like the seed.
        let ring_size = capacity.next_power_of_two();
        Self {
            shared: Arc::new(Shared {
                shards: (0..shards).map(|_| Ring::new(ring_size)).collect(),
                len: AtomicUsize::new(0),
                capacity,
                closed: AtomicBool::new(false),
                next_shard: AtomicUsize::new(0),
                sleepers: AtomicUsize::new(0),
                park_lock: Mutex::new(()),
                wake: Condvar::new(),
            }),
        }
    }

    /// Number of shards (fixed at construction).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Non-blocking, lock-free push; fails on a full or closed queue. A
    /// failed push hands the item back alongside the error — the caller
    /// keeps whatever state rides inside it (e.g. a request's trace span)
    /// instead of losing it to the rejected queue.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the item.
    #[moqo::hot_path]
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let shared = &*self.shared;
        if shared.closed.load(Ordering::Acquire) {
            return Err((PushError::Closed, item));
        }
        // Reserve capacity before touching a ring; back out on overflow.
        // Relaxed suffices on both RMWs: `len` is a pure occupancy gate —
        // no payload is published through it (the value handoff
        // synchronizes on `Slot::seq`), and atomic RMWs observe a single
        // total modification order per location regardless of ordering,
        // so reservations can never over-admit. Pinned by
        // `tests/model_queue.rs::try_push_full_returns_item` and
        // `::pushes_pop_exactly_once`.
        if shared.len.fetch_add(1, Ordering::Relaxed) >= shared.capacity {
            shared.len.fetch_sub(1, Ordering::Relaxed);
            return Err((PushError::Full, item));
        }
        let shard = shared.next_shard.fetch_add(1, Ordering::Relaxed) % shared.shards.len();
        shared.shards[shard]
            .push(item)
            .unwrap_or_else(|_| unreachable!("reserved capacity guarantees ring space"));
        // SeqCst pairs with the consumer's SeqCst raise of `sleepers`
        // before its final re-scan (a store/load Dekker handshake): either
        // the producer sees the sleeper and notifies, or the consumer's
        // re-scan sees the pushed item.
        if shared.sleepers.load(Ordering::SeqCst) > 0 {
            // Bare notify — see the module docs for why this needs no
            // mutex and how the park timeout bounds the race.
            shared.wake.notify_one();
        }
        Ok(())
    }

    /// Scans every shard once, `hint` first.
    #[moqo::hot_path]
    fn scan(&self, hint: usize) -> Option<T> {
        let shared = &*self.shared;
        let n = shared.shards.len();
        for k in 0..n {
            if let Some(item) = shared.shards[(hint + k) % n].pop() {
                // Relaxed: retiring a reservation needs no ordering — the
                // item itself was acquired through `Slot::seq`, and `len`
                // only ever reads high transiently (reserve happens
                // before insert, remove happens after extraction), so the
                // close-then-drain loop can never see 0 with items still
                // queued. Pinned by
                // `tests/model_queue.rs::close_then_drain_conserves_items`.
                shared.len.fetch_sub(1, Ordering::Relaxed);
                return Some(item);
            }
        }
        None
    }

    /// Blocks until an item is available; returns `None` once the queue is
    /// closed *and* drained (the worker-shutdown signal). Equivalent to
    /// [`BoundedQueue::pop_blocking_from`] with shard hint 0.
    pub fn pop_blocking(&self) -> Option<T> {
        self.pop_blocking_from(0)
    }

    /// Blocking pop with shard affinity: drains shard `hint` (modulo the
    /// shard count) first and steals from the others only when it is
    /// empty. Workers pass their own index so disjoint workers touch
    /// disjoint cache lines under load.
    pub fn pop_blocking_from(&self, hint: usize) -> Option<T> {
        self.pop_blocking_from_with(hint, || {})
    }

    /// [`BoundedQueue::pop_blocking_from`] with a liveness callback:
    /// `tick` runs on every wait iteration (at least once per park
    /// timeout), so a consumer parked on an idle queue can keep stamping
    /// its supervision heartbeat — without it, an idle-but-healthy worker
    /// is indistinguishable from one wedged inside a job.
    pub fn pop_blocking_from_with(&self, hint: usize, mut tick: impl FnMut()) -> Option<T> {
        let shared = &*self.shared;
        loop {
            tick();
            if let Some(item) = self.scan(hint) {
                return Some(item);
            }
            if shared.closed.load(Ordering::Acquire) {
                // Closed: drain reservations still in flight, then stop.
                if shared.len.load(Ordering::Acquire) == 0 {
                    return None;
                }
                spin_loop();
                continue;
            }
            // Park. The sleeper count is raised *before* the final
            // re-scan so a producer that pushes in between sees it and
            // notifies; the timeout covers the bare-notify race. The
            // raise must stay SeqCst — it is the consumer half of the
            // Dekker handshake with `try_push`'s SeqCst `sleepers` load
            // (store/load visibility, which release/acquire cannot give).
            shared.sleepers.fetch_add(1, Ordering::SeqCst);
            if let Some(item) = self.scan(hint) {
                // Relaxed: retiring the sleeper flag publishes nothing;
                // the cost of a stale nonzero read by a producer is one
                // spurious `notify_one`. Pinned by
                // `tests/model_queue.rs::parked_consumer_always_wakes`.
                shared.sleepers.fetch_sub(1, Ordering::Relaxed);
                return Some(item);
            }
            if !shared.closed.load(Ordering::Acquire) {
                let guard = shared.park_lock.lock().expect("park lock poisoned");
                let _ = shared
                    .wake
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .expect("park lock poisoned");
            }
            // Relaxed: same argument as the early-exit decrement above.
            shared.sleepers.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake up.
    pub fn close(&self) {
        let shared = &*self.shared;
        shared.closed.store(true, Ordering::Release);
        // Taking the park lock orders this notify after any in-progress
        // park decision; close is cold, so the lock is fine here.
        drop(shared.park_lock.lock().expect("park lock poisoned"));
        shared.wake.notify_all();
    }

    /// Number of items currently pending (transiently includes push
    /// reservations still being written).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.len.load(Ordering::Acquire)
    }

    /// Whether no items are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((PushError::Full, 3)));
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err((PushError::Closed, 8)));
        assert_eq!(q.pop_blocking(), Some(7));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn sharded_roundtrip_preserves_everything() {
        let q = BoundedQueue::with_shards(64, 4);
        assert_eq!(q.shards(), 4);
        for v in 0..48 {
            q.try_push(v).unwrap();
        }
        assert_eq!(q.len(), 48);
        q.close();
        let mut seen: Vec<i32> = std::iter::from_fn(|| q.pop_blocking_from(2)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..48).collect::<Vec<_>>());
    }

    #[test]
    fn single_shard_is_fifo() {
        // One shard keeps the seed's strict FIFO order.
        let q = BoundedQueue::new(16);
        for v in 0..10 {
            q.try_push(v).unwrap();
        }
        let popped: Vec<i32> = (0..10).map(|_| q.pop_blocking().unwrap()).collect();
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn consumers_across_threads() {
        let q = BoundedQueue::with_shards(64, 4);
        let total: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let q = q.clone();
                    s.spawn(move || {
                        let mut sum = 0usize;
                        while let Some(v) = q.pop_blocking_from(i) {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for v in 1..=32usize {
                while q.try_push(v) == Err((PushError::Full, v)) {
                    std::thread::yield_now();
                }
            }
            q.close();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (1..=32).sum::<usize>());
    }
}
