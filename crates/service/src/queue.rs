//! A bounded multi-producer/multi-consumer work queue on std primitives.
//!
//! Producers never block: a full queue rejects the push immediately, which
//! is the admission-control contract of the service (back-pressure must be
//! visible to the caller, not absorbed silently). Consumers block on a
//! condvar until an item arrives or the queue is closed and drained.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
}

/// The error returned by [`BoundedQueue::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` items; the caller should reject or retry.
    Full,
    /// The queue was closed; no further work is accepted.
    Closed,
}

/// A bounded MPMC queue; cloning shares the underlying channel.
pub struct BoundedQueue<T> {
    shared: Arc<Shared<T>>,
    capacity: usize,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        BoundedQueue {
            shared: Arc::clone(&self.shared),
            capacity: self.capacity,
        }
    }
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue admits nothing");
        BoundedQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    items: VecDeque::with_capacity(capacity),
                    closed: false,
                }),
                not_empty: Condvar::new(),
            }),
            capacity,
        }
    }

    /// Non-blocking push; fails on a full or closed queue.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; returns `None` once the queue is
    /// closed *and* drained (the worker-shutdown signal).
    pub fn pop_blocking(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake up.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.shared.not_empty.notify_all();
    }

    /// Number of items currently pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("queue lock poisoned")
            .items
            .len()
    }

    /// Whether no items are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        assert_eq!(q.pop_blocking(), Some(7));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn consumers_across_threads() {
        let q = BoundedQueue::new(64);
        let total: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    s.spawn(move || {
                        let mut sum = 0usize;
                        while let Some(v) = q.pop_blocking() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for v in 1..=32usize {
                while q.try_push(v) == Err(PushError::Full) {
                    std::thread::yield_now();
                }
            }
            q.close();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (1..=32).sum::<usize>());
    }
}
